//! `prophet` — command-line front-end to the Performance Prophet
//! reproduction.
//!
//! ```text
//! prophet check     <model.xml> [--mcf <mcf.xml>]
//! prophet transform <model.xml> [--full] [--skeleton]
//! prophet estimate  <model.xml> [--nodes N] [--cpus C] [--processes P]
//!                   [--threads T] [--backend simulation|analytic]
//!                   [--trace <tf.txt>] [--timeline]
//! prophet sweep     <model.xml> --nodes 1,2,4,8 [--cpus C] [--workers W]
//!                   [--backend simulation|analytic] [--no-elab-cache]
//! prophet optimize  <model.xml> [--nodes 1,2,...,16] [--cpus 1,2,4,8]
//!                   [--objective min_time|min_cost|max_speedup_per_cost]
//!                   [--deadline S] [--max-cost C] [--node-weight W]
//!                   [--cpu-weight W] [--backend simulation|analytic]
//!                   [--verify sim] [--margin F] [--stride K] [--workers W]
//! prophet serve     [--addr A] [--workers W] [--store DIR] [--token T]
//! prophet router    --shards H:P,H:P,... [--addr A] [--workers W]
//!                   [--token T] [--probe-ms MS]
//! prophet warm      --store DIR [--mcf <mcf.xml>] [--nodes 1,2,4 [--cpus C]]
//!                   <model.xml>...
//! prophet metrics   <url> [--watch SECS]
//! prophet demo      sample|kernel6|jacobi|lapw0|pipeline|master_worker|task_farm|branching_pipeline|halo_ring|mapreduce
//! ```
//!
//! `--backend simulation` (default) replays the model on the DES kernel
//! and can record traces; `--backend analytic` computes the prediction
//! in closed form — much faster for sweeps, no trace.
//!
//! Sweeps flatten each distinct SP point once and share the elaboration
//! across workers and repeat points (the session's elaboration cache);
//! `--no-elab-cache` opts out and re-elaborates every evaluation —
//! results are identical, only slower.
//!
//! `optimize` is the inverse query: instead of enumerating a grid it
//! searches the `(nodes, cpus)` lattice lazily (coarse seed, then
//! refine only cells whose bound could still contribute) and prints the
//! Pareto frontier over `(cost, time)` with the objective's pick —
//! "cheapest configuration meeting `--deadline 0.02`", "best speedup
//! per cost". `--verify sim` re-checks the frontier with the
//! simulation backend. Costs follow
//! `cost = node_weight·nodes + cpu_weight·nodes·cpus`.
//!
//! `serve` starts the long-running prediction service (prophet-serve):
//! models are compiled once into a session pool and every subsequent
//! request — any connection, any worker — reuses the compiled program
//! and its elaboration cache. `POST /v1/shutdown` drains it gracefully:
//!
//! ```text
//! prophet serve --addr 127.0.0.1:7077 --workers 4 &
//! curl -s localhost:7077/v1/estimate \
//!      -d '{"model_name":"jacobi","nodes":8,"backend":"analytic"}'
//! curl -s localhost:7077/v1/metrics        # pool + elab-cache counters
//! curl -s -X POST localhost:7077/v1/shutdown
//! ```
//!
//! With `--store DIR`, compiled sessions persist across restarts: the
//! pool warm-starts from the directory at boot (first estimate after a
//! restart = zero compiles, visible as a `store.disk_hits` counter on
//! `GET /v1/metrics`), and fresh compiles write their artifact back.
//! `warm` pre-populates such a store offline — optionally pre-flattening
//! an SP grid so even elaboration is served from disk:
//!
//! ```text
//! prophet warm --store ./artifacts --nodes 1,2,4,8 jacobi.xml sample.xml
//! prophet serve --store ./artifacts
//! ```
//!
//! `router` scales the service out horizontally: it consistent-hashes
//! each request's `(model, MCF)` content digest across N `serve` shards
//! (so the fleet still compiles every model exactly once), health-checks
//! the shards and retries a killed shard's traffic on its ring
//! successor, and aggregates `GET /v1/metrics` fleet-wide. Shards
//! sharing one `--store` directory warm-start from each other's
//! write-backs:
//!
//! ```text
//! prophet serve --addr 127.0.0.1:7071 --store ./artifacts &
//! prophet serve --addr 127.0.0.1:7072 --store ./artifacts &
//! prophet router --shards 127.0.0.1:7071,127.0.0.1:7072
//! ```
//!
//! `--token T` (or the `PROPHET_TOKEN` environment variable) on `serve`
//! and `router` guards `POST /v1/shutdown` behind
//! `Authorization: Bearer T`; the router forwards the header when it
//! broadcasts a fleet shutdown.
//!
//! `metrics` renders a running server's `GET /v1/metrics` document as
//! a table — per-endpoint requests/errors with p50/p90/p99 latency,
//! pool/elab/store counters, and lifetime totals — against a shard or
//! a router (whose document it renders per shard). `--watch SECS`
//! re-fetches and re-prints every SECS seconds until interrupted:
//!
//! ```text
//! prophet metrics localhost:7077
//! prophet metrics http://127.0.0.1:7070 --watch 2
//! ```
//!
//! `demo` prints a ready-made model as XML, so a full round trip is:
//!
//! ```text
//! prophet demo sample > sample.xml
//! prophet check sample.xml
//! prophet transform sample.xml
//! prophet estimate sample.xml --nodes 2 --cpus 2 --timeline
//! ```
//!
//! Exit codes: `0` success, `1` pipeline failure (unreadable model,
//! check/evaluation error), `2` usage error (unknown command, bad or
//! missing argument — the offending token is named before the usage
//! block).

use prophet::check::{check_model, McfConfig};
use prophet::codegen::generate_skeleton;
use prophet::core::{
    render_chain, render_chain_inline, ArtifactKey, ArtifactStore, Backend, Scenario, Session,
    SweepConfig, SweepPoint,
};
use prophet::machine::SystemParams;
use prophet::serve::server::{serve, ServerConfig};
use prophet::trace::{render_timeline, TraceAnalysis};
use prophet::uml::Model;
use std::process::ExitCode;

/// A CLI failure, split by whose fault it is: `Usage` errors name the
/// offending token and are followed by the usage block (exit code 2);
/// `Runtime` errors come from the pipeline itself (exit code 1).
enum CliError {
    Usage(String),
    Runtime(String),
}

/// Shorthand for argument mistakes.
fn usage_err(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Shorthand for pipeline failures.
fn runtime_err(msg: impl Into<String>) -> CliError {
    CliError::Runtime(msg.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n{}", usage());
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage:\n  prophet check <model.xml> [--mcf <mcf.xml>]\n  prophet transform <model.xml> [--full] [--skeleton]\n  prophet estimate <model.xml> [--nodes N] [--cpus C] [--processes P] [--threads T] [--backend simulation|analytic] [--trace <file>] [--timeline]\n  prophet sweep <model.xml> --nodes 1,2,4,8 [--cpus C] [--workers W] [--backend simulation|analytic] [--no-elab-cache]\n  prophet optimize <model.xml> [--nodes 1,2,...,16] [--cpus 1,2,4,8] [--objective min_time|min_cost|max_speedup_per_cost] [--deadline S] [--max-cost C] [--node-weight W] [--cpu-weight W] [--backend simulation|analytic] [--verify sim] [--margin F] [--stride K] [--workers W]\n  prophet serve [--addr A] [--workers W] [--store DIR] [--partition H:P,H:P,...] [--token T]\n  prophet router --shards H:P,H:P,... [--addr A] [--workers W] [--token T] [--probe-ms MS]\n  prophet warm --store DIR [--mcf <mcf.xml>] [--nodes 1,2,4 [--cpus C]] <model.xml>...\n  prophet store gc --store DIR --max-bytes BYTES\n  prophet metrics <url> [--watch SECS]\n  prophet demo sample|kernel6|jacobi|lapw0|pipeline|master_worker|task_farm|branching_pipeline|halo_ring|mapreduce"
        .to_string()
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(usage_err("missing command"));
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "transform" => cmd_transform(&args[1..]),
        "estimate" => cmd_estimate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "optimize" => cmd_optimize(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "router" => cmd_router(&args[1..]),
        "warm" => cmd_warm(&args[1..]),
        "store" => cmd_store(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "demo" => cmd_demo(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(usage_err(format!("unknown command `{other}`"))),
    }
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The string value of `flag` — distinguishing "flag absent" (`None`)
/// from "value missing" (end of line, or another flag where the value
/// should be), naming the flag in the error.
fn value_flag<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, CliError> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    match args.get(i + 1).map(String::as_str) {
        None => Err(usage_err(format!("missing value after `{flag}`"))),
        Some(v) if v.starts_with("--") => Err(usage_err(format!(
            "missing value after `{flag}` (found flag `{v}` instead)"
        ))),
        Some(v) => Ok(Some(v)),
    }
}

/// [`value_flag`], parsed — additionally rejecting unparsable values
/// with the offending token named.
fn parsed_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, CliError> {
    match value_flag(args, flag)? {
        None => Ok(None),
        Some(value) => value
            .parse()
            .map(Some)
            .map_err(|_| usage_err(format!("invalid value `{value}` for `{flag}`"))),
    }
}

/// Parse a comma-separated count list (`--nodes 1,2,4`): every entry
/// must be a positive integer — zero would flow into the engine as a
/// degenerate `SystemParams` — and repeats are deduplicated (first
/// occurrence wins), so `1,2,4,2,1` evaluates three points, not five.
/// `noun` names the entries in errors ("node count", "cpu count").
fn count_list(noun: &str, flag: &str, list: &str) -> Result<Vec<usize>, CliError> {
    let mut out = Vec::new();
    for s in list.split(',') {
        let n: usize = s
            .trim()
            .parse()
            .map_err(|_| usage_err(format!("bad {noun} `{s}` in `{flag} {list}`")))?;
        if n == 0 {
            return Err(usage_err(format!(
                "bad {noun} `0` in `{flag} {list}`: counts must be at least 1"
            )));
        }
        if !out.contains(&n) {
            out.push(n);
        }
    }
    Ok(out)
}

fn load_model(args: &[String]) -> Result<Model, CliError> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| usage_err("missing <model.xml> argument"))?;
    let xml = std::fs::read_to_string(path)
        .map_err(|e| runtime_err(format!("cannot read `{path}`: {e}")))?;
    prophet::uml::xmi::model_from_xml(&xml)
        .map_err(|e| runtime_err(format!("cannot parse `{path}`: {e}")))
}

/// Compile a session, rendering the full error chain on failure.
fn compile(model: Model) -> Result<Session, CliError> {
    Session::new(model).map_err(|e| runtime_err(render_chain(&e)))
}

fn cmd_check(args: &[String]) -> Result<(), CliError> {
    let model = load_model(args)?;
    let mcf = match value_flag(args, "--mcf")? {
        Some(mcf_path) => {
            let mcf_xml = std::fs::read_to_string(mcf_path)
                .map_err(|e| runtime_err(format!("cannot read `{mcf_path}`: {e}")))?;
            McfConfig::from_xml(&mcf_xml).map_err(|e| runtime_err(e.to_string()))?
        }
        None => McfConfig::default(),
    };
    let diags = check_model(&model, &mcf);
    if diags.is_empty() {
        println!(
            "model `{}` conforms ({} elements)",
            model.name,
            model.element_count()
        );
        return Ok(());
    }
    for d in &diags {
        println!("{d}");
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    if errors > 0 {
        Err(runtime_err(format!("{errors} error(s)")))
    } else {
        println!("{} warning(s), no errors", diags.len());
        Ok(())
    }
}

fn cmd_transform(args: &[String]) -> Result<(), CliError> {
    let model = load_model(args)?;
    if has_flag(args, "--skeleton") {
        let skel = generate_skeleton(&model).map_err(|e| runtime_err(e.to_string()))?;
        println!("{skel}");
        return Ok(());
    }
    let unit = prophet::core::transform::to_cpp(&model).map_err(|e| runtime_err(e.to_string()))?;
    if has_flag(args, "--full") {
        println!("{}", unit.full_text());
    } else {
        println!("{}", unit.model_text());
    }
    Ok(())
}

fn system_from(args: &[String]) -> Result<SystemParams, CliError> {
    let nodes = parsed_flag(args, "--nodes")?.unwrap_or(1);
    let cpus = parsed_flag(args, "--cpus")?.unwrap_or(1);
    let processes = parsed_flag(args, "--processes")?.unwrap_or(nodes * cpus);
    let threads = parsed_flag(args, "--threads")?.unwrap_or(1);
    let sp = SystemParams {
        nodes,
        cpus_per_node: cpus,
        processes,
        threads_per_process: threads,
    };
    sp.validate().map_err(|e| runtime_err(e.to_string()))?;
    Ok(sp)
}

fn backend_from(args: &[String]) -> Result<Backend, CliError> {
    match value_flag(args, "--backend")? {
        Some(s) => s.parse().map_err(usage_err),
        None => Ok(Backend::default()),
    }
}

fn cmd_estimate(args: &[String]) -> Result<(), CliError> {
    let sp = system_from(args)?;
    let backend = backend_from(args)?;
    if backend == Backend::Analytic && (has_flag(args, "--trace") || has_flag(args, "--timeline")) {
        return Err(usage_err(
            "the analytic backend records no trace; drop --trace/--timeline or use --backend simulation",
        ));
    }
    let session = compile(load_model(args)?)?;
    let run = session
        .evaluate(&Scenario::new(sp).with_backend(backend))
        .map_err(|e| runtime_err(render_chain(&e)))?;
    println!(
        "model `{}` on {} node(s) × {} cpu(s), {} process(es) × {} thread(s)",
        session.program().name,
        sp.nodes,
        sp.cpus_per_node,
        sp.processes,
        sp.threads_per_process
    );
    println!("backend: {backend}");
    println!("predicted execution time: {:.6} s", run.predicted_time);
    if backend == Backend::Simulation {
        println!(
            "simulation: {} events, {} processes completed",
            run.report.events_processed, run.report.processes_completed
        );
        let analysis = TraceAnalysis::analyze(&run.trace);
        println!("\nelement profile:");
        for p in analysis.profile.iter().take(12) {
            println!(
                "  {:<18} count={:<5} total={:.6}s mean={:.6}s",
                p.element, p.count, p.total_time, p.mean_time
            );
        }
        if let Some(path) = value_flag(args, "--trace")? {
            std::fs::write(path, run.trace.to_text())
                .map_err(|e| runtime_err(format!("cannot write `{path}`: {e}")))?;
            println!("\ntrace written to {path}");
        }
        if has_flag(args, "--timeline") {
            println!("\n{}", render_timeline(&analysis, sp.processes, 72));
        }
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    // Validate every flag before paying the compile cost, so argument
    // mistakes get argument errors (not compile errors) and get them fast.
    let nodes_list = value_flag(args, "--nodes")?
        .ok_or_else(|| usage_err("sweep requires --nodes 1,2,4,..."))?;
    let cpus: usize = parsed_flag(args, "--cpus")?.unwrap_or(1);
    // `--threads` means threads-per-process (SP) in `estimate`; reject it
    // here rather than silently reinterpreting it as the worker pool.
    if has_flag(args, "--threads") {
        return Err(usage_err(
            "sweep evaluates flat-MPI points; use --workers W for the worker-thread pool",
        ));
    }
    let threads: usize = parsed_flag(args, "--workers")?.unwrap_or(0);
    let backend = backend_from(args)?;
    let points: Vec<SweepPoint> = count_list("node count", "--nodes", nodes_list)?
        .into_iter()
        .map(|n| SweepPoint {
            sp: SystemParams::flat_mpi(n, cpus),
        })
        .collect();
    // Unlike the legacy CLI, sweep now gates on the model checker just
    // like `estimate` always has: a model with check errors won't sweep.
    let session = compile(load_model(args)?)?;
    // Stream completion progress to stderr while workers fill the grid.
    let mut done = 0usize;
    let total = points.len();
    let config = SweepConfig {
        threads,
        backend,
        no_elab_cache: has_flag(args, "--no-elab-cache"),
        ..Default::default()
    };
    let report = session.sweep_with(&points, &config, |_, _| {
        done += 1;
        eprint!("\r{done}/{total} configurations evaluated");
    });
    if total > 0 {
        eprintln!();
    }
    println!(
        "{:>8} {:>8} {:>14} {:>9}",
        "nodes", "P", "time(s)", "speedup"
    );
    let base = report.points.iter().find_map(|r| r.time());
    for r in &report.points {
        match &r.outcome {
            Ok(t) => {
                let speedup = base.map(|b| b / t).unwrap_or(1.0);
                println!(
                    "{:>8} {:>8} {:>14.6} {:>9.2}",
                    r.sp.nodes, r.sp.processes, t, speedup
                );
            }
            Err(e) => println!(
                "{:>8} {:>8}  failed: {}",
                r.sp.nodes,
                r.sp.processes,
                render_chain_inline(e)
            ),
        }
    }
    Ok(())
}

/// `prophet optimize`: the inverse query — search the `(nodes, cpus)`
/// lattice instead of sweeping it, and print the Pareto frontier over
/// `(cost, predicted time)` plus the objective's pick.
fn cmd_optimize(args: &[String]) -> Result<(), CliError> {
    use prophet::opt::{Constraints, CostWeights, OptError, OptimizeRequest, OptimizeSession};
    let mut req = OptimizeRequest::default();
    if let Some(list) = value_flag(args, "--nodes")? {
        req.nodes = count_list("node count", "--nodes", list)?;
    }
    if let Some(list) = value_flag(args, "--cpus")? {
        req.cpus = count_list("cpu count", "--cpus", list)?;
    }
    if let Some(objective) = value_flag(args, "--objective")? {
        req.objective = objective.parse().map_err(usage_err)?;
    }
    if let Some(verify) = value_flag(args, "--verify")? {
        req.verify = verify.parse().map_err(usage_err)?;
    }
    req.constraints = Constraints {
        deadline: parsed_flag(args, "--deadline")?,
        max_cost: parsed_flag(args, "--max-cost")?,
    };
    let defaults = CostWeights::default();
    req.weights = CostWeights {
        per_node: parsed_flag(args, "--node-weight")?.unwrap_or(defaults.per_node),
        per_cpu: parsed_flag(args, "--cpu-weight")?.unwrap_or(defaults.per_cpu),
    };
    if let Some(margin) = parsed_flag(args, "--margin")? {
        req.margin = margin;
    }
    if let Some(stride) = parsed_flag(args, "--stride")? {
        req.stride = stride;
    }
    req.workers = parsed_flag(args, "--workers")?.unwrap_or(0);
    // Unlike estimate/sweep, the search oracle defaults to the cheap
    // analytic backend; `--backend simulation` searches with the
    // expensive twin directly.
    if let Some(backend) = value_flag(args, "--backend")? {
        req.backend = backend.parse().map_err(usage_err)?;
    }
    // Range mistakes (zero counts, margin ≥ 1, negative weights...) are
    // argument errors: surface them before paying the compile.
    let req = req.normalized().map_err(|e| usage_err(e.to_string()))?;
    let session = compile(load_model(args)?)?;
    let report = session.optimize(&req).map_err(|e| match e {
        OptError::Request(_) => usage_err(e.to_string()),
        other => runtime_err(render_chain(&other)),
    })?;
    println!(
        "model `{}`: {} frontier over the {}-point lattice (oracle: {})",
        session.program().name,
        report.objective,
        report.grid_size,
        report.backend
    );
    let verified = report.frontier.iter().any(|p| p.verified_time.is_some());
    print!(
        "{:>8} {:>6} {:>8} {:>10} {:>14} {:>9}",
        "nodes", "cpus", "P", "cost", "time(s)", "speedup"
    );
    println!(
        "{}",
        if verified {
            format!(" {:>14}", "sim(s)")
        } else {
            String::new()
        }
    );
    for p in &report.frontier {
        print!(
            "{:>8} {:>6} {:>8} {:>10.2} {:>14.6} {:>9.2}",
            p.sp.nodes, p.sp.cpus_per_node, p.sp.processes, p.cost, p.time, p.speedup
        );
        match p.verified_time {
            Some(t) => println!(" {t:>14.6}"),
            None => println!(),
        }
    }
    match report.best_point() {
        Some(best) => println!(
            "best ({}): {} node(s) × {} cpu(s) — time {:.6} s, cost {:.2}, speedup {:.2}",
            report.objective,
            best.sp.nodes,
            best.sp.cpus_per_node,
            best.time,
            best.cost,
            best.speedup
        ),
        None => println!("no feasible configuration meets the constraints"),
    }
    println!(
        "oracle evaluations: {} of {} lattice points ({} cells skipped, {} refined{})",
        report.oracle_evals,
        report.grid_size,
        report.cells_skipped,
        report.cells_refined,
        if report.verifier_evals > 0 {
            format!("; {} sim verifications", report.verifier_evals)
        } else {
            String::new()
        }
    );
    Ok(())
}

/// The operator token for `serve`/`router`: `--token` wins, the
/// `PROPHET_TOKEN` environment variable is the fallback (so process
/// lists don't have to show the secret).
fn token_from(args: &[String]) -> Result<Option<String>, CliError> {
    match value_flag(args, "--token")? {
        Some(token) => Ok(Some(token.to_string())),
        None => Ok(std::env::var("PROPHET_TOKEN")
            .ok()
            .filter(|t| !t.is_empty())),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let addr = value_flag(args, "--addr")?.unwrap_or("127.0.0.1:7077");
    let workers: usize = parsed_flag(args, "--workers")?.unwrap_or(0);
    let token = token_from(args)?;
    let store_dir = value_flag(args, "--store")?;
    let store = store_dir
        .map(|dir| {
            ArtifactStore::open(dir)
                .map(std::sync::Arc::new)
                .map_err(|e| runtime_err(format!("cannot open store `{dir}`: {e}")))
        })
        .transpose()?;
    // `--partition H:P,H:P,...` names the whole fleet; this shard's
    // own label is its `--addr`, which must appear in the list.
    let partition = value_flag(args, "--partition")?
        .map(|list| {
            let fleet: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
            if !fleet.contains(&addr.to_string()) {
                return Err(usage_err(format!(
                    "`--partition {list}` does not contain this shard's --addr `{addr}`"
                )));
            }
            Ok((fleet, addr.to_string()))
        })
        .transpose()?;
    let server = serve(&ServerConfig {
        addr: addr.to_string(),
        workers,
        store,
        token,
        partition,
        ..Default::default()
    })
    .map_err(|e| runtime_err(format!("cannot bind `{addr}`: {e}")))?;
    // The actual address first (port 0 resolves here) so scripts and
    // tests can parse where to connect.
    println!("prophet-serve listening on http://{}", server.addr());
    if let Some(dir) = store_dir {
        // serve() warm-started the pool from the store before any
        // worker spawned; everything loaded is a pool entry already.
        println!(
            "store `{dir}`: {} session(s) warm-started",
            server.state().pool.stats().size
        );
    }
    println!("endpoints: POST /v1/check /v1/estimate /v1/sweep /v1/optimize — GET /v1/models /v1/metrics");
    println!("POST /v1/shutdown for graceful drain");
    // Parks until a shutdown request arrives, then drains in-flight
    // requests before returning.
    server.wait();
    println!("prophet-serve drained and stopped");
    Ok(())
}

/// `prophet router`: the scale-out front door over N `serve` shards.
fn cmd_router(args: &[String]) -> Result<(), CliError> {
    let addr = value_flag(args, "--addr")?.unwrap_or("127.0.0.1:7070");
    let workers: usize = parsed_flag(args, "--workers")?.unwrap_or(0);
    let probe_ms: u64 = parsed_flag(args, "--probe-ms")?.unwrap_or(500);
    if probe_ms == 0 {
        return Err(usage_err("`--probe-ms` must be at least 1"));
    }
    let token = token_from(args)?;
    let shard_list = value_flag(args, "--shards")?
        .ok_or_else(|| usage_err("router requires --shards HOST:PORT,HOST:PORT,..."))?;
    let shards: Vec<std::net::SocketAddr> = shard_list
        .split(',')
        .map(|s| {
            s.trim().parse().map_err(|_| {
                usage_err(format!(
                    "bad shard address `{s}` in `--shards {shard_list}`"
                ))
            })
        })
        .collect::<Result<_, _>>()?;
    let router = prophet::router::start(&prophet::router::RouterConfig {
        addr: addr.to_string(),
        workers,
        shards: shards.clone(),
        token,
        probe_interval: std::time::Duration::from_millis(probe_ms),
        ..Default::default()
    })
    .map_err(|e| runtime_err(format!("cannot bind `{addr}`: {e}")))?;
    println!("prophet-router listening on http://{}", router.addr());
    println!(
        "routing {} shard(s): {}",
        shards.len(),
        shards
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "endpoints: POST /v1/check /v1/estimate /v1/sweep /v1/optimize — GET /v1/models /v1/metrics /v1/shards"
    );
    println!("POST /v1/shutdown broadcasts to the fleet, then drains the router");
    router.wait();
    println!("prophet-router drained and stopped");
    Ok(())
}

/// `prophet warm`: pre-populate a persistent artifact store offline, so
/// a later `prophet serve --store` (or any `Session::compile_stored`
/// caller) boots warm. With `--nodes`, additionally pre-flattens the
/// flat-MPI SP grid through the analytic backend so the stored artifact
/// carries its elaborations too.
fn cmd_warm(args: &[String]) -> Result<(), CliError> {
    let store_dir =
        value_flag(args, "--store")?.ok_or_else(|| usage_err("warm requires --store <dir>"))?;
    let cpus: usize = parsed_flag(args, "--cpus")?.unwrap_or(1);
    let points: Vec<SweepPoint> = match value_flag(args, "--nodes")? {
        None => Vec::new(),
        Some(list) => count_list("node count", "--nodes", list)?
            .into_iter()
            .map(|n| SweepPoint {
                sp: SystemParams::flat_mpi(n, cpus),
            })
            .collect(),
    };
    let mcf = match value_flag(args, "--mcf")? {
        Some(mcf_path) => {
            let mcf_xml = std::fs::read_to_string(mcf_path)
                .map_err(|e| runtime_err(format!("cannot read `{mcf_path}`: {e}")))?;
            McfConfig::from_xml(&mcf_xml).map_err(|e| runtime_err(e.to_string()))?
        }
        None => McfConfig::default(),
    };

    // Positional arguments are model files; every flag above takes a
    // value, so skip flag/value pairs rather than everything non-`--`
    // (a value like `1,2,4` must not be mistaken for a model path).
    const VALUE_FLAGS: [&str; 4] = ["--store", "--cpus", "--nodes", "--mcf"];
    let mut model_paths = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if VALUE_FLAGS.contains(&arg) {
            i += 2;
            continue;
        }
        if arg.starts_with("--") {
            return Err(usage_err(format!("unknown flag `{arg}` for warm")));
        }
        model_paths.push(arg);
        i += 1;
    }
    if model_paths.is_empty() {
        return Err(usage_err("missing <model.xml> argument"));
    }

    let store = ArtifactStore::open(store_dir)
        .map_err(|e| runtime_err(format!("cannot open store `{store_dir}`: {e}")))?;
    for path in model_paths {
        let xml = std::fs::read_to_string(path)
            .map_err(|e| runtime_err(format!("cannot read `{path}`: {e}")))?;
        let model = prophet::uml::xmi::model_from_xml(&xml)
            .map_err(|e| runtime_err(format!("cannot parse `{path}`: {e}")))?;
        let key = ArtifactKey::of(&model, &mcf);
        // Load an existing artifact (a disk hit) or compile fresh —
        // deliberately NOT through `compile_stored`, whose immediate
        // write-back would make every cold model with a `--nodes` grid
        // pay two full artifact writes (one without elaborations, one
        // with). Warm writes each artifact exactly once, below. `hit`
        // comes from the load *succeeding*, not the file existing: a
        // corrupt or stale-version entry is evicted by the load and
        // must be re-written even without `--nodes`.
        let loaded = store.load_session(key);
        let hit = loaded.is_some();
        let session = match loaded {
            Some(session) => session,
            None => {
                Session::compile(model, mcf.clone()).map_err(|e| runtime_err(render_chain(&e)))?
            }
        };
        if !points.is_empty() {
            // Pre-flatten the grid through the analytic backend (no
            // kernel, no trace) so the elaborations persist alongside
            // the compile artifacts.
            let report = session.sweep_with(
                &points,
                &SweepConfig {
                    backend: Backend::Analytic,
                    ..Default::default()
                },
                |_, _| {},
            );
            for point in &report.points {
                if let Err(e) = &point.outcome {
                    return Err(runtime_err(format!(
                        "cannot pre-elaborate `{path}` at {} node(s): {}",
                        point.sp.nodes,
                        render_chain_inline(e)
                    )));
                }
            }
        }
        if !hit || !points.is_empty() {
            // One write per model: a cold artifact, or a refresh that
            // now carries the pre-elaborated grid.
            store
                .save_session(&session)
                .map_err(|e| runtime_err(format!("cannot write store entry for `{path}`: {e}")))?;
        }
        println!(
            "warmed `{}` from {path}: {}, {} pre-elaborated SP point(s)",
            session.program().name,
            if hit { "already stored" } else { "stored" },
            points.len()
        );
    }
    let stats = store.stats();
    println!(
        "store `{store_dir}`: {} write(s), {} disk hit(s)",
        stats.writes, stats.disk_hits
    );
    Ok(())
}

/// `prophet store`: persistent-artifact-store maintenance.
fn cmd_store(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("gc") => cmd_store_gc(&args[1..]),
        Some(other) => Err(usage_err(format!("unknown store subcommand `{other}`"))),
        None => Err(usage_err("store requires a subcommand: gc")),
    }
}

/// `prophet store gc`: shrink a store under a byte budget. Corrupt
/// entries go first (they can never be loaded again anyway), then the
/// least-recently-used live entries until the store fits.
fn cmd_store_gc(args: &[String]) -> Result<(), CliError> {
    let dir =
        value_flag(args, "--store")?.ok_or_else(|| usage_err("store gc requires --store <dir>"))?;
    let max_bytes: u64 = parsed_flag(args, "--max-bytes")?
        .ok_or_else(|| usage_err("store gc requires --max-bytes <bytes>"))?;
    let store = ArtifactStore::open(dir)
        .map_err(|e| runtime_err(format!("cannot open store `{dir}`: {e}")))?;
    let report = store.gc(max_bytes);
    println!(
        "store `{dir}`: scanned {} entries ({} bytes)",
        report.entries_scanned, report.bytes_scanned
    );
    println!(
        "evicted {} corrupt, {} by LRU; reclaimed {} bytes",
        report.corrupt_evicted, report.lru_evicted, report.bytes_reclaimed
    );
    println!(
        "retained {} entries ({} bytes) under the {max_bytes}-byte budget",
        report.entries_retained, report.bytes_retained
    );
    Ok(())
}

/// `prophet metrics`: fetch a running server's `/v1/metrics` JSON and
/// render it as tables — against a shard or a router (whose fleet
/// document is rendered per shard). `--watch SECS` loops forever.
fn cmd_metrics(args: &[String]) -> Result<(), CliError> {
    // `--watch` takes a value, so extract the positional url by
    // skipping flag/value pairs (the warm command's discipline) — a
    // value like `2` must not be mistaken for the url.
    let mut url: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg == "--watch" {
            i += 2;
            continue;
        }
        if arg.starts_with("--") {
            return Err(usage_err(format!("unknown flag `{arg}` for metrics")));
        }
        if url.is_some() {
            return Err(usage_err(format!("unexpected extra argument `{arg}`")));
        }
        url = Some(arg);
        i += 1;
    }
    let url = url.ok_or_else(|| usage_err("missing <url> argument"))?;
    let watch: Option<u64> = parsed_flag(args, "--watch")?;
    if watch == Some(0) {
        return Err(usage_err(
            "invalid value `0` for `--watch`: must be at least 1 second",
        ));
    }
    let addr = resolve_url(url)?;
    loop {
        let answer = prophet::serve::client::get(addr, "/v1/metrics")
            .map_err(|e| runtime_err(format!("cannot fetch metrics from `{url}`: {e}")))?;
        if answer.status != 200 {
            return Err(runtime_err(format!(
                "`{url}` answered {}: {}",
                answer.status,
                answer.body.encode()
            )));
        }
        if answer.body.get("router").is_some() {
            render_router_metrics(&answer.body);
        } else {
            render_service_metrics(&answer.body, "");
        }
        let Some(secs) = watch else { return Ok(()) };
        std::thread::sleep(std::time::Duration::from_secs(secs));
        println!();
    }
}

/// Resolve `HOST:PORT` (an optional `http://` prefix is stripped) to a
/// socket address, naming the token on failure.
fn resolve_url(url: &str) -> Result<std::net::SocketAddr, CliError> {
    use std::net::ToSocketAddrs;
    let trimmed = url
        .strip_prefix("http://")
        .unwrap_or(url)
        .trim_end_matches('/');
    trimmed
        .to_socket_addrs()
        .ok()
        .and_then(|mut addrs| addrs.next())
        .ok_or_else(|| {
            usage_err(format!(
                "bad server url `{url}`; expected HOST:PORT or http://HOST:PORT"
            ))
        })
}

/// A numeric field of a metrics document, `0` when absent.
fn metric(json: &prophet::serve::json::Json, key: &str) -> u64 {
    json.get(key)
        .and_then(|v| v.as_f64())
        .map(|v| v.max(0.0) as u64)
        .unwrap_or(0)
}

/// Render one serve-shaped metrics document (endpoints, pool, elab,
/// store, lifetime), indented so the router renderer can nest it.
fn render_service_metrics(doc: &prophet::serve::json::Json, indent: &str) {
    use prophet::serve::json::Json;
    println!(
        "{indent}{:<10} {:>9} {:>7} {:>10} {:>10} {:>10}",
        "endpoint", "requests", "errors", "p50(ms)", "p90(ms)", "p99(ms)"
    );
    if let Some(Json::Object(endpoints)) = doc.get("endpoints") {
        for (name, section) in endpoints {
            let requests = metric(section, "requests");
            if requests == 0 {
                continue;
            }
            let latency = section.get("latency");
            let quantile = |key: &str| {
                latency
                    .and_then(|l| l.get(key))
                    .and_then(|v| v.as_f64())
                    .map_or_else(|| "-".to_string(), |us| format!("{:.2}", us / 1000.0))
            };
            println!(
                "{indent}{name:<10} {requests:>9} {:>7} {:>10} {:>10} {:>10}",
                metric(section, "errors"),
                quantile("p50_us"),
                quantile("p90_us"),
                quantile("p99_us"),
            );
        }
    }
    if let Some(pool) = doc.get("session_pool") {
        println!(
            "{indent}pool: size {} — compiles {}, reuses {}, bypasses {}",
            metric(pool, "size"),
            metric(pool, "compiles"),
            metric(pool, "reuses"),
            metric(pool, "bypasses"),
        );
    }
    if let Some(elab) = doc.get("elab") {
        println!(
            "{indent}elab cache: hits {}, misses {}, bypasses {}",
            metric(elab, "hits"),
            metric(elab, "misses"),
            metric(elab, "bypasses"),
        );
    }
    if let Some(store) = doc.get("store") {
        println!(
            "{indent}store: disk hits {}, misses {}, writes {} ({} failed), evictions {}",
            metric(store, "disk_hits"),
            metric(store, "disk_misses"),
            metric(store, "writes"),
            metric(store, "write_errors"),
            metric(store, "evictions"),
        );
    }
    if let Some(journal) = doc.get("journal") {
        println!(
            "{indent}journal: {} request(s) recorded",
            metric(journal, "recorded")
        );
    }
    if let Some(lifetime) = doc.get("lifetime") {
        let total: u64 = match lifetime.get("counters") {
            Some(Json::Object(counters)) => counters
                .iter()
                .filter(|(name, _)| name.ends_with(".requests"))
                .map(|(_, v)| v.as_f64().map(|f| f.max(0.0) as u64).unwrap_or(0))
                .sum(),
            _ => 0,
        };
        println!(
            "{indent}lifetime: {} request(s) across restarts, {} checkpoint(s) this boot",
            total,
            metric(lifetime, "checkpoints"),
        );
    }
}

/// Render a router-shaped metrics document: routing summary, fleet
/// totals, then each shard's section nested under its address.
fn render_router_metrics(doc: &prophet::serve::json::Json) {
    if let Some(routing) = doc.get("router").and_then(|r| r.get("routing")) {
        println!(
            "router: {} shard(s), {} healthy — forwards {}, retries {}, no-shard {}",
            metric(routing, "shards"),
            metric(routing, "healthy"),
            metric(routing, "forwards"),
            metric(routing, "retries"),
            metric(routing, "no_shard"),
        );
    }
    if let Some(fleet) = doc.get("fleet") {
        println!(
            "fleet: {} request(s) ({} errors), {} compile(s), {} reuse(s), {} disk hit(s)",
            metric(fleet, "requests"),
            metric(fleet, "errors"),
            metric(fleet, "session_compiles"),
            metric(fleet, "session_reuses"),
            metric(fleet, "store_disk_hits"),
        );
    }
    let Some(shards) = doc.get("shards").and_then(|s| s.as_array()) else {
        return;
    };
    for shard in shards {
        let addr = shard
            .get("addr")
            .and_then(|a| a.as_str())
            .unwrap_or("<unknown>");
        let healthy = shard.get("healthy").and_then(|h| h.as_bool());
        println!(
            "\nshard {addr} — {}",
            if healthy == Some(true) {
                "healthy"
            } else {
                "DOWN"
            }
        );
        match shard.get("metrics") {
            Some(metrics) => render_service_metrics(metrics, "  "),
            None => {
                if let Some(error) = shard.get("error").and_then(|e| e.as_str()) {
                    println!("  unreachable: {error}");
                }
            }
        }
    }
}

fn cmd_demo(args: &[String]) -> Result<(), CliError> {
    let which = args.first().map(String::as_str).unwrap_or("sample");
    // One registry for `demo` and the service's GET /v1/models, so the
    // CLI and the wire always agree on the bundled workloads.
    let model = prophet::serve::api::demo_model(which)
        .ok_or_else(|| usage_err(format!("unknown demo `{which}`")))?;
    println!("{}", prophet::uml::xmi::model_to_xml(&model));
    Ok(())
}
