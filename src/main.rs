//! `prophet` — command-line front-end to the Performance Prophet
//! reproduction.
//!
//! ```text
//! prophet check     <model.xml> [--mcf <mcf.xml>]
//! prophet transform <model.xml> [--full] [--skeleton]
//! prophet estimate  <model.xml> [--nodes N] [--cpus C] [--processes P]
//!                   [--threads T] [--backend simulation|analytic]
//!                   [--trace <tf.txt>] [--timeline]
//! prophet sweep     <model.xml> --nodes 1,2,4,8 [--cpus C] [--workers W]
//!                   [--backend simulation|analytic] [--no-elab-cache]
//! prophet demo      sample|kernel6|jacobi|lapw0|pipeline|master_worker
//! ```
//!
//! `--backend simulation` (default) replays the model on the DES kernel
//! and can record traces; `--backend analytic` computes the prediction
//! in closed form — much faster for sweeps, no trace.
//!
//! Sweeps flatten each distinct SP point once and share the elaboration
//! across workers and repeat points (the session's elaboration cache);
//! `--no-elab-cache` opts out and re-elaborates every evaluation —
//! results are identical, only slower.
//!
//! `demo` prints a ready-made model as XML, so a full round trip is:
//!
//! ```text
//! prophet demo sample > sample.xml
//! prophet check sample.xml
//! prophet transform sample.xml
//! prophet estimate sample.xml --nodes 2 --cpus 2 --timeline
//! ```

use prophet::check::{check_model, McfConfig};
use prophet::codegen::generate_skeleton;
use prophet::core::{
    render_chain, render_chain_inline, Backend, Scenario, Session, SweepConfig, SweepPoint,
};
use prophet::machine::SystemParams;
use prophet::trace::{render_timeline, TraceAnalysis};
use prophet::uml::Model;
use prophet::workloads::models;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  prophet check <model.xml> [--mcf <mcf.xml>]\n  prophet transform <model.xml> [--full] [--skeleton]\n  prophet estimate <model.xml> [--nodes N] [--cpus C] [--processes P] [--threads T] [--backend simulation|analytic] [--trace <file>] [--timeline]\n  prophet sweep <model.xml> --nodes 1,2,4,8 [--cpus C] [--workers W] [--backend simulation|analytic] [--no-elab-cache]\n  prophet demo sample|kernel6|jacobi|lapw0|pipeline|master_worker"
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    match cmd.as_str() {
        "check" => cmd_check(&args[1..]),
        "transform" => cmd_transform(&args[1..]),
        "estimate" => cmd_estimate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "demo" => cmd_demo(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_model(args: &[String]) -> Result<Model, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("missing model file\n{}", usage()))?;
    let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    prophet::uml::xmi::model_from_xml(&xml).map_err(|e| format!("cannot parse `{path}`: {e}"))
}

/// Compile a session, rendering the full error chain on failure.
fn compile(model: Model) -> Result<Session, String> {
    Session::new(model).map_err(|e| render_chain(&e))
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let model = load_model(args)?;
    let mcf = match flag_value(args, "--mcf") {
        Some(mcf_path) => {
            let mcf_xml = std::fs::read_to_string(mcf_path)
                .map_err(|e| format!("cannot read `{mcf_path}`: {e}"))?;
            McfConfig::from_xml(&mcf_xml).map_err(|e| e.to_string())?
        }
        None => McfConfig::default(),
    };
    let diags = check_model(&model, &mcf);
    if diags.is_empty() {
        println!(
            "model `{}` conforms ({} elements)",
            model.name,
            model.element_count()
        );
        return Ok(());
    }
    for d in &diags {
        println!("{d}");
    }
    let errors = diags.iter().filter(|d| d.is_error()).count();
    if errors > 0 {
        Err(format!("{errors} error(s)"))
    } else {
        println!("{} warning(s), no errors", diags.len());
        Ok(())
    }
}

fn cmd_transform(args: &[String]) -> Result<(), String> {
    let model = load_model(args)?;
    if has_flag(args, "--skeleton") {
        let skel = generate_skeleton(&model).map_err(|e| e.to_string())?;
        println!("{skel}");
        return Ok(());
    }
    let unit = prophet::core::transform::to_cpp(&model).map_err(|e| e.to_string())?;
    if has_flag(args, "--full") {
        println!("{}", unit.full_text());
    } else {
        println!("{}", unit.model_text());
    }
    Ok(())
}

fn system_from(args: &[String]) -> Result<SystemParams, String> {
    let nodes = flag_value(args, "--nodes")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --nodes")?
        .unwrap_or(1);
    let cpus = flag_value(args, "--cpus")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --cpus")?
        .unwrap_or(1);
    let processes = flag_value(args, "--processes")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --processes")?
        .unwrap_or(nodes * cpus);
    let threads = flag_value(args, "--threads")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --threads")?
        .unwrap_or(1);
    let sp = SystemParams {
        nodes,
        cpus_per_node: cpus,
        processes,
        threads_per_process: threads,
    };
    sp.validate().map_err(|e| e.to_string())?;
    Ok(sp)
}

fn backend_from(args: &[String]) -> Result<Backend, String> {
    match flag_value(args, "--backend") {
        Some(s) => s.parse(),
        None => Ok(Backend::default()),
    }
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let sp = system_from(args)?;
    let backend = backend_from(args)?;
    if backend == Backend::Analytic && (has_flag(args, "--trace") || has_flag(args, "--timeline")) {
        return Err(
            "the analytic backend records no trace; drop --trace/--timeline or use --backend simulation"
                .to_string(),
        );
    }
    let session = compile(load_model(args)?)?;
    let run = session
        .evaluate(&Scenario::new(sp).with_backend(backend))
        .map_err(|e| render_chain(&e))?;
    println!(
        "model `{}` on {} node(s) × {} cpu(s), {} process(es) × {} thread(s)",
        session.program().name,
        sp.nodes,
        sp.cpus_per_node,
        sp.processes,
        sp.threads_per_process
    );
    println!("backend: {backend}");
    println!("predicted execution time: {:.6} s", run.predicted_time);
    if backend == Backend::Simulation {
        println!(
            "simulation: {} events, {} processes completed",
            run.report.events_processed, run.report.processes_completed
        );
        let analysis = TraceAnalysis::analyze(&run.trace);
        println!("\nelement profile:");
        for p in analysis.profile.iter().take(12) {
            println!(
                "  {:<18} count={:<5} total={:.6}s mean={:.6}s",
                p.element, p.count, p.total_time, p.mean_time
            );
        }
        if let Some(path) = flag_value(args, "--trace") {
            std::fs::write(path, run.trace.to_text())
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("\ntrace written to {path}");
        }
        if has_flag(args, "--timeline") {
            println!("\n{}", render_timeline(&analysis, sp.processes, 72));
        }
    }
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    // Validate every flag before paying the compile cost, so argument
    // mistakes get argument errors (not compile errors) and get them fast.
    let nodes_list = flag_value(args, "--nodes").ok_or("sweep requires --nodes 1,2,4,...")?;
    let cpus: usize = flag_value(args, "--cpus")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --cpus")?
        .unwrap_or(1);
    // `--threads` means threads-per-process (SP) in `estimate`; reject it
    // here rather than silently reinterpreting it as the worker pool.
    if has_flag(args, "--threads") {
        return Err(
            "sweep evaluates flat-MPI points; use --workers W for the worker-thread pool"
                .to_string(),
        );
    }
    let threads: usize = flag_value(args, "--workers")
        .map(|s| s.parse())
        .transpose()
        .map_err(|_| "bad --workers")?
        .unwrap_or(0);
    let backend = backend_from(args)?;
    let points: Vec<SweepPoint> = nodes_list
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map(|n| SweepPoint {
                    sp: SystemParams::flat_mpi(n, cpus),
                })
                .map_err(|_| format!("bad node count `{s}`"))
        })
        .collect::<Result<_, _>>()?;
    // Unlike the legacy CLI, sweep now gates on the model checker just
    // like `estimate` always has: a model with check errors won't sweep.
    let session = compile(load_model(args)?)?;
    // Stream completion progress to stderr while workers fill the grid.
    let mut done = 0usize;
    let total = points.len();
    let config = SweepConfig {
        threads,
        backend,
        no_elab_cache: has_flag(args, "--no-elab-cache"),
        ..Default::default()
    };
    let report = session.sweep_with(&points, &config, |_, _| {
        done += 1;
        eprint!("\r{done}/{total} configurations evaluated");
    });
    if total > 0 {
        eprintln!();
    }
    println!(
        "{:>8} {:>8} {:>14} {:>9}",
        "nodes", "P", "time(s)", "speedup"
    );
    let base = report.points.iter().find_map(|r| r.time());
    for r in &report.points {
        match &r.outcome {
            Ok(t) => {
                let speedup = base.map(|b| b / t).unwrap_or(1.0);
                println!(
                    "{:>8} {:>8} {:>14.6} {:>9.2}",
                    r.sp.nodes, r.sp.processes, t, speedup
                );
            }
            Err(e) => println!(
                "{:>8} {:>8}  failed: {}",
                r.sp.nodes,
                r.sp.processes,
                render_chain_inline(e)
            ),
        }
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let which = args.first().map(String::as_str).unwrap_or("sample");
    let model = match which {
        "sample" => models::sample_model(),
        "kernel6" => models::kernel6_model(1000, 10, 1e-9),
        "jacobi" => models::jacobi_model(1_000_000, 20, 1e-8),
        "lapw0" => models::lapw0_model(64, 32, 1e-4),
        "pipeline" => models::pipeline_model(32, 0.01, 4096),
        "master_worker" => models::master_worker_model(64, 0.01, 256),
        other => return Err(format!("unknown demo `{other}`")),
    };
    println!("{}", prophet::uml::xmi::model_to_xml(&model));
    Ok(())
}
