//! # prophet — Performance Prophet in Rust
//!
//! Umbrella crate of the reproduction of *"Automatic Performance Model
//! Transformation from UML to C++"* (Pllana, Benkner, Xhafa, Barolli —
//! ICPP Workshops 2008). Re-exports the whole stack:
//!
//! | module | crate | role in the paper's architecture (Figure 2) |
//! |---|---|---|
//! | [`uml`] | prophet-uml | Teuta's model layer: activity diagrams, stereotypes, traverser |
//! | [`xml`] | prophet-xml | Models (XML) / MCF / CF file substrate |
//! | [`expr`] | prophet-expr | cost-function & code-fragment language |
//! | [`check`] | prophet-check | Model Checker + MCF |
//! | [`codegen`] | prophet-codegen | UML→C++ transformation (Figure 5) → PMP |
//! | [`sim`] | prophet-sim | CSIM-substitute simulation engine |
//! | [`machine`] | prophet-machine | machine model from SP |
//! | [`estimator`] | prophet-estimator | Performance Estimator |
//! | [`trace`] | prophet-trace | TF trace files + visualization data |
//! | [`core`] | prophet-core | transformation pipeline, compile-once sessions, sweeps |
//! | [`opt`] | prophet-opt | inverse queries: lazy Pareto-front search over the SP lattice |
//! | [`serve`] | prophet-serve | prediction service: session pool + HTTP/JSON layer |
//! | [`router`] | prophet-router | scale-out front door: digest-routed sharding across serve fleets |
//! | [`workloads`] | prophet-workloads | Livermore kernels + experiment models |
//!
//! ## Quickstart
//!
//! The engine API separates *compile* (check + transform, once) from
//! *serve* (any number of cheap evaluations):
//!
//! ```
//! use prophet::core::{mpi_grid, Scenario, Session};
//! use prophet::machine::SystemParams;
//! use prophet::workloads::models::sample_model;
//!
//! // Compile once: model check + both transformation backends.
//! let session = Session::new(sample_model())?;
//!
//! // Evaluate one scenario...
//! let run = session.evaluate(&Scenario::new(SystemParams::flat_mpi(4, 1)))?;
//! assert!(run.predicted_time > 0.0);
//!
//! // ...or sweep a whole SP grid in parallel against the same artifacts.
//! let report = session.sweep(&mpi_grid(&[1, 2, 4, 8], 1));
//! assert_eq!(report.failures(), 0);
//! # Ok::<(), prophet::core::Error>(())
//! ```
//!
//! Evaluations run on one of two backends
//! ([`core::Backend`], `--backend` on the CLI): `Simulation` (default)
//! replays the model on the DES kernel with full contention modeling
//! and traces; `Analytic` resolves the same op lists in closed form —
//! much faster for sweeps, no trace. The two are differentially tested
//! against each other (`tests/conformance.rs`): bit-equal on
//! deterministic communication-free models, within 1e-9 relative on
//! deterministic message-passing ones.
//!
//! Migrating from the deprecated single-shot `Project` API? See the
//! migration map in [`core::project`].
//!
//! See `examples/` for runnable end-to-end scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction map.

pub use prophet_check as check;
pub use prophet_codegen as codegen;
pub use prophet_core as core;
pub use prophet_estimator as estimator;
pub use prophet_expr as expr;
pub use prophet_machine as machine;
pub use prophet_opt as opt;
pub use prophet_router as router;
pub use prophet_serve as serve;
pub use prophet_sim as sim;
pub use prophet_trace as trace;
pub use prophet_uml as uml;
pub use prophet_workloads as workloads;
pub use prophet_xml as xml;
