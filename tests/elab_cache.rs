//! Cache-equivalence suite: the elaboration cache is a pure
//! memoization.
//!
//! For every bundled workload model, an SP sweep served from the
//! session's `ElaborationCache` must be **bit-identical** to the same
//! sweep with the cache disabled — on both backends, at every seed —
//! and the hit/miss counters must match the predicted S-vs-S×R pattern:
//! a sweep over S SP points × R seeds × both backends performs exactly
//! S elaborations (the first sweep's misses); every other evaluation is
//! a hit.

use prophet::core::{Backend, ElabStats, EstimatorOptions, Scenario, Session, SweepConfig};
use prophet::machine::SystemParams;
use prophet::uml::Model;
use prophet::workloads::models::{
    jacobi_model, kernel6_model, lapw0_model, master_worker_model, pipeline_model, sample_model,
};

const SEEDS: [u64; 4] = [0x5EED, 1, 42, u64::MAX];

fn flat_grid() -> Vec<SystemParams> {
    [1, 2, 3, 4, 6, 8, 12, 16]
        .map(|n| SystemParams::flat_mpi(n, 1))
        .to_vec()
}

fn hybrid_grid() -> Vec<SystemParams> {
    [1, 2, 3, 4, 6, 8, 12, 16]
        .map(|n| SystemParams {
            nodes: n,
            cpus_per_node: 2,
            processes: n,
            threads_per_process: 2,
        })
        .to_vec()
}

/// Every bundled workload model with an 8-point grid.
fn cases() -> Vec<(&'static str, Model, Vec<SystemParams>)> {
    vec![
        ("kernel6", kernel6_model(500, 10, 2e-9), flat_grid()),
        ("sample", sample_model(), flat_grid()),
        ("jacobi", jacobi_model(50_000, 3, 1e-8), flat_grid()),
        ("pipeline", pipeline_model(8, 0.01, 1024), flat_grid()),
        (
            "master_worker",
            master_worker_model(16, 0.005, 128),
            flat_grid(),
        ),
        ("lapw0", lapw0_model(32, 8, 1e-5), hybrid_grid()),
    ]
}

fn sweep_times(
    session: &Session,
    grid: &[SystemParams],
    backend: Backend,
    seed: u64,
    no_elab_cache: bool,
) -> Vec<Option<f64>> {
    let config = SweepConfig {
        backend,
        no_elab_cache,
        options: EstimatorOptions {
            seed,
            ..Default::default()
        },
        ..Default::default()
    };
    let points: Vec<_> = grid
        .iter()
        .map(|&sp| prophet::core::SweepPoint { sp })
        .collect();
    session.sweep_with(&points, &config, |_, _| {}).times()
}

fn assert_bit_identical(name: &str, backend: Backend, a: &[Option<f64>], b: &[Option<f64>]) {
    assert_eq!(a.len(), b.len(), "{name}/{backend}");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        match (x, y) {
            (Some(x), Some(y)) => assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}/{backend} point {i}: cached {x:?} != uncached {y:?}"
            ),
            (None, None) => {}
            other => panic!("{name}/{backend} point {i}: outcome kind diverged: {other:?}"),
        }
    }
}

/// Headline equivalence: cached sweeps are bit-identical to uncached
/// sweeps for every model × backend × seed.
#[test]
fn cached_sweeps_are_bit_identical_to_uncached() {
    for (name, model, grid) in cases() {
        let session = Session::new(model).unwrap_or_else(|e| panic!("{name}: {e}"));
        for backend in [Backend::Simulation, Backend::Analytic] {
            for seed in SEEDS {
                let cached = sweep_times(&session, &grid, backend, seed, false);
                let uncached = sweep_times(&session, &grid, backend, seed, true);
                assert_bit_identical(name, backend, &cached, &uncached);
            }
        }
    }
}

/// Counter contract: S SP points × R seeds × both backends = S misses,
/// everything else hits — the flatten-once sweep pattern.
#[test]
fn counters_match_the_s_vs_sxr_pattern() {
    for (name, model, grid) in cases() {
        let session = Session::new(model).unwrap_or_else(|e| panic!("{name}: {e}"));
        let s = grid.len() as u64;
        let r = SEEDS.len() as u64;
        assert_eq!(session.elab_stats(), ElabStats::default(), "{name}");

        // R seed sweeps on the simulation backend: S misses, S×(R−1) hits.
        for seed in SEEDS {
            sweep_times(&session, &grid, Backend::Simulation, seed, false);
        }
        let stats = session.elab_stats();
        assert_eq!(stats.misses, s, "{name}: {stats:?}");
        assert_eq!(stats.hits, s * (r - 1), "{name}: {stats:?}");
        assert_eq!(stats.bypasses, 0, "{name}: {stats:?}");

        // The analytic backend reuses the same elaborations: no new
        // misses, S more hits — S×R×2 evaluations, S flattens total.
        for seed in SEEDS {
            sweep_times(&session, &grid, Backend::Analytic, seed, false);
        }
        let stats = session.elab_stats();
        assert_eq!(stats.misses, s, "{name}: backends must share: {stats:?}");
        assert_eq!(stats.hits, s * (2 * r - 1), "{name}: {stats:?}");
        assert_eq!(stats.lookups(), s * r * 2, "{name}: {stats:?}");

        // Uncached sweeps leave the counters alone.
        sweep_times(&session, &grid, Backend::Simulation, SEEDS[0], true);
        assert_eq!(session.elab_stats(), stats, "{name}: bypass flag leaked");
    }
}

/// Single-scenario path: `Session::evaluate` shares the same cache as
/// sweeps, including across backends and full-trace evaluations.
#[test]
fn evaluate_and_sweep_share_one_cache() {
    let session = Session::new(jacobi_model(50_000, 3, 1e-8)).unwrap();
    let grid = flat_grid();
    sweep_times(&session, &grid, Backend::Simulation, 7, false);
    let before = session.elab_stats();

    // Tracing differs from the sweep's forced-off tracing but is not
    // part of the elaboration key: still a hit.
    let e = session
        .evaluate(&Scenario::new(grid[3]).with_seed(99))
        .unwrap();
    assert!(!e.trace.is_empty());
    let stats = session.elab_stats();
    assert_eq!(stats.misses, before.misses);
    assert_eq!(stats.hits, before.hits + 1);

    // A comm-parameter change is part of the key: a miss, not a stale hit.
    let fast = session
        .evaluate(
            &Scenario::new(grid[3])
                .with_comm(prophet::machine::CommParams::fast_interconnect())
                .with_seed(99),
        )
        .unwrap();
    assert_eq!(session.elab_stats().misses, before.misses + 1);
    // And the prediction differs (jacobi communicates), proving the
    // cache did not serve the default-comm elaboration.
    assert_ne!(fast.predicted_time.to_bits(), e.predicted_time.to_bits());
}
