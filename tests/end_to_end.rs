//! Cross-crate end-to-end scenarios beyond the figure goldens:
//! determinism, sweep consistency, estimator/codegen agreement, and
//! failure-path behaviour.

use prophet::core::{mpi_grid, Error, Scenario, Session, SweepConfig};
use prophet::estimator::{Estimator, EstimatorOptions};
use prophet::machine::{CommParams, MachineModel, SystemParams};
use prophet::sim::CalendarKind;
use prophet::trace::TraceAnalysis;
use prophet::uml::{ModelBuilder, TagValue, VarType};
use prophet::workloads::models::{jacobi_model, master_worker_model, sample_model};

#[test]
fn determinism_across_full_pipeline() {
    let run = || {
        let session = Session::new(jacobi_model(100_000, 5, 1e-8)).unwrap();
        let r = session
            .evaluate(&Scenario::new(SystemParams::flat_mpi(4, 1)))
            .unwrap();
        (
            r.predicted_time,
            r.report.events_processed,
            r.trace.to_text(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn calendar_ablation_agrees_end_to_end() {
    // Ablation A3: both calendar implementations give identical results.
    let session = Session::new(jacobi_model(100_000, 5, 1e-8)).unwrap();
    let time_with = |kind: CalendarKind| {
        let scenario = Scenario::new(SystemParams::flat_mpi(4, 1)).with_options(EstimatorOptions {
            calendar: kind,
            ..Default::default()
        });
        session.evaluate(&scenario).unwrap().predicted_time
    };
    assert_eq!(
        time_with(CalendarKind::BinaryHeap),
        time_with(CalendarKind::SortedVec)
    );
}

#[test]
fn serial_and_parallel_sweeps_agree_on_real_model() {
    let session = Session::new(jacobi_model(200_000, 5, 1e-8)).unwrap();
    let points = mpi_grid(&[1, 2, 4, 8], 1);
    let serial_cfg = SweepConfig {
        threads: 1,
        ..Default::default()
    };
    let a = session.sweep_with(&points, &serial_cfg, |_, _| {});
    let parallel_cfg = SweepConfig {
        threads: 3,
        ..Default::default()
    };
    let b = session.sweep_with(&points, &parallel_cfg, |_, _| {});
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.time(), y.time());
        assert_eq!(x.outcome.is_err(), y.outcome.is_err());
    }
}

#[test]
fn seed_changes_nothing_for_deterministic_models() {
    // Our models have no stochastic elements; the seed must not leak into
    // predictions (it exists for future stochastic cost functions).
    let session = Session::new(sample_model()).unwrap();
    let t = |seed: u64| {
        session
            .evaluate(&Scenario::default().with_seed(seed))
            .unwrap()
            .predicted_time
    };
    assert_eq!(t(1), t(999));
}

#[test]
fn estimator_and_cpp_expose_same_cost_functions() {
    let session = Session::new(sample_model()).unwrap();
    // Every function in the IR appears as a C++ definition.
    for f in &session.program().functions {
        assert!(
            session
                .cpp()
                .cost_functions
                .contains(&format!("double {}(", f.name)),
            "function {} missing from C++",
            f.name
        );
    }
}

#[test]
fn comm_params_shift_the_crossover() {
    // Same model, slower network → worse time at high P.
    let session = Session::new(jacobi_model(200_000, 10, 1e-8)).unwrap();
    let time = |comm: CommParams, p: usize| {
        session
            .evaluate(&Scenario::new(SystemParams::flat_mpi(p, 1)).with_comm(comm))
            .unwrap()
            .predicted_time
    };
    let slow16 = time(CommParams::default(), 16);
    let fast16 = time(CommParams::fast_interconnect(), 16);
    assert!(fast16 < slow16, "fast {fast16} !< slow {slow16}");
    // At P = 1 the network is irrelevant.
    let slow1 = time(CommParams::default(), 1);
    let fast1 = time(CommParams::fast_interconnect(), 1);
    assert!((slow1 - fast1).abs() < 1e-12);
}

#[test]
fn master_worker_gather_cost_grows_with_p() {
    let session = Session::new(master_worker_model(64, 0.0, 1 << 16)).unwrap(); // zero compute
    let t = |p: usize| {
        session
            .evaluate(&Scenario::new(SystemParams::flat_mpi(p, 1)))
            .unwrap()
            .predicted_time
    };
    assert!(
        t(8) > t(2),
        "collective-only time must grow with P: {} vs {}",
        t(8),
        t(2)
    );
}

#[test]
fn trace_is_well_formed_for_hybrid_runs() {
    let sp = SystemParams {
        nodes: 2,
        cpus_per_node: 2,
        processes: 2,
        threads_per_process: 2,
    };
    let run = Session::new(prophet::workloads::models::lapw0_model(32, 8, 1e-5))
        .unwrap()
        .evaluate(&Scenario::new(sp))
        .unwrap();
    let analysis = TraceAnalysis::analyze(&run.trace);
    assert!(analysis.unmatched.is_empty(), "{:?}", analysis.unmatched);
    assert!(analysis.efficiency(2) > 0.0);
}

#[test]
fn direct_estimator_use_without_session() {
    // The estimator is usable as a library on hand-built IR.
    use prophet::estimator::{Program, Step};
    use prophet::expr::parse_expression;
    let mut program = Program::new("direct");
    program.body = Step::Exec {
        name: "only".into(),
        cost: Some(parse_expression("1.25").unwrap()),
        code: vec![],
    };
    let machine = MachineModel::new(SystemParams::default(), CommParams::default()).unwrap();
    let eval = Estimator::new(machine, EstimatorOptions::default())
        .evaluate(&program)
        .unwrap();
    assert_eq!(eval.predicted_time, 1.25);
}

#[test]
fn failure_paths_are_reported_not_panicked() {
    // Unparsable guard.
    let mut b = ModelBuilder::new("badguard");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let d = b.decision(main, "dec");
    let x = b.action(main, "X", "1");
    let y = b.action(main, "Y", "1");
    let mg = b.merge(main, "m");
    let f = b.final_node(main, "end");
    b.flow(main, i, d);
    b.guarded_flow(main, d, x, "GV >=");
    b.guarded_flow(main, d, y, "else");
    b.flow(main, x, mg);
    b.flow(main, y, mg);
    b.flow(main, mg, f);
    assert!(matches!(Session::new(b.build()), Err(Error::Check(_))));

    // Rank out of range at elaboration time.
    let mut b = ModelBuilder::new("badrank");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let s = b.mpi(
        main,
        "s0",
        "send",
        &[
            ("dest", TagValue::Expr("99".into())),
            ("size", TagValue::Expr("8".into())),
        ],
    );
    let f = b.final_node(main, "end");
    b.flow(main, i, s);
    b.flow(main, s, f);
    let session = Session::new(b.build()).unwrap();
    let result = session.evaluate(&Scenario::new(SystemParams::flat_mpi(2, 1)));
    assert!(matches!(result, Err(Error::Estimate(_))));
}

#[test]
fn locals_are_per_process() {
    // A local accumulates per process via code fragments; guards on it
    // must behave identically on every rank (SPMD state isolation).
    let mut b = ModelBuilder::new("locals");
    b.local("acc", VarType::Double, Some("0"));
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let a = b.action(main, "Bump", "0.1");
    b.attach_code(a, "acc = acc + pid;");
    let d = b.decision(main, "check");
    let hot = b.action(main, "Hot", "1.0");
    let cold = b.action(main, "Cold", "0.5");
    let mg = b.merge(main, "m");
    let f = b.final_node(main, "end");
    b.flow(main, i, a);
    b.flow(main, a, d);
    b.guarded_flow(main, d, hot, "acc > 1.5");
    b.guarded_flow(main, d, cold, "else");
    b.flow(main, hot, mg);
    b.flow(main, cold, mg);
    b.flow(main, mg, f);

    let run = Session::new(b.build())
        .unwrap()
        .evaluate(&Scenario::new(SystemParams::flat_mpi(4, 1)))
        .unwrap();
    let analysis = TraceAnalysis::analyze(&run.trace);
    // pids 0,1 take Cold (acc = 0,1), pids 2,3 take Hot (acc = 2,3).
    assert_eq!(analysis.element("Hot").unwrap().count, 2);
    assert_eq!(analysis.element("Cold").unwrap().count, 2);
}
