//! Differential suite for the lazy SP-lattice optimizer (`crates/opt`).
//!
//! The contract under test: on every bundled workload, with either
//! backend as the oracle, [`Session::optimize`] returns a Pareto
//! frontier **bit-identical** to the brute-force full-grid reference —
//! while evaluating strictly fewer lattice points. The brute-force
//! path shares the frontier-extraction machinery, so the differential
//! isolates exactly the part that can go wrong: the pruning.
//!
//! A property-based section then drives random deadline/budget
//! constraints through the same lattice and asserts that no frontier
//! point ever violates them, that the pruned and exhaustive frontiers
//! still agree, and that the search stays lazy.

use prophet::core::{Backend, Session};
use prophet::opt::{Constraints, OptimizeReport, OptimizeRequest, OptimizeSession};
use prophet::uml::Model;
use prophet::workloads::models::{
    jacobi_model, kernel6_model, lapw0_model, master_worker_model, pipeline_model, sample_model,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A frontier rendered to exact bits: any divergence — an extra point,
/// a missing point, even a 1-ulp time difference — fails the equality.
fn frontier_bits(report: &OptimizeReport) -> Vec<(usize, usize, u64, u64, u64)> {
    report
        .frontier
        .iter()
        .map(|p| {
            (
                p.sp.nodes,
                p.sp.cpus_per_node,
                p.cost.to_bits(),
                p.time.to_bits(),
                p.speedup.to_bits(),
            )
        })
        .collect()
}

struct Case {
    name: &'static str,
    model: Model,
    nodes: Vec<usize>,
    cpus: Vec<usize>,
    constraints: Constraints,
}

/// Every bundled workload with a lattice dense enough for the lazy
/// search to have cells worth pruning. The curve shapes differ on
/// purpose: increasing (sample, pipeline), constant (kernel6),
/// decreasing-then-flat (jacobi, master_worker), and wiggly with a
/// second dip (lapw0) — each exercises a different pruning rule.
fn cases() -> Vec<Case> {
    let dense: Vec<usize> = (1..=32).collect();
    vec![
        Case {
            name: "sample",
            model: sample_model(),
            nodes: dense.clone(),
            cpus: vec![1, 2, 4],
            constraints: Constraints::default(),
        },
        Case {
            name: "kernel6",
            model: kernel6_model(500, 10, 2e-9),
            nodes: dense.clone(),
            cpus: vec![1, 2, 4],
            constraints: Constraints::default(),
        },
        Case {
            name: "jacobi",
            model: jacobi_model(200_000, 5, 1e-8),
            nodes: dense.clone(),
            cpus: vec![1, 2, 4],
            constraints: Constraints::default(),
        },
        Case {
            name: "pipeline",
            model: pipeline_model(20, 0.01, 1024),
            nodes: dense.clone(),
            cpus: vec![1, 2, 4],
            constraints: Constraints::default(),
        },
        Case {
            name: "master_worker",
            model: master_worker_model(64, 0.005, 128),
            nodes: dense.clone(),
            cpus: vec![1, 2, 4],
            // Strictly decreasing with an almost-but-not-bit-equal
            // floor: neither the domination nor the plateau rule can
            // fire, so laziness comes from the deadline making the
            // slow, cheap cells provably infeasible — the constraint
            // applies identically to the brute-force reference.
            constraints: Constraints {
                deadline: Some(0.06),
                max_cost: None,
            },
        },
        Case {
            name: "lapw0",
            model: lapw0_model(64, 16, 1e-5),
            nodes: dense,
            cpus: vec![1, 2, 4],
            constraints: Constraints::default(),
        },
    ]
}

fn request(case: &Case, backend: Backend) -> OptimizeRequest {
    OptimizeRequest {
        nodes: case.nodes.clone(),
        cpus: case.cpus.clone(),
        constraints: case.constraints,
        backend,
        ..Default::default()
    }
}

fn check_case(case: &Case, backend: Backend) {
    let session = Session::new(case.model.clone()).expect("bundled workloads compile");
    let req = request(case, backend);
    let lazy = session.optimize(&req).expect("lazy search succeeds");
    let full = session
        .optimize_brute_force(&req)
        .expect("brute force succeeds");
    assert_eq!(
        full.oracle_evals, full.grid_size,
        "{}: reference is exhaustive",
        case.name
    );
    assert_eq!(
        frontier_bits(&lazy),
        frontier_bits(&full),
        "{} ({backend}): lazy frontier must match brute force bit-for-bit",
        case.name
    );
    assert_eq!(lazy.best, full.best, "{}: best index agrees", case.name);
    assert!(
        lazy.oracle_evals < lazy.grid_size,
        "{} ({backend}): lazy search evaluated the whole grid ({} of {})",
        case.name,
        lazy.oracle_evals,
        lazy.grid_size
    );
}

#[test]
fn frontier_matches_brute_force_analytic() {
    for case in cases() {
        check_case(&case, Backend::Analytic);
    }
}

#[test]
fn frontier_matches_brute_force_simulation() {
    for case in cases() {
        check_case(&case, Backend::Simulation);
    }
}

// ---------------------------------------------------------------------
// Random-constraint properties.
// ---------------------------------------------------------------------

/// One compiled jacobi session shared across proptest cases (compiling
/// per case would dominate the runtime), plus the unconstrained
/// brute-force time range the random constraints are scaled from.
fn shared() -> &'static (Session, f64, f64, f64) {
    static SHARED: OnceLock<(Session, f64, f64, f64)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let session = Session::new(jacobi_model(200_000, 5, 1e-8)).unwrap();
        let req = OptimizeRequest {
            nodes: (1..=32).collect(),
            cpus: vec![1, 2, 4],
            ..Default::default()
        };
        let full = session.optimize_brute_force(&req).unwrap();
        let times: Vec<f64> = full.frontier.iter().map(|p| p.time).collect();
        let tmin = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let tmax = times.iter().cloned().fold(0.0, f64::max);
        let cmax = full.frontier.iter().map(|p| p.cost).fold(0.0, f64::max);
        (session, tmin, tmax, cmax)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary deadline/budget constraints the frontier never
    /// contains a violating point, still matches brute force exactly,
    /// and the search still beats exhaustive evaluation.
    #[test]
    fn random_constraints_hold_on_the_frontier(
        deadline_frac in 0.0f64..1.5,
        budget_frac in 0.05f64..1.2,
        use_deadline in any::<bool>(),
        use_budget in any::<bool>(),
    ) {
        let (session, tmin, tmax, cmax) = shared();
        let constraints = Constraints {
            deadline: use_deadline.then(|| tmin + deadline_frac * (tmax - tmin)),
            max_cost: use_budget.then(|| budget_frac * cmax),
        };
        let req = OptimizeRequest {
            nodes: (1..=32).collect(),
            cpus: vec![1, 2, 4],
            constraints,
            ..Default::default()
        };
        let lazy = session.optimize(&req).unwrap();
        let full = session.optimize_brute_force(&req).unwrap();
        prop_assert_eq!(frontier_bits(&lazy), frontier_bits(&full));
        for p in &lazy.frontier {
            if let Some(d) = constraints.deadline {
                prop_assert!(p.time <= d, "frontier point {:?} breaks the deadline", p.sp);
            }
            if let Some(b) = constraints.max_cost {
                prop_assert!(p.cost <= b, "frontier point {:?} breaks the budget", p.sp);
            }
        }
        prop_assert!(
            lazy.oracle_evals < lazy.grid_size,
            "lazy search evaluated the whole grid ({} of {})",
            lazy.oracle_evals,
            lazy.grid_size
        );
    }
}
