//! Golden tests pinning each figure of the paper to an executable
//! artifact (experiments F1–F8 in DESIGN.md).

use prophet::codegen::{build_flow_tree, generate_cpp};
use prophet::core::transform::{to_cpp, to_program};
use prophet::core::{Scenario, Session};
use prophet::trace::TraceAnalysis;
use prophet::uml::{
    performance_profile, ExplicitStackNavigator, ModelBuilder, RecordingHandler,
    StereotypeApplication, TagValue, TraceMessage, Traverser,
};
use prophet::workloads::models::{kernel6_model, sample_model};

// ---------------------------------------------------------------- F1 --

#[test]
fn stereotype_fig1() {
    // Figure 1(a): definition of <<action+>> on metaclass Action with
    // tags id : Integer, type : String, time : Double.
    let profile = performance_profile();
    let st = profile.get("action+").expect("defined");
    assert_eq!(st.display_name(), "<<action+>>");
    for (tag, ty) in [("id", "Integer"), ("type", "String"), ("time", "Double")] {
        assert_eq!(st.tag(tag).unwrap().tag_type.to_string(), ty);
    }

    // Figure 1(b): usage `SampleAction «action+» {id = 1, type = SAMPLE,
    // time = 10}`.
    let usage = StereotypeApplication::new("action+")
        .with("id", TagValue::Int(1))
        .with("type", TagValue::Str("SAMPLE".into()))
        .with("time", TagValue::Num(10.0));
    assert_eq!(
        usage.display(),
        "<<action+>> {id = 1, type = SAMPLE, time = 10}"
    );
}

// ---------------------------------------------------------------- F3 --

#[test]
fn kernel6_model_shape_fig3() {
    // Figure 3(c): kernel 6 modeled by ONE <<action+>> with cost fn FK6.
    let model = kernel6_model(1000, 10, 1e-9);
    let k6 = model.element_by_name("Kernel6").expect("element exists");
    assert_eq!(k6.stereotype_name(), Some("action+"));
    assert_eq!(k6.cost_expr(), Some("FK6(KN, KM)"));
    // Exactly one performance element: the detailed loop nest of
    // Figure 3(b) is deliberately NOT modeled.
    assert_eq!(model.performance_elements().len(), 1);
}

// ---------------------------------------------------------------- F4 --

#[test]
fn kernel6_cpp_fig4() {
    // Figure 4(c): `ActionPlus kernel6(...); kernel6.execute(...,FK6(...));`
    let unit = to_cpp(&kernel6_model(1000, 10, 1e-9)).unwrap();
    assert!(
        unit.program.contains("ActionPlus kernel6("),
        "{}",
        unit.program
    );
    assert!(
        unit.program
            .contains("kernel6.execute(uid, pid, tid, FK6(KN, KM));"),
        "{}",
        unit.program
    );
}

// ---------------------------------------------------------------- F5 --

#[test]
fn figure5_phase_order() {
    // The generated unit must show the Figure-5 phase order: globals →
    // cost functions → locals → declarations → flow.
    let unit = generate_cpp(&sample_model()).unwrap();
    let text = unit.model_text();
    let pos = |needle: &str| {
        text.find(needle)
            .unwrap_or_else(|| panic!("missing {needle}"))
    };
    let globals = pos("int GV = 0;");
    let costs = pos("double FA1()");
    let decls = pos("ActionPlus a1(");
    let flow = pos("a1.execute");
    assert!(globals < costs && costs < decls && decls < flow);
}

#[test]
fn transformation_scales_structurally() {
    // Models of very different sizes transform without structural limits
    // (full scaling curves live in bench_transform).
    for width in [10usize, 100, 1000] {
        let mut b = ModelBuilder::new("wide");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let mut prev = i;
        for k in 0..width {
            let a = b.action(main, &format!("A{k}"), "0.001");
            b.flow(main, prev, a);
            prev = a;
        }
        let f = b.final_node(main, "end");
        b.flow(main, prev, f);
        let model = b.build();
        let unit = to_cpp(&model).unwrap();
        assert_eq!(unit.program.matches(".execute(").count(), width);
        let program = to_program(&model).unwrap();
        assert_eq!(program.body.leaf_count(), width);
    }
}

// ---------------------------------------------------------------- F6 --

#[test]
fn traverser_sequence_fig6() {
    // Figure 6 message protocol: navigationCommand →
    // getCurrentElement(ce) → visitElement(ce), for every element.
    let model = sample_model();
    let mut nav = ExplicitStackNavigator::new(model.main_diagram());
    let mut sink = RecordingHandler::default();
    let mut traverser = Traverser::recording();
    traverser.traverse(&model, &mut nav, &mut sink);

    let mut i = 0;
    let msgs = &traverser.protocol;
    let mut rounds = 0;
    while i < msgs.len() {
        assert_eq!(msgs[i], TraceMessage::NavigationCommand);
        if i + 1 >= msgs.len() {
            break;
        }
        match &msgs[i + 1] {
            TraceMessage::GetCurrentElement(ce)
                if !ce.starts_with("diagram:") && !ce.starts_with("/diagram:") =>
            {
                assert_eq!(msgs[i + 2], TraceMessage::VisitElement(ce.clone()));
                rounds += 1;
                i += 3;
            }
            TraceMessage::GetCurrentElement(_) => i += 2,
            other => panic!("unexpected {other:?}"),
        }
    }
    // 8 main elements + 2 sub elements, two phases each.
    assert_eq!(rounds, 20);
}

// ------------------------------------------------------------- F7/F8 --

#[test]
fn sample_model_structure_fig7() {
    let model = sample_model();
    // Elements of Figure 7(a).
    for name in ["A1", "A2", "A4", "SA", "SA1", "SA2"] {
        assert!(model.element_by_name(name).is_some(), "missing {name}");
    }
    // Globals GV and P (right-down corner of Figure 7(a)).
    let globals: Vec<_> = model.globals().map(|v| v.name.as_str()).collect();
    assert_eq!(globals, vec!["GV", "P"]);
    // Figure 7(b): code associated with A1 assigns GV and P.
    assert_eq!(
        model.element_by_name("A1").unwrap().code_fragment(),
        Some("GV = 1; P = 4;")
    );
    // Figure 7(c): cost function associated with A1 is parameterized.
    assert!(model
        .functions
        .iter()
        .any(|f| f.name == "FA1" && f.body.contains("P")));
    // SA is hierarchical: its body is the separate diagram "SA".
    let flow = build_flow_tree(&model, model.main_diagram()).unwrap();
    assert!(format!("{flow:?}").contains("Composite"));
}

#[test]
fn sample_model_cpp_fig8() {
    // The complete Figure-8 listing shape, pinned as a golden test.
    let unit = to_cpp(&sample_model()).unwrap();
    let text = unit.model_text();

    // (a) globals + one cost function per element {A1, A2, A4, SA1, SA2}.
    assert!(text.contains("int GV = 0;"));
    assert!(text.contains("int P = 4;"));
    for f in ["FA1", "FA2", "FA4", "FSA1", "FSA2"] {
        assert!(
            text.contains(&format!("double {f}(")),
            "missing {f}:\n{text}"
        );
    }
    // FSA2 takes pid as a parameter (Figure 8(a)).
    assert!(text.contains("double FSA2(double pid)"));

    // (b) declarations for executable elements only (SA has none).
    for decl in [
        "ActionPlus a1(\"A1\"",
        "ActionPlus a2(\"A2\"",
        "ActionPlus a4(\"A4\"",
        "ActionPlus sA1(\"SA1\"",
        "ActionPlus sA2(\"SA2\"",
    ] {
        assert!(text.contains(decl), "missing `{decl}`:\n{text}");
    }
    assert!(
        !text.contains("ActionPlus sA(\"SA\""),
        "SA must not be declared"
    );

    // (b) flow: code associated with A1 precedes its execute; SA's C++ is
    // nested inside the main flow; branch is if/else.
    let pos = |needle: &str| {
        text.find(needle)
            .unwrap_or_else(|| panic!("missing {needle}"))
    };
    assert!(pos("GV = 1;") < pos("a1.execute"));
    assert!(pos("if (GV == 1) {") < pos("{ // Activity SA"));
    assert!(pos("{ // Activity SA") < pos("sA1.execute"));
    assert!(pos("sA1.execute") < pos("sA2.execute(uid, pid, tid, FSA2(pid));"));
    assert!(pos("} else {") < pos("a2.execute"));
    assert!(pos("a2.execute") < pos("a4.execute"));
}

#[test]
fn sample_model_executes_fig7_semantics() {
    let run = Session::new(sample_model())
        .unwrap()
        .evaluate(&Scenario::default())
        .unwrap();
    let a = TraceAnalysis::analyze(&run.trace);
    // GV = 1 → SA branch; A2 never runs; A4 always runs.
    assert!(a.element("SA").is_some());
    assert!(a.element("A2").is_none());
    assert!(a.element("A4").is_some());
}
