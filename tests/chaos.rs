//! Chaos soak for elastic fleet membership: real `prophet serve` and
//! `prophet router` binaries over loopback, with the fleet reshaped
//! *while client traffic runs*.
//!
//! The scenario pinned here is the PR's acceptance criterion in one
//! story: 4×8 concurrent clients hammer a three-shard fleet through the
//! router while a fourth shard joins (`POST /v1/shards {"add": …}`) and
//! the first shard leaves (`{"remove": …}`) mid-traffic. Afterwards:
//!
//! - **zero** non-200 responses — the epoch-swapped ring plus the
//!   warm-before-swap / evict-after-swap handoff makes both membership
//!   changes invisible to clients;
//! - fleet-wide `session_compiles` stays within `models + handoff
//!   primes` — rebalance must not trigger wholesale recompiles;
//! - every response's `X-Prophet-Trace` appears in **exactly one**
//!   shard's `/v1/requests` journal — requests are routed once, not
//!   duplicated or lost across epochs.

use prophet::serve::client::{self, Connection};
use prophet::serve::json::Json;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Mutex;
use std::time::Duration;

/// A spawned `prophet` binary with a parsed listen address. Killed on
/// drop so a failing test never leaks server processes.
struct Proc {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `prophet <args>` and parse the `listening on http://ADDR`
/// line both `serve` and `router` print first.
fn spawn(args: &[&str]) -> Proc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable listen line: {line:?}"));
    std::thread::spawn(move || std::io::copy(&mut stdout.into_inner(), &mut std::io::sink()));
    Proc { child, addr }
}

const TOKEN: &str = "chaos-s3cret";

fn spawn_shard() -> Proc {
    // Each serve worker owns one connection at a time, and the router
    // keeps a pool of keep-alive connections per shard (one per router
    // worker) — plus health probes, handoff warms, and this test's
    // direct metric reads all dial in. Size the shard worker pool above
    // that sum, or probe connections starve behind pooled keep-alives,
    // shards get spuriously marked down, and traffic fails over to
    // non-owners (which recompiles and blurs the compile bound).
    spawn(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "8",
        "--token",
        TOKEN,
    ])
}

/// POST an operator-token-authenticated body and return the parsed
/// response.
fn post_op(addr: SocketAddr, path: &str, body: &Json) -> (u16, Json) {
    let raw = Connection::connect(addr)
        .unwrap()
        .send(
            "POST",
            path,
            Some(&body.encode()),
            &[("authorization", &format!("Bearer {TOKEN}"))],
        )
        .unwrap();
    let parsed = prophet::serve::json::parse(&raw.body).unwrap_or(Json::Null);
    (raw.status, parsed)
}

fn num(v: &Json, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {v}"));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("non-number at {path:?} in {v}"))
}

/// All ten bundled demo models: the 4×8 worker schedule below covers
/// every one, so "model count" in the compile bound is exactly 10.
const MODELS: [&str; 10] = [
    "sample",
    "kernel6",
    "jacobi",
    "lapw0",
    "pipeline",
    "master_worker",
    "task_farm",
    "branching_pipeline",
    "halo_ring",
    "mapreduce",
];

#[test]
fn join_and_leave_under_concurrent_traffic_lose_nothing() {
    // Three founding shards, one standby that will join, one router.
    let shards: Vec<Proc> = (0..4).map(|_| spawn_shard()).collect();
    let founding = format!("{},{},{}", shards[0].addr, shards[1].addr, shards[2].addr);
    let router = spawn(&[
        "router",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "4",
        "--shards",
        &founding,
        "--token",
        TOKEN,
    ]);
    let router_addr = router.addr;

    // Steady state first: one pass over every model, so each digest is
    // compiled on its ring owner and known to the router's recipe cache
    // before the fleet is reshaped — the handoff can then warm every
    // moved key (a digest first seen *during* a reshape may legally
    // compile on both the old and the new owner, which would blur the
    // compile-economy bound below).
    let traces: Mutex<Vec<String>> = Mutex::new(Vec::new());
    for model in MODELS {
        let body = Json::object([
            ("model_name", Json::from(model)),
            ("nodes", Json::from(2usize)),
            ("backend", Json::from("analytic")),
        ]);
        let r = client::post(router_addr, "/v1/estimate", &body).unwrap();
        assert_eq!(r.status, 200, "{model} warmup: {}", r.body);
        traces.lock().unwrap().push(r.trace.expect("trace id"));
    }
    let (join_report, leave_report) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|worker| {
                let traces = &traces;
                scope.spawn(move || {
                    for i in 0..8usize {
                        let model = MODELS[(worker + 2 * i) % MODELS.len()];
                        let body = Json::object([
                            ("model_name", Json::from(model)),
                            ("nodes", Json::from(2usize)),
                            ("backend", Json::from("analytic")),
                        ]);
                        let r = client::post(router_addr, "/v1/estimate", &body)
                            .unwrap_or_else(|e| panic!("{model} mid-reshape: {e}"));
                        assert_eq!(
                            r.status, 200,
                            "{model} must survive the reshape: {}",
                            r.body
                        );
                        let trace = r.trace.unwrap_or_else(|| panic!("{model}: no trace id"));
                        traces.lock().unwrap().push(trace);
                        std::thread::sleep(Duration::from_millis(8));
                    }
                })
            })
            .collect();

        // Mid-traffic: shard 3 joins, then shard 0 leaves. Both are
        // operator mutations through the router's elastic endpoint.
        std::thread::sleep(Duration::from_millis(15));
        let add = Json::object([(
            "add",
            Json::Array(vec![Json::from(shards[3].addr.to_string())]),
        )]);
        let (status, join_report) = post_op(router_addr, "/v1/shards", &add);
        assert_eq!(status, 200, "join: {join_report}");
        assert_eq!(num(&join_report, &["epoch"]), 1.0, "{join_report}");

        std::thread::sleep(Duration::from_millis(10));
        let remove = Json::object([(
            "remove",
            Json::Array(vec![Json::from(shards[0].addr.to_string())]),
        )]);
        let (status, leave_report) = post_op(router_addr, "/v1/shards", &remove);
        assert_eq!(status, 200, "leave: {leave_report}");
        assert_eq!(num(&leave_report, &["epoch"]), 2.0, "{leave_report}");

        for worker in workers {
            worker.join().expect("no client-visible failure");
        }
        (join_report, leave_report)
    });

    // The fleet settled on shards 1..4 at epoch 2.
    let routing = client::get(router_addr, "/v1/shards").unwrap().body;
    assert_eq!(num(&routing, &["routing", "epoch"]), 2.0, "{routing}");
    assert_eq!(num(&routing, &["routing", "shards"]), 3.0, "{routing}");

    // Compile-economy bound: every model compiles once where it is
    // first routed, plus once per handoff prime (the router warms the
    // new owner of every moved digest). Nothing else may compile.
    let primes = num(&join_report, &["primed"]) + num(&leave_report, &["primed"]);
    let fleet_compiles: f64 = shards
        .iter()
        .map(|s| {
            let m = client::get(s.addr, "/v1/metrics").unwrap().body;
            num(&m, &["session_pool", "compiles"])
        })
        .sum();
    assert!(
        fleet_compiles <= MODELS.len() as f64 + primes,
        "fleet compiled {fleet_compiles} times for {} models + {primes} primes \
         (join {join_report}, leave {leave_report})",
        MODELS.len(),
    );

    // Journal audit: every client-visible trace landed in exactly one
    // shard's request journal — the leaver's included (its process is
    // still up; it just left the ring).
    let mut seen: HashMap<String, usize> = HashMap::new();
    for shard in &shards {
        let journal = client::get(shard.addr, "/v1/requests").unwrap().body;
        for entry in journal.get("requests").unwrap().as_array().unwrap() {
            let id = entry.get("trace_id").unwrap().as_str().unwrap();
            *seen.entry(id.to_string()).or_default() += 1;
        }
    }
    let traces = traces.into_inner().unwrap();
    assert_eq!(
        traces.len(),
        MODELS.len() + 32,
        "every request yields a trace id"
    );
    for trace in &traces {
        assert_eq!(
            seen.get(trace).copied().unwrap_or(0),
            1,
            "trace {trace} must appear in exactly one shard journal"
        );
    }

    // Drain the fleet through the router; the leaver is shut down
    // directly (the router no longer knows it).
    let (status, _) = post_op(router_addr, "/v1/shutdown", &Json::object::<&str>([]));
    assert_eq!(status, 200);
    let (status, _) = post_op(shards[0].addr, "/v1/shutdown", &Json::object::<&str>([]));
    assert_eq!(status, 200);
    let mut procs = shards;
    procs.push(router);
    for proc in &mut procs {
        let status = proc.child.wait().expect("process exits");
        assert!(status.success(), "graceful drain must exit 0: {status:?}");
    }
}
