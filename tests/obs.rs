//! End-to-end observability tests over real spawned `prophet`
//! binaries: trace IDs propagated router → shard and echoed on every
//! response, phase spans landing in the owning shard's request
//! journal, lifetime metrics surviving a `kill -9` via the store
//! checkpoint, and the fleet Prometheus exposition passing a format
//! lint.

use prophet::serve::client::{self, Connection};
use prophet::serve::json::Json;
use std::collections::HashMap;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spawned `prophet` binary with a parsed listen address. Killed on
/// drop so a failing test never leaks server processes.
struct Proc {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `prophet <args>` and parse the `listening on http://ADDR`
/// line both `serve` and `router` print first.
fn spawn(args: &[&str]) -> Proc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable listen line: {line:?}"));
    std::thread::spawn(move || std::io::copy(&mut stdout.into_inner(), &mut std::io::sink()));
    Proc { child, addr }
}

fn estimate_body(model: &str) -> Json {
    Json::object([
        ("model_name", Json::from(model)),
        ("nodes", Json::from(2usize)),
        ("backend", Json::from("analytic")),
    ])
}

fn field(v: &Json, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {v}"));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("non-number at {path:?} in {v}"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("prophet-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance (a): a client-chosen trace ID rides `X-Prophet-Trace`
/// through the router to the owning shard, comes back as a response
/// header on the routed answer, and lands in the shard's request
/// journal with compile/evaluate phase spans and elab counters.
#[test]
fn trace_ids_follow_a_request_through_the_fleet() {
    let shard = spawn(&["serve", "--addr", "127.0.0.1:0", "--workers", "2"]);
    let shard_list = shard.addr.to_string();
    let router = spawn(&[
        "router",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--shards",
        &shard_list,
    ]);

    let raw = Connection::connect(router.addr)
        .unwrap()
        .send(
            "POST",
            "/v1/estimate",
            Some(&estimate_body("sample").encode()),
            &[("x-prophet-trace", "t-123")],
        )
        .unwrap();
    assert_eq!(raw.status, 200, "{}", raw.body);
    assert_eq!(
        raw.trace.as_deref(),
        Some("t-123"),
        "router must echo the client's trace ID"
    );

    // The owning shard journaled the request under the same trace,
    // with the compile and evaluate phases timed and the elaboration
    // cache miss counted (first evaluation of this SP point).
    let journal = client::get(shard.addr, "/v1/requests").unwrap().body;
    let rows = journal.get("requests").unwrap().as_array().unwrap();
    let row = rows
        .iter()
        .find(|r| r.get("trace_id").unwrap().as_str() == Some("t-123"))
        .unwrap_or_else(|| panic!("trace t-123 missing from the shard journal: {journal}"));
    assert_eq!(row.get("endpoint").unwrap().as_str(), Some("estimate"));
    assert_eq!(field(row, &["status"]), 200.0);
    assert!(
        field(row, &["phases", "compile"]) > 0.0,
        "first estimate compiles: {row}"
    );
    assert!(field(row, &["phases", "evaluate"]) > 0.0, "{row}");
    assert!(
        field(row, &["elab", "misses"]) >= 1.0,
        "first SP point elaborates: {row}"
    );

    // Error envelopes carry the trace too: a bad body bounced by the
    // router names the trace both in the header and the JSON body.
    let err = Connection::connect(router.addr)
        .unwrap()
        .send(
            "POST",
            "/v1/estimate",
            Some("{}"),
            &[("x-prophet-trace", "t-err-9")],
        )
        .unwrap();
    assert_eq!(err.status, 400, "{}", err.body);
    assert_eq!(err.trace.as_deref(), Some("t-err-9"));
    let envelope = prophet::serve::json::parse(&err.body).unwrap();
    assert_eq!(
        envelope.get("trace_id").and_then(|t| t.as_str()),
        Some("t-err-9"),
        "{envelope}"
    );

    // Without a client-supplied header the server generates one.
    let fresh = client::post(router.addr, "/v1/estimate", &estimate_body("sample")).unwrap();
    assert_eq!(fresh.status, 200, "{}", fresh.body);
    let generated = fresh.trace.expect("generated trace header");
    assert!(generated.starts_with("t-"), "{generated}");
    assert_ne!(generated, "t-123");
}

/// Acceptance (b): a shard running with `--store` checkpoints its
/// counters; `kill -9` (no graceful drain) and a restart on the same
/// store report lifetime counters at least as large as before the
/// kill, while since-boot counters restart from zero.
#[test]
fn lifetime_metrics_survive_a_kill_dash_nine() {
    let dir = temp_dir("lifetime");
    let store = dir.to_str().unwrap().to_string();
    let serve_args = |addr: &str| {
        vec![
            "serve".to_string(),
            "--addr".to_string(),
            addr.to_string(),
            "--workers".to_string(),
            "2".to_string(),
            "--store".to_string(),
            store.clone(),
        ]
    };
    let mut shard = {
        let args = serve_args("127.0.0.1:0");
        spawn(&args.iter().map(String::as_str).collect::<Vec<_>>())
    };

    const ESTIMATES: u64 = 3;
    for _ in 0..ESTIMATES {
        let r = client::post(shard.addr, "/v1/estimate", &estimate_body("sample")).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
    }
    // Wait for a checkpoint written *after* the traffic: counters are
    // monotone within a boot, so any later checkpoint covers it. The
    // polling itself keeps changing the counters, so the checkpoint
    // thread keeps writing.
    let c0 = field(
        &client::get(shard.addr, "/v1/metrics").unwrap().body,
        &["lifetime", "checkpoints"],
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    let pre_kill = loop {
        let metrics = client::get(shard.addr, "/v1/metrics").unwrap().body;
        if field(&metrics, &["lifetime", "checkpoints"]) > c0 {
            break metrics;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint landed after the traffic: {metrics}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let pre_kill_lifetime = field(
        &pre_kill,
        &["lifetime", "counters", "endpoints.estimate.requests"],
    );
    assert!(pre_kill_lifetime >= ESTIMATES as f64, "{pre_kill}");

    // SIGKILL: no drain, no final checkpoint — only what the periodic
    // checkpointer already persisted survives.
    shard.child.kill().expect("kill -9 the shard");
    let addr = shard.addr;
    drop(shard);

    let revived = {
        let args = serve_args(&addr.to_string());
        spawn(&args.iter().map(String::as_str).collect::<Vec<_>>())
    };
    let metrics = client::get(revived.addr, "/v1/metrics").unwrap().body;
    assert!(
        field(
            &metrics,
            &["lifetime", "counters", "endpoints.estimate.requests"]
        ) >= ESTIMATES as f64,
        "lifetime counters must survive the kill: {metrics}"
    );
    assert_eq!(
        field(&metrics, &["endpoints", "estimate", "requests"]),
        0.0,
        "since-boot counters restart from zero: {metrics}"
    );
}

/// Parse-and-check one Prometheus text exposition: every series has a
/// preceding `# TYPE` for its family, every value parses as a float,
/// histogram buckets are cumulative and monotone, and the `+Inf`
/// bucket equals `_count`.
fn lint_prometheus(text: &str) {
    let mut types: HashMap<String, String> = HashMap::new();
    // (family + non-le labels) -> [(bound, cumulative count)]
    let mut buckets: HashMap<String, Vec<(f64, u64)>> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name").to_string();
            let kind = parts.next().expect("family kind").to_string();
            assert!(
                types.insert(name, kind).is_none(),
                "duplicate # TYPE: {line}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment: {line}");
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{line}"));
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("{line}"));
        let name = series.split('{').next().unwrap();
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                types.contains_key(base).then(|| base.to_string())
            })
            .unwrap_or_else(|| name.to_string());
        assert!(
            types.contains_key(&family),
            "series `{series}` has no # TYPE line"
        );
        let labels = series
            .split_once('{')
            .map(|(_, l)| l.trim_end_matches('}'))
            .unwrap_or("");
        if let Some(base) = name.strip_suffix("_bucket") {
            let mut le = None;
            let others: Vec<&str> = labels
                .split(',')
                .filter(|kv| match kv.strip_prefix("le=") {
                    Some(v) => {
                        le = Some(v.trim_matches('"').to_string());
                        false
                    }
                    None => true,
                })
                .collect();
            let le = le.unwrap_or_else(|| panic!("bucket without le: {line}"));
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap_or_else(|_| panic!("{line}"))
            };
            buckets
                .entry(format!("{base}{{{}}}", others.join(",")))
                .or_default()
                .push((bound, value as u64));
        } else if let Some(base) = name.strip_suffix("_count") {
            counts.insert(format!("{base}{{{labels}}}"), value as u64);
        }
    }
    assert!(!types.is_empty(), "no families in the exposition");
    for (key, series) in &buckets {
        let mut sorted = series.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for pair in sorted.windows(2) {
            assert!(
                pair[0].1 <= pair[1].1,
                "non-cumulative buckets for {key}: {series:?}"
            );
        }
        let inf = sorted.last().unwrap();
        assert!(inf.0.is_infinite(), "missing +Inf bucket for {key}");
        assert_eq!(
            Some(&inf.1),
            counts.get(key),
            "+Inf bucket != _count for {key}"
        );
    }
}

/// Acceptance (c): the router's `?format=prometheus` aggregates every
/// shard under `shard="addr"` labels, and both the fleet and shard
/// expositions pass the format lint.
#[test]
fn prometheus_expositions_pass_lint_and_cover_the_fleet() {
    let shard_a = spawn(&["serve", "--addr", "127.0.0.1:0", "--workers", "2"]);
    let shard_b = spawn(&["serve", "--addr", "127.0.0.1:0", "--workers", "2"]);
    let shard_list = format!("{},{}", shard_a.addr, shard_b.addr);
    let router = spawn(&[
        "router",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--shards",
        &shard_list,
    ]);
    // Spread traffic: different models hash to different shards often
    // enough, and every request counts on the router regardless.
    for model in ["sample", "jacobi", "kernel6"] {
        let r = client::post(router.addr, "/v1/estimate", &estimate_body(model)).unwrap();
        assert_eq!(r.status, 200, "{model}: {}", r.body);
    }

    let fleet = Connection::connect(router.addr)
        .unwrap()
        .send("GET", "/v1/metrics?format=prometheus", None, &[])
        .unwrap();
    assert_eq!(fleet.status, 200, "{}", fleet.body);
    lint_prometheus(&fleet.body);
    for addr in [shard_a.addr, shard_b.addr] {
        assert!(
            fleet.body.contains(&format!(
                "prophet_router_shard_healthy{{shard=\"{addr}\"}} 1"
            )),
            "{}",
            fleet.body
        );
        assert!(
            fleet.body.contains(&format!(
                "prophet_requests_total{{shard=\"{addr}\",endpoint=\"estimate\"}}"
            )),
            "{}",
            fleet.body
        );
    }
    assert!(
        fleet
            .body
            .contains("prophet_router_requests_total{endpoint=\"estimate\"} 3"),
        "{}",
        fleet.body
    );
    assert!(
        fleet
            .body
            .contains("# TYPE prophet_phase_duration_seconds histogram"),
        "{}",
        fleet.body
    );

    // The shard's own exposition passes the same lint.
    let shard = Connection::connect(shard_a.addr)
        .unwrap()
        .send("GET", "/v1/metrics?format=prometheus", None, &[])
        .unwrap();
    assert_eq!(shard.status, 200, "{}", shard.body);
    lint_prometheus(&shard.body);
    assert!(
        shard.body.contains("# TYPE prophet_requests_total counter"),
        "{}",
        shard.body
    );
}

/// The `prophet metrics` CLI renders both document shapes: a shard's
/// endpoint table and a router's per-shard breakdown.
#[test]
fn metrics_cli_renders_shard_and_router_documents() {
    let shard = spawn(&["serve", "--addr", "127.0.0.1:0", "--workers", "2"]);
    let shard_list = shard.addr.to_string();
    let router = spawn(&[
        "router",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--shards",
        &shard_list,
    ]);
    let r = client::post(router.addr, "/v1/estimate", &estimate_body("sample")).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    let run = |url: String| {
        let out = Command::new(env!("CARGO_BIN_EXE_prophet"))
            .args(["metrics", &url])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // Shard shape: endpoint table with quantile columns + counters.
    let out = run(format!("http://{}", shard.addr));
    assert!(out.contains("endpoint"), "{out}");
    assert!(out.contains("p99(ms)"), "{out}");
    assert!(out.contains("estimate"), "{out}");
    assert!(out.contains("pool: size 1"), "{out}");
    assert!(out.contains("journal:"), "{out}");
    // Router shape: routing summary, fleet totals, nested shard table.
    let out = run(router.addr.to_string());
    assert!(out.contains("router: 1 shard(s), 1 healthy"), "{out}");
    assert!(out.contains("fleet:"), "{out}");
    assert!(out.contains(&format!("shard {}", shard.addr)), "{out}");
    assert!(out.contains("estimate"), "{out}");
}
