//! Integration tests for the persistent compiled-artifact store: save a
//! compiled session, load it in a "new process" (a fresh `ArtifactStore`
//! over the same directory), and prove the load skipped check +
//! transform + flatten while predicting bit-identically — plus the
//! corruption/versioning contract: truncated, bit-flipped and
//! future-version entries each read back as a clean miss followed by a
//! clean re-write.

use prophet::check::McfConfig;
use prophet::core::store::FORMAT_VERSION;
use prophet::core::{
    flatten_invocations, mpi_grid, transform_invocations, ArtifactKey, ArtifactStore, Scenario,
    Session, StoreStats, SweepConfig,
};
use prophet::machine::SystemParams;
use prophet::serve::api::{demo_model, demo_models};
use std::path::PathBuf;

/// A unique, cleaned temp directory per test.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prophet-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn every_demo_model_roundtrips_bit_identically() {
    let dir = temp_dir("demos");
    let store = ArtifactStore::open(&dir).unwrap();
    for (name, _) in demo_models() {
        let model = demo_model(name).unwrap();
        let session = Session::new(model).unwrap();
        let key = store.save_session(&session).unwrap();
        let loaded = store
            .load_session(key)
            .unwrap_or_else(|| panic!("{name}: store hit"));

        assert_eq!(loaded.program(), session.program(), "{name}");
        assert_eq!(
            loaded.cpp().full_text(),
            session.cpp().full_text(),
            "{name}: generated C++ must survive the store"
        );
        assert_eq!(loaded.diagnostics().len(), session.diagnostics().len());

        // Both backends agree bit-for-bit with the fresh compile.
        for backend in [
            prophet::core::Backend::Simulation,
            prophet::core::Backend::Analytic,
        ] {
            let scenario = Scenario::new(SystemParams::flat_mpi(4, 1))
                .with_backend(backend)
                .without_trace();
            let fresh = session.evaluate(&scenario).unwrap().predicted_time;
            let warm = loaded.evaluate(&scenario).unwrap().predicted_time;
            assert_eq!(
                warm.to_bits(),
                fresh.to_bits(),
                "{name}/{backend}: loaded artifact must predict bit-identically"
            );
        }
    }
}

#[test]
fn store_hit_skips_check_transform_and_flatten() {
    let dir = temp_dir("skips");
    let model = demo_model("jacobi").unwrap();
    let mcf = McfConfig::default();
    let points = mpi_grid(&[1, 2, 4, 8], 1);

    // Warm the store offline: compile + pre-elaborate the grid.
    {
        let store = ArtifactStore::open(&dir).unwrap();
        let session = Session::compile_stored(model.clone(), mcf.clone(), Some(&store)).unwrap();
        let report = session.sweep_with(&points, &SweepConfig::default(), |_, _| {});
        assert_eq!(report.failures(), 0);
        store.save_session(&session).unwrap();
    }

    // "Next process": everything — check, to_cpp, to_program, and the
    // grid's elaborations — must come from disk. The counters are
    // process-wide/thread-local, so sweep single-threaded.
    let store = ArtifactStore::open(&dir).unwrap();
    let transforms_before = transform_invocations();
    let flattens_before = flatten_invocations();
    let session = Session::compile_stored(model, mcf, Some(&store)).unwrap();
    assert_eq!(
        transform_invocations(),
        transforms_before,
        "store hit must not transform"
    );
    let config = SweepConfig {
        threads: 1,
        ..Default::default()
    };
    let report = session.sweep_with(&points, &config, |_, _| {});
    assert_eq!(report.failures(), 0);
    assert_eq!(
        flatten_invocations(),
        flattens_before,
        "pre-elaborated SP points must not re-flatten"
    );
    let stats = session.elab_stats();
    assert_eq!(
        (stats.hits, stats.misses),
        (points.len() as u64, 0),
        "{stats:?}"
    );
    assert_eq!(store.stats().disk_hits, 1);
}

/// The corruption/versioning satellite: each damage mode reads back as
/// a clean miss (with the entry evicted), and the slot re-fills with a
/// valid artifact on the next write.
#[test]
fn corrupt_and_stale_entries_miss_then_rewrite() {
    type Damage = fn(&mut Vec<u8>);
    let truncate: Damage = |bytes| bytes.truncate(bytes.len() / 3);
    let bit_flip: Damage = |bytes| {
        let mid = 16 + (bytes.len() - 24) / 2;
        bytes[mid] ^= 0x01;
    };
    let version_bump: Damage =
        |bytes| bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());

    for (tag, damage) in [
        ("truncate", truncate),
        ("bitflip", bit_flip),
        ("version", version_bump),
    ] {
        let dir = temp_dir(&format!("damage-{tag}"));
        let store = ArtifactStore::open(&dir).unwrap();
        let session = Session::new(demo_model("sample").unwrap()).unwrap();
        let key = store.save_session(&session).unwrap();
        let path = store.entry_path(key);

        let mut bytes = std::fs::read(&path).unwrap();
        damage(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.load_session(key).is_none(), "{tag}: must be a miss");
        assert!(!path.exists(), "{tag}: damaged entry must be evicted");
        assert_eq!(
            store.stats(),
            StoreStats {
                disk_misses: 1,
                evictions: 1,
                writes: 1,
                ..Default::default()
            },
            "{tag}"
        );

        // The miss is recoverable: compile_stored recompiles, re-writes
        // the entry, and the store serves it again.
        let again =
            Session::compile_stored(session.model().clone(), McfConfig::default(), Some(&store))
                .unwrap();
        assert_eq!(again.program(), session.program(), "{tag}");
        assert!(path.exists(), "{tag}: slot must re-fill");
        assert!(store.load_session(key).is_some(), "{tag}");
    }
}

#[test]
fn distinct_mcf_configurations_get_distinct_artifacts() {
    let dir = temp_dir("mcf");
    let store = ArtifactStore::open(&dir).unwrap();
    let model = demo_model("sample").unwrap();

    let default_key = store
        .save_session(&Session::new(model.clone()).unwrap())
        .unwrap();
    let mut relaxed = McfConfig::default();
    relaxed.disable("PP002");
    let relaxed_key = store
        .save_session(&Session::compile(model.clone(), relaxed.clone()).unwrap())
        .unwrap();
    assert_ne!(default_key, relaxed_key, "MCF is part of the content key");
    assert_eq!(store.keys().len(), 2);

    // Loads agree with their MCF spelling.
    let loaded = store.load_session(relaxed_key).unwrap();
    assert_eq!(loaded.mcf().to_xml(), relaxed.to_xml());
    assert_eq!(ArtifactKey::of(loaded.model(), loaded.mcf()), relaxed_key);
}

/// GC satellite 1: eviction is strictly least-recently-used. Five
/// artifacts with hand-written access stamps; a budget that fits the
/// newest two must delete exactly the oldest three, stamps included.
#[test]
fn gc_evicts_strictly_least_recently_used() {
    let dir = temp_dir("gc-lru");
    let store = ArtifactStore::open(&dir).unwrap();
    let names = ["sample", "kernel6", "jacobi", "pipeline", "master_worker"];
    let mut keys = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let session = Session::new(demo_model(name).unwrap()).unwrap();
        let key = store.save_session(&session).unwrap();
        // Deterministic recency: index order, oldest first. Stamps are
        // decimal epoch millis; any strictly increasing sequence works.
        std::fs::write(store.access_stamp_path(key), format!("{}", 1_000 + i)).unwrap();
        keys.push(key);
    }
    let size_of = |key| std::fs::metadata(store.entry_path(key)).unwrap().len();
    let newest_two: u64 = keys[3..].iter().map(|&k| size_of(k)).sum();

    let report = store.gc(newest_two);
    assert_eq!(report.entries_scanned, 5);
    assert_eq!(report.corrupt_evicted, 0);
    assert_eq!(report.lru_evicted, 3, "{report:?}");
    assert_eq!(report.entries_retained, 2);
    assert_eq!(report.bytes_retained, newest_two);
    for &key in &keys[..3] {
        assert!(!store.entry_path(key).exists(), "old entry must go");
        assert!(
            !store.access_stamp_path(key).exists(),
            "stamp must go with its entry"
        );
    }
    for &key in &keys[3..] {
        assert!(store.load_session(key).is_some(), "new entry must stay");
    }
}

/// GC satellite 2: a GC pass racing serve-style write-backs and loads
/// never deletes fresh work or corrupts an entry — every key a writer
/// produced is either loadable afterwards or cleanly re-writable.
#[test]
fn gc_survives_concurrent_serve_write_backs() {
    let dir = temp_dir("gc-race");
    let store = ArtifactStore::open(&dir).unwrap();
    let names = ["sample", "kernel6", "jacobi", "pipeline"];

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Writers: the serve layer's write-back loop — compile against
        // the store (disk hit or recompile+save) and immediately load.
        for name in names {
            scope.spawn(|| {
                let store = ArtifactStore::open(&dir).unwrap();
                let model = demo_model(name).unwrap();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let session =
                        Session::compile_stored(model.clone(), McfConfig::default(), Some(&store))
                            .unwrap();
                    let key = ArtifactKey::of(session.model(), session.mcf());
                    // A concurrent gc may evict between the write and
                    // this load; a miss is legal, an error is not.
                    let _ = store.load_session(key);
                }
            });
        }
        // GC: zero budget, so every pass tries to evict everything the
        // writers produce — maximum contention on the scan/delete race.
        for _ in 0..50 {
            let report = store.gc(0);
            assert_eq!(report.corrupt_evicted, 0, "GC saw a torn write");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });

    // The store remains fully usable: every model recompiles against
    // it and then round-trips.
    for name in names {
        let session = Session::compile_stored(
            demo_model(name).unwrap(),
            McfConfig::default(),
            Some(&store),
        )
        .unwrap();
        let key = ArtifactKey::of(session.model(), session.mcf());
        assert!(store.load_session(key).is_some(), "{name}");
    }
}

/// GC satellite 3: corrupt entries are reclaimed even when the byte
/// budget would allow keeping them — corruption is never "retained".
#[test]
fn gc_reclaims_corrupt_entries_whatever_the_budget() {
    let dir = temp_dir("gc-corrupt");
    let store = ArtifactStore::open(&dir).unwrap();
    let good = store
        .save_session(&Session::new(demo_model("sample").unwrap()).unwrap())
        .unwrap();
    let bad = store
        .save_session(&Session::new(demo_model("kernel6").unwrap()).unwrap())
        .unwrap();
    let bad_path = store.entry_path(bad);
    let mut bytes = std::fs::read(&bad_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&bad_path, &bytes).unwrap();

    let report = store.gc(u64::MAX);
    assert_eq!(report.corrupt_evicted, 1, "{report:?}");
    assert_eq!(report.lru_evicted, 0, "budget was unlimited");
    assert!(!bad_path.exists(), "corrupt entry must be reclaimed");
    assert!(report.bytes_reclaimed >= bytes.len() as u64 - 1);
    assert!(store.load_session(good).is_some(), "valid entry untouched");
}

#[test]
fn builder_and_parsed_spellings_share_one_artifact() {
    // The store keys on canonical content, so a builder-built model and
    // its XML roundtrip hit the same artifact file — the disk analogue
    // of the session pool's dedup guarantee.
    let dir = temp_dir("canonical");
    let store = ArtifactStore::open(&dir).unwrap();
    let built = demo_model("pipeline").unwrap();
    let reparsed =
        prophet::uml::xmi::model_from_xml(&prophet::uml::xmi::model_to_xml(&built)).unwrap();
    store
        .save_session(&Session::new(built.clone()).unwrap())
        .unwrap();
    let key = ArtifactKey::of(&reparsed, &McfConfig::default());
    assert!(
        store.load_session(key).is_some(),
        "parsed spelling must hit the builder spelling's artifact"
    );
    assert_eq!(store.keys().len(), 1);
}
