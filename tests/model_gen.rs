//! Random-model differential fuzzing: generated well-formed UML
//! workload models through the whole check → flatten → evaluate
//! pipeline, on both backends, with and without the elaboration cache.
//!
//! The generator composes models from the same vocabulary as the
//! bundled workloads — compute actions (pid-parameterized costs, state
//! mutated by code fragments), branches, loops, nested
//! `<<activity+>>` composites, collectives, matched-tag send/recv
//! exchanges, and `<<parallel+>>` thread teams (optionally with
//! `<<critical+>>` sections) — while staying inside the regime where
//! the PR 2 conformance contract applies: deterministic costs, matched
//! point-to-point communication, one rank per node, and thread teams
//! that fit the node's CPUs.
//!
//! Every generated model must then satisfy, at every SP point:
//!
//! * the model checker accepts it and `Session::compile` succeeds,
//! * the simulation and analytic backends agree within the conformance
//!   tolerance (1e-9 relative),
//! * evaluations served through the session's `ElaborationCache` are
//!   **bit-identical** to cache-disabled evaluations, on both backends —
//!   the cache can never serve a stale or wrong op list.
//!
//! Seeding is deterministic (see `proptest-shim`); CI pins the case
//! budget with `PROPTEST_CASES`.

use prophet::core::{Backend, Scenario, Session};
use prophet::machine::SystemParams;
use prophet::uml::{DiagramId, ElementId, Model, ModelBuilder, TagValue, VarType};
use proptest::prelude::*;

/// PR 2 conformance tolerance for deterministic message-passing models.
const REL_TOL: f64 = 1e-9;

// ---------------------------------------------------------------------
// Model specs: plain data the strategies generate, then built into a
// real `Model` through `ModelBuilder`.
// ---------------------------------------------------------------------

/// One generated workload building block.
#[derive(Debug, Clone)]
enum Seg {
    /// `<<action+>>` with a deterministic pid-parameterized cost.
    Compute { base: u32, pid_coef: u32 },
    /// `<<action+>>` whose code fragment mutates a global the *next*
    /// stateful segment's cost reads — exercises eager state evaluation.
    Stateful { step: u32 },
    /// Decision/merge over rank parity with different per-arm costs.
    Branch { even: u32, odd: u32 },
    /// `<<loop+>>` composite repeating a body of simple segments.
    Loop { iters: u32, body: Vec<Seg> },
    /// Plain `<<activity+>>` composite (nested activity diagram).
    Nested { body: Vec<Seg> },
    /// A synchronizing collective.
    Collective { kind: u8, bytes: u32 },
    /// Even ranks send to their odd right neighbour; matched tags.
    PairExchange { bytes: u32 },
    /// Every rank sends to `(pid+1) % P`, receives from `(pid-1+P) % P`
    /// (guarded behind `P > 1`); matched tags, deadlock-free under the
    /// eager-send semantics.
    RingShift { bytes: u32 },
    /// `<<parallel+>>` thread team with tid-skewed arms, optionally
    /// containing a `<<critical+>>` section. Team sizes stay ≤ the
    /// generated machines' `cpus_per_node` so the analytic backend is
    /// in its exact (dedicated-CPU) regime.
    Team {
        threads: u32,
        work: u32,
        critical: bool,
    },
}

fn leaf_seg() -> BoxedStrategy<Seg> {
    prop_oneof![
        (1u32..50, 0u32..10).prop_map(|(base, pid_coef)| Seg::Compute { base, pid_coef }),
        (1u32..5).prop_map(|step| Seg::Stateful { step }),
        (1u32..40, 1u32..40).prop_map(|(even, odd)| Seg::Branch { even, odd }),
        (0u8..6, 0u32..4096).prop_map(|(kind, bytes)| Seg::Collective { kind, bytes }),
        (1u32..65536).prop_map(|bytes| Seg::PairExchange { bytes }),
        (1u32..65536).prop_map(|bytes| Seg::RingShift { bytes }),
        (1u32..=4, 1u32..30, any::<bool>()).prop_map(|(threads, work, critical)| Seg::Team {
            threads,
            work,
            critical,
        }),
    ]
    .boxed()
}

fn seg() -> BoxedStrategy<Seg> {
    prop_oneof![
        leaf_seg(),
        (1u32..=4, prop::collection::vec(leaf_seg(), 1..3))
            .prop_map(|(iters, body)| Seg::Loop { iters, body }),
        prop::collection::vec(leaf_seg(), 1..4).prop_map(|body| Seg::Nested { body }),
    ]
    .boxed()
}

fn workload() -> BoxedStrategy<Vec<Seg>> {
    prop::collection::vec(seg(), 1..6).boxed()
}

// ---------------------------------------------------------------------
// Spec → Model.
// ---------------------------------------------------------------------

struct Emit {
    b: ModelBuilder,
    /// Unique-name counter.
    n: usize,
    /// Next user message tag (matched pairs share one tag).
    tag: i64,
}

impl Emit {
    fn name(&mut self, what: &str) -> String {
        self.n += 1;
        format!("{what}{}", self.n)
    }

    /// Emit `seg` into `d`; returns its (entry, exit) elements.
    fn seg(&mut self, d: DiagramId, seg: &Seg) -> (ElementId, ElementId) {
        match seg {
            Seg::Compute { base, pid_coef } => {
                let name = self.name("W");
                let cost = format!("0.0001 * ({base} + {pid_coef} * pid)");
                let a = self.b.action(d, &name, &cost);
                (a, a)
            }
            Seg::Stateful { step } => {
                let name = self.name("S");
                // GV accumulates across stateful segments; the cost of
                // each reflects the state *after* its own fragment ran.
                let a = self.b.action(d, &name, "0.0001 * (1 + GV)");
                self.b.attach_code(a, &format!("GV = GV + {step};"));
                (a, a)
            }
            Seg::Branch { even, odd } => {
                let (dn, an, on, mn) = (
                    self.name("dec"),
                    self.name("Be"),
                    self.name("Bo"),
                    self.name("m"),
                );
                let dec = self.b.decision(d, &dn);
                let a = self.b.action(d, &an, &format!("0.0001 * {even}"));
                let o = self.b.action(d, &on, &format!("0.0001 * {odd}"));
                let m = self.b.merge(d, &mn);
                self.b.guarded_flow(d, dec, a, "pid % 2 == 0");
                self.b.guarded_flow(d, dec, o, "else");
                self.b.flow(d, a, m);
                self.b.flow(d, o, m);
                (dec, m)
            }
            Seg::Loop { iters, body } => {
                let sn = self.name("loopbody");
                let sub = self.b.diagram(&sn);
                self.chain(sub, body);
                let name = self.name("L");
                let lp = self.b.loop_activity(d, &name, sub, &iters.to_string());
                (lp, lp)
            }
            Seg::Nested { body } => {
                let sn = self.name("nested");
                let sub = self.b.diagram(&sn);
                self.chain(sub, body);
                let name = self.name("N");
                let call = self.b.call_activity(d, &name, sub);
                (call, call)
            }
            Seg::Collective { kind, bytes } => {
                let name = self.name("C");
                let size = ("size", TagValue::Expr(bytes.to_string()));
                let root = ("root", TagValue::Expr("0".into()));
                let el = match kind % 6 {
                    0 => self.b.mpi(d, &name, "barrier", &[]),
                    1 => self.b.mpi(d, &name, "broadcast", &[root, size]),
                    2 => self.b.mpi(d, &name, "reduce", &[root, size]),
                    3 => self.b.mpi(d, &name, "allreduce", &[size]),
                    4 => self.b.mpi(d, &name, "scatter", &[root, size]),
                    _ => self.b.mpi(d, &name, "gather", &[root, size]),
                };
                (el, el)
            }
            Seg::PairExchange { bytes } => {
                let tag = self.tag;
                self.tag += 1;
                let (d1n, txn, m1n, d2n, rxn, m2n) = (
                    self.name("isSender"),
                    self.name("Tx"),
                    self.name("m"),
                    self.name("isReceiver"),
                    self.name("Rx"),
                    self.name("m"),
                );
                let d1 = self.b.decision(d, &d1n);
                let tx = self.b.mpi(
                    d,
                    &txn,
                    "send",
                    &[
                        ("dest", TagValue::Expr("pid + 1".into())),
                        ("size", TagValue::Expr(bytes.to_string())),
                        ("tag", TagValue::Int(tag)),
                    ],
                );
                let m1 = self.b.merge(d, &m1n);
                let d2 = self.b.decision(d, &d2n);
                let rx = self.b.mpi(
                    d,
                    &rxn,
                    "recv",
                    &[
                        ("src", TagValue::Expr("pid - 1".into())),
                        ("tag", TagValue::Int(tag)),
                    ],
                );
                let m2 = self.b.merge(d, &m2n);
                // Even ranks with an odd right neighbour send; exactly
                // those neighbours receive — every send is matched.
                self.b
                    .guarded_flow(d, d1, tx, "pid % 2 == 0 && pid + 1 < P");
                self.b.guarded_flow(d, d1, m1, "else");
                self.b.flow(d, tx, m1);
                self.b.flow(d, m1, d2);
                self.b.guarded_flow(d, d2, rx, "pid % 2 == 1");
                self.b.guarded_flow(d, d2, m2, "else");
                self.b.flow(d, rx, m2);
                (d1, m2)
            }
            Seg::RingShift { bytes } => {
                let tag = self.tag;
                self.tag += 1;
                let (dn, txn, rxn, mn) = (
                    self.name("ring"),
                    self.name("RingTx"),
                    self.name("RingRx"),
                    self.name("m"),
                );
                let dec = self.b.decision(d, &dn);
                let tx = self.b.mpi(
                    d,
                    &txn,
                    "send",
                    &[
                        ("dest", TagValue::Expr("(pid + 1) % P".into())),
                        ("size", TagValue::Expr(bytes.to_string())),
                        ("tag", TagValue::Int(tag)),
                    ],
                );
                let rx = self.b.mpi(
                    d,
                    &rxn,
                    "recv",
                    &[
                        ("src", TagValue::Expr("(pid - 1 + P) % P".into())),
                        ("tag", TagValue::Int(tag)),
                    ],
                );
                let m = self.b.merge(d, &mn);
                self.b.guarded_flow(d, dec, tx, "P > 1");
                self.b.guarded_flow(d, dec, m, "else");
                self.b.flow(d, tx, rx);
                self.b.flow(d, rx, m);
                (dec, m)
            }
            Seg::Team {
                threads,
                work,
                critical,
            } => {
                let bn = self.name("teambody");
                let body = self.b.diagram(&bn);
                let twn = self.name("TW");
                let w = self
                    .b
                    .action(body, &twn, &format!("0.0001 * ({work} + tid)"));
                if *critical {
                    let (ln, lwn, cn) = (self.name("lockbody"), self.name("LW"), self.name("Crit"));
                    let locked = self.b.diagram(&ln);
                    self.b.action(locked, &lwn, &format!("0.0001 * {work}"));
                    let crit = self.b.critical_activity(body, &cn, locked, "fuzzlock");
                    self.b.flow(body, w, crit);
                }
                let name = self.name("T");
                let region = self
                    .b
                    .parallel_activity(d, &name, body, &threads.to_string());
                (region, region)
            }
        }
    }

    /// Emit `segs` as a chain inside `d` (composite bodies have a unique
    /// entry node instead of initial/final markers).
    fn chain(&mut self, d: DiagramId, segs: &[Seg]) {
        let mut prev: Option<ElementId> = None;
        for seg in segs {
            let (entry, exit) = self.seg(d, seg);
            if let Some(p) = prev {
                self.b.flow(d, p, entry);
            }
            prev = Some(exit);
        }
    }
}

/// Build a checkable model from a generated workload spec.
fn build_model(segs: &[Seg]) -> Model {
    let mut e = Emit {
        b: ModelBuilder::new("fuzz"),
        n: 0,
        tag: 0,
    };
    e.b.global("GV", VarType::Int, Some("0"));
    let main = e.b.main_diagram();
    let start = e.b.initial(main, "start");
    let end_marker = e.b.final_node(main, "end");
    let mut prev = start;
    for seg in segs {
        let (entry, exit) = e.seg(main, seg);
        e.b.flow(main, prev, entry);
        prev = exit;
    }
    e.b.flow(main, prev, end_marker);
    e.b.build()
}

/// The SP grid: one rank per node, 4 CPUs each (teams of ≤ 4 stay in
/// the analytic backend's exact dedicated-CPU regime).
fn grid() -> [SystemParams; 4] {
    [1usize, 2, 3, 5].map(|p| SystemParams {
        nodes: p,
        cpus_per_node: 4,
        processes: p,
        threads_per_process: 1,
    })
}

fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
    (a - b).abs() / scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential property: for every generated model and SP
    /// point, simulation and analytic agree within the conformance
    /// tolerance, and cached evaluation is bit-identical to uncached on
    /// both backends.
    #[test]
    fn generated_models_survive_the_whole_pipeline(segs in workload()) {
        let model = build_model(&segs);
        let session = match Session::new(model) {
            Ok(s) => s,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "generated model failed to compile: {e}\nspec: {segs:?}"
                )))
            }
        };
        for sp in grid() {
            let eval = |backend: Backend, no_cache: bool| {
                let mut scenario = Scenario::new(sp).without_trace().with_backend(backend);
                scenario.no_elab_cache = no_cache;
                session.evaluate(&scenario).map(|e| e.predicted_time)
            };
            let sim = eval(Backend::Simulation, false)
                .map_err(|e| TestCaseError::fail(format!("sim {sp:?}: {e}\nspec: {segs:?}")))?;
            let ana = eval(Backend::Analytic, false)
                .map_err(|e| TestCaseError::fail(format!("ana {sp:?}: {e}\nspec: {segs:?}")))?;
            prop_assert!(
                rel_diff(sim, ana) <= REL_TOL,
                "backends diverge at {sp:?}: sim {sim:.12e} vs ana {ana:.12e} (rel {:.3e})\nspec: {segs:?}",
                rel_diff(sim, ana)
            );
            // Cache transparency, both backends, bit-exact.
            let sim_raw = eval(Backend::Simulation, true).unwrap();
            let ana_raw = eval(Backend::Analytic, true).unwrap();
            prop_assert_eq!(
                sim.to_bits(), sim_raw.to_bits(),
                "cached simulation diverged at {:?}\nspec: {:?}", sp, segs
            );
            prop_assert_eq!(
                ana.to_bits(), ana_raw.to_bits(),
                "cached analytic diverged at {:?}\nspec: {:?}", sp, segs
            );
        }
        // After 4 SP points × 2 backends cached: 4 misses, 4 hits.
        let stats = session.elab_stats();
        prop_assert_eq!(stats.misses, 4, "one elaboration per SP point: {:?}", stats);
        prop_assert_eq!(stats.hits, 4, "second backend must reuse: {:?}", stats);
    }

    /// Cached sweeps of generated models are bit-identical to uncached
    /// sweeps across repeated points (the repeat is what the cache
    /// serves) — the sweep-level analogue of the scenario property.
    #[test]
    fn generated_model_sweeps_are_cache_transparent(segs in workload()) {
        use prophet::core::{EstimatorOptions, SweepConfig, SweepPoint};
        let session = Session::new(build_model(&segs)).map_err(|e| {
            TestCaseError::fail(format!("compile: {e}\nspec: {segs:?}"))
        })?;
        // Repeats on purpose: points 0 and 2, 1 and 3 share SP keys.
        let g = grid();
        let points: Vec<SweepPoint> = [g[1], g[3], g[1], g[3], g[0]]
            .into_iter()
            .map(|sp| SweepPoint { sp })
            .collect();
        let sweep = |no_elab_cache: bool, seed: u64| {
            let config = SweepConfig {
                no_elab_cache,
                options: EstimatorOptions { seed, ..Default::default() },
                ..Default::default()
            };
            session.sweep_with(&points, &config, |_, _| {}).times()
        };
        for seed in [0x5EED_u64, 7] {
            let cached = sweep(false, seed);
            let uncached = sweep(true, seed);
            for (i, (c, u)) in cached.iter().zip(uncached.iter()).enumerate() {
                prop_assert_eq!(
                    c.map(f64::to_bits), u.map(f64::to_bits),
                    "point {} diverged under caching (seed {})\nspec: {:?}", i, seed, segs
                );
            }
        }
        // 3 distinct SP keys among 5 points × 2 seeds (cached runs only).
        let stats = session.elab_stats();
        prop_assert_eq!(stats.misses, 3, "{:?}", stats);
        prop_assert_eq!(stats.hits, 10 - 3, "{:?}", stats);
    }
}
