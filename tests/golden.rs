//! Golden snapshot tests: checked-in expected `Evaluation` values for
//! every bundled workload model at a fixed seed and SP point.
//!
//! These pins exist so a future refactor of the transform pipeline, the
//! flattener, the DES kernel, or the analytic backend cannot *silently*
//! shift predictions: any change to a predicted time, the event count,
//! or the trace shape of these models must update the constants below —
//! a deliberate, reviewable act.
//!
//! All bundled models are deterministic, so the expected times are pinned
//! to 1e-12 relative (f64 arithmetic is reproducible across platforms);
//! event and trace counts are pinned exactly. Both backends are pinned:
//! the analytic prediction must equal the simulated one within the
//! conformance contract of `tests/conformance.rs` — the backend-specific
//! expectations here are intentionally the same constant.

use prophet::core::{Backend, Scenario, Session};
use prophet::estimator::{flatten_for_process, op_digest};
use prophet::machine::{CommParams, MachineModel, SystemParams};
use prophet::uml::Model;
use prophet::workloads::models::{
    branching_pipeline_model, halo_ring_model, jacobi_model, kernel6_model, lapw0_model,
    mapreduce_model, master_worker_model, pipeline_model, sample_model, task_farm_model,
};

struct Golden {
    /// Expected predicted time (both backends, seed 0x5EED).
    time: f64,
    /// Expected DES event count (simulation backend).
    events: u64,
    /// Expected trace length (simulation backend, tracing on).
    trace_len: usize,
    /// Expected per-rank flattened op-list shape: `(len, digest)` per
    /// rank, where the digest is `prophet::estimator::op_digest` (a
    /// stable FNV-1a over every field of every op). An elaboration or
    /// cache refactor that reorders, drops, or renumbers primitive ops
    /// shifts these even when the predicted time happens to survive.
    rank_ops: &'static [(usize, u64)],
}

fn check(name: &str, model: Model, sp: SystemParams, golden: Golden) {
    let session = Session::new(model).expect("model compiles");
    // 0x5EED is also the default seed; pin it explicitly so a future
    // default change cannot silently shift what these goldens mean.
    let sim = session
        .evaluate(&Scenario::new(sp).with_seed(0x5EED))
        .unwrap();
    assert!(
        (sim.predicted_time - golden.time).abs() <= golden.time.abs() * 1e-12,
        "{name} simulation predicted_time {:?} != golden {:?}",
        sim.predicted_time,
        golden.time
    );
    assert_eq!(
        sim.report.events_processed, golden.events,
        "{name} event count shifted"
    );
    assert_eq!(sim.trace.len(), golden.trace_len, "{name} trace shifted");

    let ana = session
        .evaluate(&Scenario::new(sp).with_backend(Backend::Analytic))
        .unwrap();
    assert!(
        (ana.predicted_time - golden.time).abs() <= golden.time.abs() * 1e-9,
        "{name} analytic predicted_time {:?} != golden {:?}",
        ana.predicted_time,
        golden.time
    );
    assert_eq!(
        ana.report.events_processed, 0,
        "{name} analytic ran the DES"
    );

    // Elaboration-shape snapshot: per-rank op-list length and digest.
    let machine = MachineModel::new(sp, CommParams::default()).unwrap();
    assert_eq!(golden.rank_ops.len(), sp.processes, "{name} golden shape");
    for (pid, &(len, digest)) in golden.rank_ops.iter().enumerate() {
        let ops =
            flatten_for_process(session.program(), &machine, pid, Default::default()).unwrap();
        assert_eq!(ops.len(), len, "{name} rank {pid} op count shifted");
        assert_eq!(
            op_digest(&ops),
            digest,
            "{name} rank {pid} op digest shifted (len {})",
            ops.len()
        );
    }
}

#[test]
fn golden_kernel6() {
    check(
        "kernel6",
        kernel6_model(500, 10, 2e-9),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.0049900000000000005,
            events: 8,
            trace_len: 8,
            rank_ops: &[
                (3, 0xc9278d065b85ef43),
                (3, 0xc9278d065b85ef43),
                (3, 0xc9278d065b85ef43),
                (3, 0xc9278d065b85ef43),
            ],
        },
    );
}

#[test]
fn golden_sample() {
    check(
        "sample",
        sample_model(),
        SystemParams::flat_mpi(2, 1),
        Golden {
            time: 0.8999999999999999,
            events: 10,
            trace_len: 20,
            rank_ops: &[(14, 0x3cd85e61ed3b5939), (14, 0x17e9399c2d439459)],
        },
    );
}

#[test]
fn golden_jacobi() {
    check(
        "jacobi",
        jacobi_model(200_000, 5, 1e-8),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.004307,
            events: 162,
            trace_len: 284,
            rank_ops: &[
                (98, 0xed0300307723153e),
                (108, 0xd07c6f2a62d180b4),
                (108, 0xaa718b09c06a9228),
                (78, 0xc47e40919135a106),
            ],
        },
    );
}

#[test]
fn golden_pipeline() {
    check(
        "pipeline",
        pipeline_model(20, 0.01, 1024),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.23019972000000008,
            events: 228,
            trace_len: 528,
            rank_ops: &[
                (122, 0xcdcd6ac488ddf858),
                (182, 0x2e3fd208b6b91394),
                (182, 0xbf1d49ae2ee5779c),
                (122, 0x2668d286fd0aaea8),
            ],
        },
    );
}

#[test]
fn golden_master_worker() {
    check(
        "master_worker",
        master_worker_model(64, 0.005, 128),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.10452304,
            events: 38,
            trace_len: 32,
            rank_ops: &[
                (30, 0x47e4d5c9bd578c2f),
                (18, 0xd0aa767ee54da36e),
                (18, 0xaacccd7034f6ae37),
                (18, 0x63becefdccc0e8a1),
            ],
        },
    );
}

#[test]
fn golden_lapw0() {
    check(
        "lapw0",
        lapw0_model(64, 16, 1e-5),
        SystemParams {
            nodes: 2,
            cpus_per_node: 2,
            processes: 2,
            threads_per_process: 2,
        },
        Golden {
            time: 0.005491280000000002,
            events: 136,
            trace_len: 140,
            rank_ops: &[(74, 0x04233dfe254bbaec), (74, 0xe4d240013aa91bfc)],
        },
    );
}

#[test]
fn golden_task_farm() {
    check(
        "task_farm",
        task_farm_model(8, 0.002, 512),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.31823704,
            events: 238,
            trace_len: 272,
            rank_ops: &[
                (203, 0x00b0607587cba25d),
                (135, 0x62ca55719b0d00fd),
                (135, 0x9773f71aa5d25981),
                (135, 0x5ec110beb1f33b61),
            ],
        },
    );
}

#[test]
fn golden_branching_pipeline() {
    check(
        "branching_pipeline",
        branching_pipeline_model(24, 0.004, 2048),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.10223444000000008,
            events: 293,
            trace_len: 632,
            rank_ops: &[
                (146, 0xba0a83000a57ee5c),
                (218, 0x2f9593a03a1267c4),
                (218, 0x4ba8c3e1750a47c4),
                (146, 0x0da7586850dcbb8c),
            ],
        },
    );
}

#[test]
fn golden_halo_ring() {
    check(
        "halo_ring",
        halo_ring_model(16, 0.003, 4096),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.05554048,
            events: 420,
            trace_len: 648,
            rank_ops: &[
                (290, 0x4487004272b6ecd7),
                (226, 0x61f5198d7fe69fdc),
                (226, 0x1483f455fe895c7c),
                (226, 0xfeafa6596576de6c),
            ],
        },
    );
}

#[test]
fn golden_mapreduce() {
    check(
        "mapreduce",
        mapreduce_model(4096, 1e-6, 64),
        SystemParams::flat_mpi(4, 1),
        Golden {
            time: 0.00569136,
            events: 38,
            trace_len: 44,
            rank_ops: &[
                (27, 0xa1d7fc3a720a144d),
                (19, 0x6f4e919ce2c86bf4),
                (19, 0x4a725385f19cb023),
                (19, 0x59ac9b5c7e3d4539),
            ],
        },
    );
}
