//! Integration tests for the scale-out router: real `prophet serve`
//! shard binaries plus the real `prophet router` binary, all over
//! loopback sockets.
//!
//! The headline scenario is the PR acceptance criterion in one story:
//! digest-pinned traffic across a two-shard fleet (each model compiles
//! exactly once fleet-wide), a shard killed mid-traffic with **zero**
//! client-visible failures, aggregated metrics reflecting both shards,
//! and the killed shard's replacement warm-starting from the shared
//! artifact store — first estimate served with a disk hit and zero
//! compiles.

use prophet::check::McfConfig;
use prophet::core::ArtifactKey;
use prophet::router::{route_key, Ring};
use prophet::serve::client::{self, Connection};
use prophet::serve::json::Json;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A spawned `prophet` binary with a parsed listen address. Killed on
/// drop so a failing test never leaks server processes.
struct Proc {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Proc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawn `prophet <args>` and parse the `listening on http://ADDR`
/// line both `serve` and `router` print first.
fn spawn(args: &[&str]) -> Proc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable listen line: {line:?}"));
    // Drain the rest of stdout in the background so the child never
    // blocks on a full pipe.
    std::thread::spawn(move || std::io::copy(&mut stdout.into_inner(), &mut std::io::sink()));
    Proc { child, addr }
}

fn estimate_body(model: &str) -> Json {
    Json::object([
        ("model_name", Json::from(model)),
        ("nodes", Json::from(2usize)),
        ("backend", Json::from("analytic")),
    ])
}

fn field(v: &Json, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {v}"));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("non-number at {path:?} in {v}"))
}

/// Six of the bundled demo models — enough distinct digests to spread
/// across the fleet while keeping the kill-phase traffic quick.
const MODELS: [&str; 6] = [
    "sample",
    "kernel6",
    "jacobi",
    "lapw0",
    "pipeline",
    "master_worker",
];

#[test]
fn fleet_pins_by_digest_survives_a_kill_and_warm_restarts() {
    let token = "fleet-secret";
    let dir = std::env::temp_dir().join(format!("prophet-router-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = dir.to_str().unwrap().to_string();

    // Two shards sharing one artifact store, one router in front.
    let serve_args = |addr: &str| {
        vec![
            "serve".to_string(),
            "--addr".to_string(),
            addr.to_string(),
            "--workers".to_string(),
            "2".to_string(),
            "--store".to_string(),
            store.clone(),
            "--token".to_string(),
            token.to_string(),
        ]
    };
    let spawn_shard = |addr: &str| {
        let args = serve_args(addr);
        spawn(&args.iter().map(String::as_str).collect::<Vec<_>>())
    };
    let shard_a = spawn_shard("127.0.0.1:0");
    let shard_b = spawn_shard("127.0.0.1:0");
    let shard_list = format!("{},{}", shard_a.addr, shard_b.addr);
    let router = spawn(&[
        "router",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--shards",
        &shard_list,
        "--token",
        token,
        "--probe-ms",
        "100",
    ]);

    // Phase 1 — digest pinning: every model twice through the router;
    // the *fleet* compiles each exactly once, repeats are session
    // reuses on whichever shard owns the digest.
    for model in MODELS {
        for round in 0..2 {
            let r = client::post(router.addr, "/v1/estimate", &estimate_body(model))
                .unwrap_or_else(|e| panic!("estimate {model}: {e}"));
            assert_eq!(r.status, 200, "{model}: {}", r.body);
            assert_eq!(
                r.body
                    .get("session")
                    .unwrap()
                    .get("reused")
                    .unwrap()
                    .as_bool(),
                Some(round > 0),
                "{model} round {round}: repeats must pin to the compiling shard"
            );
        }
    }
    let metrics = client::get(router.addr, "/v1/metrics").unwrap().body;
    assert_eq!(
        field(&metrics, &["fleet", "session_compiles"]),
        MODELS.len() as f64,
        "each model must compile exactly once fleet-wide: {metrics}"
    );
    assert_eq!(
        field(&metrics, &["fleet", "session_reuses"]),
        MODELS.len() as f64,
        "{metrics}"
    );
    // Aggregation reflects both shards: two entries, both healthy, each
    // carrying its own metrics document.
    let shard_sections = metrics.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shard_sections.len(), 2, "{metrics}");
    for section in shard_sections {
        assert_eq!(section.get("healthy").unwrap().as_bool(), Some(true));
        assert!(section.get("metrics").is_some(), "{metrics}");
    }
    assert_eq!(field(&metrics, &["router", "routing", "healthy"]), 2.0);

    // Phase 2 — kill the shard owning `sample` (computed with the same
    // ring the router uses) while traffic runs; no client may see it.
    let ring = Ring::new(&[shard_a.addr.to_string(), shard_b.addr.to_string()]);
    let sample_key = route_key(ArtifactKey::of(
        &prophet::serve::api::demo_model("sample").unwrap(),
        &McfConfig::default(),
    ));
    let (mut owner, survivor) = if ring.route(sample_key) == 0 {
        (shard_a, shard_b)
    } else {
        (shard_b, shard_a)
    };
    let router_addr = router.addr;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|worker| {
                scope.spawn(move || {
                    for i in 0..8 {
                        let model = MODELS[(worker + i) % MODELS.len()];
                        let r = client::post(router_addr, "/v1/estimate", &estimate_body(model))
                            .unwrap_or_else(|e| panic!("{model} during kill: {e}"));
                        assert_eq!(
                            r.status, 200,
                            "{model} during kill must fail over invisibly: {}",
                            r.body
                        );
                        std::thread::sleep(Duration::from_millis(5));
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        owner.child.kill().expect("kill the owning shard");
        for worker in workers {
            worker.join().expect("no client-visible failure");
        }
    });
    // The fleet keeps answering the dead shard's models afterwards too
    // — and thanks to the shared store, the survivor picked them up
    // from the owner's write-backs (disk hits) instead of recompiling.
    let r = client::post(router_addr, "/v1/estimate", &estimate_body("sample")).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let survivor_metrics = client::get(survivor.addr, "/v1/metrics").unwrap().body;
    assert!(
        field(&survivor_metrics, &["store", "disk_hits"]) >= 1.0,
        "failed-over models must load from the shared store: {survivor_metrics}"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let shards = client::get(router_addr, "/v1/shards").unwrap().body;
        if field(&shards, &["routing", "healthy"]) == 1.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never marked the killed shard down: {shards}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Phase 3 — a replacement shard on the dead shard's address warm-
    // starts from the shared store: its first estimate is a pool reuse
    // backed by a disk hit, with zero compiles on the new process.
    let owner_addr = owner.addr;
    drop(owner); // reap the killed child before rebinding its port
    let revived = spawn_shard(&owner_addr.to_string());
    let first = client::post(revived.addr, "/v1/estimate", &estimate_body("sample")).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(
        first
            .body
            .get("session")
            .unwrap()
            .get("reused")
            .unwrap()
            .as_bool(),
        Some(true),
        "replacement shard must serve from the warm-started pool: {}",
        first.body
    );
    let revived_metrics = client::get(revived.addr, "/v1/metrics").unwrap().body;
    assert_eq!(
        field(&revived_metrics, &["session_pool", "compiles"]),
        0.0,
        "replacement must not recompile anything: {revived_metrics}"
    );
    assert!(
        field(&revived_metrics, &["store", "disk_hits"]) >= 1.0,
        "replacement must boot from its siblings' write-backs: {revived_metrics}"
    );
    // The router's prober marks the revived address back up on its own.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let shards = client::get(router_addr, "/v1/shards").unwrap().body;
        if field(&shards, &["routing", "healthy"]) == 2.0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "router never marked the revived shard up: {shards}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let r = client::post(router_addr, "/v1/estimate", &estimate_body("sample")).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    // Phase 4 — fleet shutdown is token-guarded end to end: a bare
    // request bounces with 401 at the router; the bearer token drains
    // router and shards alike (the router forwards the header).
    let bare = client::post(router_addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
    assert_eq!(bare.status, 401, "{}", bare.body);
    let ack = Connection::connect(router_addr)
        .unwrap()
        .send(
            "POST",
            "/v1/shutdown",
            Some("{}"),
            &[("authorization", &format!("Bearer {token}"))],
        )
        .unwrap();
    assert_eq!(ack.status, 200, "{}", ack.body);
    let mut fleet = [router, revived, survivor];
    for proc in &mut fleet {
        let status = proc.child.wait().expect("process exits");
        assert!(status.success(), "graceful drain must exit 0: {status:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
