//! Doc-sync tests: the documentation under `docs/` is kept honest
//! against the code it describes. If a route, metrics field, or crate
//! is added without documenting it, one of these fails.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn read(path: impl AsRef<Path>) -> String {
    let path = repo_root().join(path.as_ref());
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

/// Every `/v1/...` route string spelled anywhere in the serve, router,
/// or opt crate's sources (`server.rs`, `api.rs`, ...) must appear in
/// docs/API.md — router-only endpoints like `/v1/shards` included.
#[test]
fn every_serve_route_is_documented_in_api_md() {
    let api_md = read("docs/API.md");
    let mut routes: BTreeSet<String> = BTreeSet::new();
    for src_dir in ["crates/serve/src", "crates/router/src", "crates/opt/src"] {
        let src_dir = repo_root().join(src_dir);
        for entry in std::fs::read_dir(&src_dir).expect("crate src dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("rs") {
                continue;
            }
            let source = std::fs::read_to_string(&path).unwrap();
            // Route strings as they appear in source: "/v1/<word>".
            let mut rest = source.as_str();
            while let Some(at) = rest.find("/v1/") {
                let tail = &rest[at + 4..];
                let name: String = tail
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    routes.insert(format!("/v1/{name}"));
                }
                rest = &rest[at + 4..];
            }
        }
    }
    assert!(
        routes.contains("/v1/shards"),
        "expected the router-only /v1/shards endpoint in the scan, found {routes:?}"
    );
    for handoff in ["/v1/warm", "/v1/evict"] {
        assert!(
            routes.contains(handoff),
            "expected the rebalance-handoff endpoint {handoff} in the scan, found {routes:?}"
        );
    }
    assert!(
        routes.len() >= 9,
        "expected at least the nine endpoints, found {routes:?}"
    );
    for route in &routes {
        assert!(
            api_md.contains(route),
            "route `{route}` (spelled in crates/serve/src or crates/router/src) is missing from docs/API.md"
        );
    }
}

/// The store metrics fields the server emits must be documented, and
/// the doc must not invent fields the server doesn't emit.
#[test]
fn store_metrics_fields_match_api_md() {
    let api_rs = read("crates/serve/src/api.rs");
    let api_md = read("docs/API.md");
    for field in [
        "disk_hits",
        "disk_misses",
        "writes",
        "write_errors",
        "evictions",
    ] {
        assert!(
            api_rs.contains(&format!("\"{field}\"")),
            "`{field}` is no longer emitted by handle_metrics — update this test and docs/API.md"
        );
        assert!(
            api_md.contains(field),
            "store metrics field `{field}` is missing from docs/API.md"
        );
    }
    // The top-level metrics sections, likewise.
    for section in [
        "endpoints",
        "session_pool",
        "elab",
        "store",
        "phases",
        "journal",
        "lifetime",
    ] {
        assert!(
            api_md.contains(section),
            "metrics section `{section}` is missing from docs/API.md"
        );
    }
}

/// README links both documents, and they exist.
#[test]
fn readme_links_the_docs_layer() {
    let readme = read("README.md");
    for doc in [
        "docs/API.md",
        "docs/ARCHITECTURE.md",
        "docs/OBSERVABILITY.md",
    ] {
        assert!(readme.contains(doc), "README.md must link {doc}");
        assert!(repo_root().join(doc).exists(), "{doc} does not exist");
    }
}

/// The architecture doc's crate map covers every workspace crate.
#[test]
fn architecture_md_covers_every_crate() {
    let arch = read("docs/ARCHITECTURE.md");
    for entry in std::fs::read_dir(repo_root().join("crates")).expect("crates dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            arch.contains(name.as_ref()),
            "crate `{name}` is missing from docs/ARCHITECTURE.md's crate map"
        );
    }
}

/// The CLI's usage block and the README agree on the command set —
/// every `prophet <cmd>` the usage text advertises is shown in README.
#[test]
fn readme_shows_every_cli_command() {
    let main_rs = read("src/main.rs");
    let readme = read("README.md");
    for cmd in [
        "check",
        "transform",
        "estimate",
        "sweep",
        "optimize",
        "serve",
        "router",
        "warm",
        "store",
        "metrics",
        "demo",
    ] {
        assert!(
            main_rs.contains(&format!("prophet {cmd}")),
            "usage text no longer mentions `prophet {cmd}` — update this test"
        );
        assert!(
            readme.contains(&format!("prophet {cmd}")),
            "README.md quickstart is missing `prophet {cmd}`"
        );
    }
}
