//! Integration tests for the prediction service: a real listener on an
//! ephemeral port, real sockets, and the `prophet serve` binary itself.
//!
//! The headline assertion is the serve-path payoff of the compile-once
//! stack: two sequential `POST /v1/estimate` requests for the same model
//! compile the session **exactly once**, and the second request lands on
//! the elaboration cache — both visible over the wire through
//! `GET /v1/metrics`.

use prophet::serve::client;
use prophet::serve::json::Json;
use prophet::serve::server::{serve, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

fn start() -> prophet::serve::ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        ..Default::default()
    })
    .expect("bind an ephemeral port")
}

fn estimate_body(model: &str, nodes: usize) -> Json {
    Json::object([
        ("model_name", Json::from(model)),
        ("nodes", Json::from(nodes)),
    ])
}

fn field(v: &Json, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing `{key}` in {v}"));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("non-number at {path:?} in {v}"))
}

/// The acceptance criterion: same model twice → one compile, and the
/// second request reuses both the session and its elaborations.
#[test]
fn two_estimates_compile_once_and_hit_the_elab_cache() {
    let server = start();
    let addr = server.addr();
    let body = estimate_body("jacobi", 4);

    let first = client::post(addr, "/v1/estimate", &body).expect("first estimate");
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(
        first
            .body
            .get("session")
            .unwrap()
            .get("reused")
            .unwrap()
            .as_bool(),
        Some(false)
    );

    let second = client::post(addr, "/v1/estimate", &body).expect("second estimate");
    assert_eq!(second.status, 200, "{}", second.body);
    assert_eq!(
        second
            .body
            .get("session")
            .unwrap()
            .get("reused")
            .unwrap()
            .as_bool(),
        Some(true),
        "second request must reuse the pooled session: {}",
        second.body
    );
    // Same scenario → same prediction, bit for bit.
    assert_eq!(
        field(&first.body, &["predicted_time"]).to_bits(),
        field(&second.body, &["predicted_time"]).to_bits()
    );

    // The wire-visible proof, via the metrics endpoint: one compile,
    // one reuse, and elaboration hits > 0 after the second request.
    let metrics = client::get(addr, "/v1/metrics").expect("metrics").body;
    assert_eq!(field(&metrics, &["session_pool", "size"]), 1.0, "{metrics}");
    assert_eq!(
        field(&metrics, &["session_pool", "compiles"]),
        1.0,
        "{metrics}"
    );
    assert_eq!(
        field(&metrics, &["session_pool", "reuses"]),
        1.0,
        "{metrics}"
    );
    assert_eq!(field(&metrics, &["elab", "misses"]), 1.0, "{metrics}");
    assert!(
        field(&metrics, &["elab", "hits"]) > 0.0,
        "second estimate must be an elaboration-cache hit: {metrics}"
    );
    // Request accounting: two estimates, zero errors.
    assert_eq!(field(&metrics, &["endpoints", "estimate", "requests"]), 2.0);
    assert_eq!(field(&metrics, &["endpoints", "estimate", "errors"]), 0.0);
    assert_eq!(
        field(
            &metrics,
            &["endpoints", "estimate", "latency", "observations"]
        ),
        2.0
    );
    server.shutdown();
}

#[test]
fn check_estimate_sweep_agree_with_the_library() {
    let server = start();
    let addr = server.addr();

    // check: the bundled sample model conforms.
    let check = client::post(
        addr,
        "/v1/check",
        &Json::object([("model_name", Json::from("sample"))]),
    )
    .unwrap();
    assert_eq!(check.status, 200, "{}", check.body);
    assert_eq!(check.body.get("ok").unwrap().as_bool(), Some(true));

    // estimate over the wire == Session::evaluate in process.
    let est = client::post(addr, "/v1/estimate", &estimate_body("sample", 2)).unwrap();
    let expected = prophet::core::Session::new(prophet::serve::api::demo_model("sample").unwrap())
        .unwrap()
        .evaluate(
            &prophet::core::Scenario::new(prophet::machine::SystemParams::flat_mpi(2, 1))
                .without_trace(),
        )
        .unwrap()
        .predicted_time;
    assert_eq!(
        field(&est.body, &["predicted_time"]).to_bits(),
        expected.to_bits()
    );

    // sweep: table shape and speedup normalization.
    let sweep = client::post(
        addr,
        "/v1/sweep",
        &Json::object([
            ("model_name", Json::from("jacobi")),
            ("nodes", Json::from(vec![1usize, 2, 4])),
            ("backend", Json::from("analytic")),
        ]),
    )
    .unwrap();
    assert_eq!(sweep.status, 200, "{}", sweep.body);
    let points = sweep.body.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 3);
    assert_eq!(field(&points[0], &["speedup"]), 1.0);
    assert_eq!(field(&sweep.body, &["failures"]), 0.0);

    // Bad requests are typed errors, not dropped connections.
    let bad = client::post(
        addr,
        "/v1/estimate",
        &Json::object([("nodes", Json::from(2usize))]),
    )
    .unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.body.get("error").is_some());
    let missing = client::get(addr, "/v1/nope").unwrap();
    assert_eq!(missing.status, 404);
    server.shutdown();
}

#[test]
fn concurrent_load_compiles_each_model_once() {
    let server = start();
    let addr = server.addr();
    // 3 models × 4 threads × 2 requests each, all at once.
    std::thread::scope(|scope| {
        for model in ["sample", "jacobi", "pipeline"] {
            for _ in 0..4 {
                scope.spawn(move || {
                    for nodes in [1usize, 2] {
                        let r = client::post(addr, "/v1/estimate", &estimate_body(model, nodes))
                            .expect("estimate under load");
                        assert_eq!(r.status, 200, "{}", r.body);
                    }
                });
            }
        }
    });
    let metrics = client::get(addr, "/v1/metrics").unwrap().body;
    assert_eq!(
        field(&metrics, &["session_pool", "compiles"]),
        3.0,
        "one compile per distinct model under concurrency: {metrics}"
    );
    assert_eq!(
        field(&metrics, &["session_pool", "reuses"]),
        21.0,
        "{metrics}"
    );
    assert_eq!(
        field(&metrics, &["endpoints", "estimate", "requests"]),
        24.0
    );
    server.shutdown();
}

/// Spawn the real `prophet serve` binary on an ephemeral port and drive
/// it over the socket: the CI smoke path.
struct ServeProcess {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_serve(extra: &[&str]) -> ServeProcess {
    let mut child = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    // "prophet-serve listening on http://127.0.0.1:PORT"
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable listen line: {line:?}"));
    ServeProcess {
        child,
        addr,
        stdout,
    }
}

#[test]
fn serve_binary_serves_and_drains_gracefully() {
    let mut proc = spawn_serve(&["--workers", "2"]);
    let addr = proc.addr;

    let body = estimate_body("sample", 2);
    let first = client::post(addr, "/v1/estimate", &body).expect("estimate against the binary");
    assert_eq!(first.status, 200, "{}", first.body);
    let second = client::post(addr, "/v1/estimate", &body).unwrap();
    assert_eq!(
        second
            .body
            .get("session")
            .unwrap()
            .get("reused")
            .unwrap()
            .as_bool(),
        Some(true)
    );
    let metrics = client::get(addr, "/v1/metrics").unwrap().body;
    assert_eq!(
        field(&metrics, &["session_pool", "compiles"]),
        1.0,
        "{metrics}"
    );
    assert!(field(&metrics, &["elab", "hits"]) > 0.0, "{metrics}");

    // Graceful shutdown over the wire: the process drains and exits 0.
    let ack = client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
    assert_eq!(ack.status, 200);
    let status = proc.child.wait().expect("binary exits");
    assert!(status.success(), "{status:?}");
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut proc.stdout, &mut rest).unwrap();
    assert!(rest.contains("drained"), "missing drain message: {rest:?}");
}

/// Ask the running server to shut down and wait for a clean exit.
fn drain(mut proc: ServeProcess) {
    let ack = client::post(proc.addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
    assert_eq!(ack.status, 200);
    assert!(proc.child.wait().expect("binary exits").success());
}

/// The PR acceptance criterion: restarting `prophet serve --store DIR`
/// after a prior run serves its first estimate without recompiling —
/// `/v1/metrics` reports a store disk hit and **zero** compiles, driven
/// against the spawned binary twice over the same store directory.
#[test]
fn serve_restart_warm_starts_from_the_store() {
    let dir = std::env::temp_dir().join(format!("prophet-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_flag = dir.to_str().unwrap();
    let body = estimate_body("sample", 2);

    // Run 1: cold store — the estimate compiles and writes back.
    let predicted_cold;
    {
        let proc = spawn_serve(&["--workers", "2", "--store", store_flag]);
        let first = client::post(proc.addr, "/v1/estimate", &body).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        predicted_cold = field(&first.body, &["predicted_time"]);
        let metrics = client::get(proc.addr, "/v1/metrics").unwrap().body;
        assert_eq!(
            field(&metrics, &["session_pool", "compiles"]),
            1.0,
            "{metrics}"
        );
        assert_eq!(field(&metrics, &["store", "disk_misses"]), 1.0, "{metrics}");
        assert_eq!(field(&metrics, &["store", "writes"]), 1.0, "{metrics}");
        drain(proc);
    }

    // Run 2: the same store directory — the pool warm-starts at boot,
    // so the *first* estimate is already a pool reuse: a store disk
    // hit, zero compile events anywhere, bit-identical prediction.
    {
        let proc = spawn_serve(&["--workers", "2", "--store", store_flag]);
        let first = client::post(proc.addr, "/v1/estimate", &body).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(
            first
                .body
                .get("session")
                .unwrap()
                .get("reused")
                .unwrap()
                .as_bool(),
            Some(true),
            "warm-started session must be reused by the first request: {}",
            first.body
        );
        assert_eq!(
            field(&first.body, &["predicted_time"]).to_bits(),
            predicted_cold.to_bits(),
            "the loaded artifact must predict bit-identically"
        );
        let metrics = client::get(proc.addr, "/v1/metrics").unwrap().body;
        assert_eq!(
            field(&metrics, &["session_pool", "compiles"]),
            0.0,
            "restart must not recompile: {metrics}"
        );
        assert!(
            field(&metrics, &["store", "disk_hits"]) >= 1.0,
            "restart must hit the store: {metrics}"
        );
        drain(proc);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `prophet warm` → `prophet serve --store`: the CI warm-start smoke.
/// A store populated offline serves its first estimate with zero
/// compiles, and the pre-elaborated SP point lands as an elab hit.
#[test]
fn warm_then_serve_boots_hot() {
    let dir = std::env::temp_dir().join(format!("prophet-warm-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_flag = dir.to_str().unwrap().to_string();

    // Emit a model file and warm it into the store, pre-elaborating
    // the SP grid the estimate below will ask for.
    let model_path =
        std::env::temp_dir().join(format!("prophet-warm-model-{}.xml", std::process::id()));
    let demo = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(["demo", "jacobi"])
        .output()
        .unwrap();
    assert!(demo.status.success());
    std::fs::write(&model_path, &demo.stdout).unwrap();
    let warm = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(["warm", "--store", &store_flag, "--nodes", "1,2,4"])
        .arg(&model_path)
        .output()
        .unwrap();
    assert!(warm.status.success(), "{warm:?}");
    let out = String::from_utf8_lossy(&warm.stdout);
    assert!(out.contains("warmed `jacobi`"), "{out}");
    assert!(out.contains("3 pre-elaborated SP point(s)"), "{out}");

    let proc = spawn_serve(&["--workers", "2", "--store", &store_flag]);
    let first = client::post(proc.addr, "/v1/estimate", &estimate_body("jacobi", 4)).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(
        first
            .body
            .get("session")
            .unwrap()
            .get("reused")
            .unwrap()
            .as_bool(),
        Some(true),
        "{}",
        first.body
    );
    let metrics = client::get(proc.addr, "/v1/metrics").unwrap().body;
    assert_eq!(
        field(&metrics, &["session_pool", "compiles"]),
        0.0,
        "{metrics}"
    );
    assert!(field(&metrics, &["store", "disk_hits"]) >= 1.0, "{metrics}");
    assert_eq!(
        field(&metrics, &["elab", "hits"]),
        1.0,
        "the pre-elaborated SP point must be served from the seeded cache: {metrics}"
    );
    assert_eq!(field(&metrics, &["elab", "misses"]), 0.0, "{metrics}");
    drain(proc);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&model_path);
}

#[test]
fn metrics_has_no_store_section_without_a_store() {
    let server = start();
    let metrics = client::get(server.addr(), "/v1/metrics").unwrap().body;
    assert!(
        metrics.get("store").is_none(),
        "store counters must only exist under --store: {metrics}"
    );
    server.shutdown();
}

#[test]
fn serve_binary_rejects_bad_flags_as_usage_errors() {
    let out = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(["serve", "--workers", "lots"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("`lots`"),
        "must name the offending token: {err}"
    );
    assert!(err.contains("usage:"), "{err}");

    // `--addr` with its value forgotten must not silently fall back to
    // the default address — with or without another flag following.
    for args in [
        &["serve", "--addr"][..],
        &["serve", "--addr", "--workers", "4"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_prophet"))
            .args(args)
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("missing value after `--addr`"),
            "{args:?}: {err}"
        );
    }

    // An unbindable address is a runtime failure, not a usage error.
    let out = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(["serve", "--addr", "256.0.0.1:1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot bind"),
        "{out:?}"
    );
}

/// Keep-alive against the real binary: many requests ride one TCP
/// connection (the transport the router pools toward its shards).
#[test]
fn binary_serves_many_requests_per_connection() {
    let proc = spawn_serve(&["--workers", "1"]);
    let mut conn = client::Connection::connect(proc.addr).expect("connect");
    for _ in 0..5 {
        let r = conn.get("/v1/models").expect("keep-alive request");
        assert_eq!(r.status, 200);
    }
    assert_eq!(
        conn.reconnects(),
        0,
        "five requests must reuse one connection"
    );
    drain(proc);
}

/// The `PROPHET_TOKEN` environment variable guards shutdown exactly
/// like `--token`: 401 without the bearer header, drain with it.
#[test]
fn binary_token_env_guards_shutdown() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .env("PROPHET_TOKEN", "env-s3cret")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listen line");
    let addr: SocketAddr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable listen line: {line:?}"));

    let bare = client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
    assert_eq!(bare.status, 401, "{}", bare.body);
    // The service endpoints stay open without the token.
    assert_eq!(client::get(addr, "/v1/models").unwrap().status, 200);
    let ack = client::Connection::connect(addr)
        .unwrap()
        .send(
            "POST",
            "/v1/shutdown",
            Some("{}"),
            &[("authorization", "Bearer env-s3cret")],
        )
        .unwrap();
    assert_eq!(ack.status, 200, "{}", ack.body);
    assert!(child.wait().expect("binary exits").success());
}

/// Read one length-framed response off a pipelined connection.
fn read_framed_response(reader: &mut BufReader<std::net::TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line {status_line:?}"));
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = v.trim().parse().expect("content-length value");
        }
    }
    let mut body = vec![0u8; length];
    std::io::Read::read_exact(reader, &mut body).expect("framed body");
    (status, String::from_utf8(body).expect("UTF-8 body"))
}

/// HTTP/1.1 pipelining: two complete requests in a single write must
/// come back as two in-order responses on the same connection — the
/// keep-alive loop's buffered reader may not drop bytes that arrive
/// behind the request it is parsing.
#[test]
fn pipelined_requests_in_one_write_both_answered() {
    let server = start();
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(
        b"GET /v1/models HTTP/1.1\r\nhost: t\r\n\r\n\
          GET /v1/metrics HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    let mut reader = BufReader::new(s);
    let (status, body) = read_framed_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("models"), "{body}");
    let (status, body) = read_framed_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("requests"), "metrics body: {body}");
}

/// Request-smuggling frames bounce with 400 over a real socket: any
/// `Transfer-Encoding`, conflicting duplicate `Content-Length`, and
/// non-digit lengths. The connection closes after the 400, so the
/// ambiguous bytes are discarded, never parsed as a next request.
#[test]
fn smuggling_frames_bounce_on_the_direct_path() {
    let server = start();
    let addr = server.addr();
    let frames: [&[u8]; 3] = [
        b"POST /v1/check HTTP/1.1\r\nhost: t\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n",
        b"POST /v1/check HTTP/1.1\r\nhost: t\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\n{}",
        b"POST /v1/check HTTP/1.1\r\nhost: t\r\ncontent-length: +2\r\n\r\n{}",
    ];
    for frame in frames {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(frame).unwrap();
        let mut resp = String::new();
        std::io::Read::read_to_string(&mut s, &mut resp).unwrap();
        assert!(
            resp.starts_with("HTTP/1.1 400"),
            "frame {:?} got {resp}",
            String::from_utf8_lossy(frame)
        );
        assert!(
            resp.contains("connection: close"),
            "ambiguous framing must close the connection: {resp}"
        );
    }
    // The server keeps serving afterwards.
    assert_eq!(client::get(addr, "/v1/models").unwrap().status, 200);
}

/// Raw-socket client hygiene: a malformed request gets a 400 and the
/// server keeps serving on the same port.
#[test]
fn malformed_requests_do_not_wedge_the_binary() {
    let mut proc = spawn_serve(&["--workers", "1"]);
    let addr = proc.addr;
    {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(b"POST /v1/estimate HTTP/1.1\r\ncontent-length: 5\r\n\r\n{oops")
            .unwrap();
        let mut resp = String::new();
        std::io::Read::read_to_string(&mut s, &mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }
    let ok = client::get(addr, "/v1/models").unwrap();
    assert_eq!(ok.status, 200);
    client::post(addr, "/v1/shutdown", &Json::object::<&str>([])).unwrap();
    assert!(proc.child.wait().unwrap().success());
}
