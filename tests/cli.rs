//! Integration tests for the `prophet` CLI binary, driving the same
//! workflow a user would: demo → check → transform → estimate → sweep.

use std::process::Command;

fn prophet(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn temp_model(name: &str, which: &str) -> std::path::PathBuf {
    let (ok, xml, err) = prophet(&["demo", which]);
    assert!(ok, "demo failed: {err}");
    let path = std::env::temp_dir().join(format!("prophet-cli-test-{name}.xml"));
    std::fs::write(&path, xml).unwrap();
    path
}

/// Like [`prophet`], also returning the exact exit code: `2` for usage
/// errors (bad/missing arguments), `1` for pipeline failures.
fn prophet_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_prophet"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let (code, _out, err) = prophet_code(&[]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("missing command"), "{err}");
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let (code, _out, err) = prophet_code(&["frobnicate"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("unknown command `frobnicate`"), "{err}");
}

#[test]
fn usage_errors_name_the_offending_token_before_usage() {
    // Unknown subcommand: the token, then the usage block.
    let (code, _out, err) = prophet_code(&["estmate"]);
    assert_eq!(code, Some(2));
    let token_at = err.find("`estmate`").expect(&err);
    let usage_at = err.find("usage:").expect(&err);
    assert!(token_at < usage_at, "token must precede usage: {err}");

    // Missing positional argument.
    let (code, _out, err) = prophet_code(&["estimate"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("missing <model.xml> argument"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    // Bad flag value: names both the value and its flag.
    let model = temp_model("usage-badflag", "sample");
    let (code, _out, err) = prophet_code(&["estimate", model.to_str().unwrap(), "--nodes", "many"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("invalid value `many` for `--nodes`"), "{err}");

    // Flag at the end of the line, value missing entirely.
    let (code, _out, err) = prophet_code(&["estimate", model.to_str().unwrap(), "--nodes"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("missing value after `--nodes`"), "{err}");

    // Unknown demo: the offending token again.
    let (code, _out, err) = prophet_code(&["demo", "quicksort"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("unknown demo `quicksort`"), "{err}");
}

#[test]
fn pipeline_failures_exit_1_without_usage_noise() {
    // Unreadable model file: the user's arguments were fine.
    let (code, _out, err) = prophet_code(&["estimate", "/no/such/model.xml"]);
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("cannot read"), "{err}");
    assert!(!err.contains("usage:"), "runtime errors skip usage: {err}");

    // Semantically invalid SP: also a pipeline failure, not usage.
    let model = temp_model("exitcode-sp", "sample");
    let (code, _out, err) = prophet_code(&[
        "estimate",
        model.to_str().unwrap(),
        "--nodes",
        "4",
        "--processes",
        "2",
    ]);
    assert_eq!(code, Some(1), "{err}");
    assert!(!err.contains("usage:"), "{err}");
}

#[test]
fn demo_check_transform_estimate_roundtrip() {
    let model = temp_model("roundtrip", "sample");
    let model = model.to_str().unwrap();

    let (ok, out, err) = prophet(&["check", model]);
    assert!(ok, "{err}");
    assert!(out.contains("conforms"), "{out}");

    let (ok, out, _) = prophet(&["transform", model]);
    assert!(ok);
    assert!(out.contains("a1.execute(uid, pid, tid, FA1());"), "{out}");
    assert!(out.contains("double FSA2(double pid)"), "{out}");

    let (ok, out, _) = prophet(&["transform", model, "--full"]);
    assert!(ok);
    assert!(out.contains("class ActionPlus"), "{out}");

    let (ok, out, _) = prophet(&[
        "estimate",
        model,
        "--nodes",
        "2",
        "--cpus",
        "1",
        "--timeline",
    ]);
    assert!(ok);
    assert!(
        out.contains("predicted execution time: 0.900000 s"),
        "{out}"
    );
    assert!(out.contains("p0"), "{out}");
}

#[test]
fn skeleton_generation() {
    let model = temp_model("skeleton", "jacobi");
    let (ok, out, err) = prophet(&["transform", model.to_str().unwrap(), "--skeleton"]);
    assert!(ok, "{err}");
    assert!(out.contains("MPI_Init(&argc, &argv);"), "{out}");
    assert!(out.contains("MPI_Allreduce"), "{out}");
    assert!(out.contains("TODO: implement Compute"), "{out}");
}

#[test]
fn sweep_prints_speedup_table() {
    let model = temp_model("sweep", "jacobi");
    let (ok, out, err) = prophet(&["sweep", model.to_str().unwrap(), "--nodes", "1,2,4"]);
    assert!(ok, "{err}");
    assert!(out.contains("speedup"), "{out}");
    // Three data rows.
    assert_eq!(out.lines().count(), 4, "{out}");
}

#[test]
fn sweep_accepts_workers_and_rejects_threads() {
    let model = temp_model("sweep-flags", "jacobi");
    let (ok, out, err) = prophet(&[
        "sweep",
        model.to_str().unwrap(),
        "--nodes",
        "1,2",
        "--workers",
        "2",
    ]);
    assert!(ok, "{err}");
    assert_eq!(out.lines().count(), 3, "{out}");

    // `--threads` means threads-per-process in `estimate`; sweep must
    // refuse it rather than silently treat it as the worker pool.
    let (ok, _out, err) = prophet(&[
        "sweep",
        model.to_str().unwrap(),
        "--nodes",
        "1,2",
        "--threads",
        "4",
    ]);
    assert!(!ok);
    assert!(err.contains("--workers"), "{err}");
}

#[test]
fn sweep_no_elab_cache_flag_gives_identical_output() {
    // The elaboration cache is a pure memoization: the sweep table must
    // be byte-identical with and without it. (Repeated node counts in
    // the flag collapse to one point each before the sweep runs.)
    let model = temp_model("sweep-elab", "jacobi");
    let model = model.to_str().unwrap();
    let (ok, cached, err) = prophet(&["sweep", model, "--nodes", "1,2,4,2,1"]);
    assert!(ok, "{err}");
    let (ok, uncached, err) = prophet(&["sweep", model, "--nodes", "1,2,4,2,1", "--no-elab-cache"]);
    assert!(ok, "{err}");
    assert_eq!(cached, uncached);

    // Unknown flags would be silently ignored by flag_value; make sure
    // the documented spelling is the accepted one by checking usage.
    let (_ok, _out, err) = prophet(&["--help"]);
    let (ok2, usage, _) = prophet(&["help"]);
    assert!(ok2);
    assert!(
        usage.contains("--no-elab-cache") || err.contains("--no-elab-cache"),
        "usage must document --no-elab-cache: {usage}"
    );
}

#[test]
fn sweep_failed_points_render_on_one_row() {
    // A model whose cost divides by zero at exactly P=2: the P=2 row
    // fails, its neighbours evaluate. (A zero node count no longer
    // reaches this path — it is rejected as a usage error up front.)
    let (ok, xml, err) = prophet(&["demo", "jacobi"]);
    assert!(ok, "{err}");
    let xml = xml.replace(
        "0.00000001 * points",
        "0.00000001 * points / (P - 2) / (P - 2)",
    );
    let path = std::env::temp_dir().join("prophet-cli-test-sweep-fail.xml");
    std::fs::write(&path, xml).unwrap();
    let (ok, out, err) = prophet(&["sweep", path.to_str().unwrap(), "--nodes", "1,2,4"]);
    assert!(ok, "{err}");
    // Header + ok row + failed row + ok row: failures must not spill
    // onto extra lines (the error chain is flattened onto the row).
    assert_eq!(out.lines().count(), 4, "{out}");
    assert!(out.contains("failed:"), "{out}");
    assert!(out.contains("division by zero"), "{out}");
}

#[test]
fn sweep_rejects_zero_counts_and_collapses_repeats() {
    let model = temp_model("sweep-zero", "jacobi");
    let model = model.to_str().unwrap();
    // Zero is a usage error naming the offending token, before any
    // model work happens.
    let (code, _out, err) = prophet_code(&["sweep", model, "--nodes", "0,1"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("bad node count `0` in `--nodes 0,1`"), "{err}");
    assert!(err.contains("at least 1"), "{err}");
    // Repeated counts are one sweep point each, not duplicate rows.
    let (ok, out, err) = prophet(&["sweep", model, "--nodes", "2,2,4,2"]);
    assert!(ok, "{err}");
    assert_eq!(
        out.lines().count(),
        3,
        "header + one row per distinct count: {out}"
    );
}

#[test]
fn optimize_prints_frontier_and_best() {
    let model = temp_model("optimize", "jacobi");
    let (ok, out, err) = prophet(&[
        "optimize",
        model.to_str().unwrap(),
        "--nodes",
        "1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16",
        "--cpus",
        "1,2",
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("min_time frontier"), "{out}");
    assert!(out.contains("(oracle: analytic)"), "{out}");
    assert!(out.contains("best (min_time):"), "{out}");
    assert!(out.contains("oracle evaluations:"), "{out}");
    // Table columns present.
    for col in ["nodes", "cpus", "cost", "time(s)", "speedup"] {
        assert!(out.contains(col), "missing column {col}: {out}");
    }
}

#[test]
fn optimize_usage_errors_exit_2_and_name_the_token() {
    let model = temp_model("optimize-usage", "jacobi");
    let model = model.to_str().unwrap();
    for (args, needle) in [
        (
            vec!["optimize", model, "--objective", "fastest"],
            "unknown objective `fastest`",
        ),
        (
            vec!["optimize", model, "--nodes", "0,4"],
            "bad node count `0` in `--nodes 0,4`",
        ),
        (
            vec!["optimize", model, "--cpus", "two"],
            "bad cpu count `two`",
        ),
        (vec!["optimize", model, "--margin", "1.5"], "margin"),
        (vec!["optimize", model, "--stride", "0"], "stride"),
        (vec!["optimize", model, "--deadline", "-1"], "deadline"),
        (
            vec!["optimize", model, "--verify", "twice"],
            "unknown verify mode `twice`",
        ),
    ] {
        let (code, _out, err) = prophet_code(&args);
        assert_eq!(code, Some(2), "{args:?}: {err}");
        assert!(err.contains(needle), "{args:?}: {err}");
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }
}

#[test]
fn estimate_accepts_both_backends() {
    let model = temp_model("backends", "sample");
    let model = model.to_str().unwrap();
    // Deterministic communication-free model: both backends print the
    // exact same prediction.
    for backend in ["simulation", "analytic"] {
        let (ok, out, err) = prophet(&["estimate", model, "--nodes", "2", "--backend", backend]);
        assert!(ok, "{backend}: {err}");
        assert!(out.contains(&format!("backend: {backend}")), "{out}");
        assert!(
            out.contains("predicted execution time: 0.900000 s"),
            "{backend}: {out}"
        );
    }
}

#[test]
fn unknown_backend_rejected_with_accepted_values() {
    let model = temp_model("badbackend", "sample");
    let (ok, _out, err) = prophet(&["estimate", model.to_str().unwrap(), "--backend", "quantum"]);
    assert!(!ok);
    assert!(err.contains("unknown backend `quantum`"), "{err}");
    assert!(
        err.contains("simulation") && err.contains("analytic"),
        "rejection must list the accepted values: {err}"
    );
}

#[test]
fn analytic_backend_refuses_trace_flags() {
    let model = temp_model("analytic-trace", "sample");
    let model = model.to_str().unwrap();
    for flag in [&["--trace", "/tmp/never.txt"][..], &["--timeline"][..]] {
        let mut args = vec!["estimate", model, "--backend", "analytic"];
        args.extend_from_slice(flag);
        let (ok, _out, err) = prophet(&args);
        assert!(!ok, "{flag:?} must be rejected under --backend analytic");
        assert!(err.contains("records no trace"), "{err}");
    }
}

#[test]
fn sweep_backend_output_parity() {
    let model = temp_model("sweep-backend", "jacobi");
    let model = model.to_str().unwrap();
    let (ok, sim_out, err) = prophet(&["sweep", model, "--nodes", "1,2,4"]);
    assert!(ok, "{err}");
    let (ok, ana_out, err) =
        prophet(&["sweep", model, "--nodes", "1,2,4", "--backend", "analytic"]);
    assert!(ok, "{err}");
    // Identical table shape: same header, same number of rows, same
    // node/P columns — only the engine behind the numbers differs.
    assert_eq!(
        sim_out.lines().next(),
        ana_out.lines().next(),
        "header parity"
    );
    assert_eq!(sim_out.lines().count(), ana_out.lines().count());
    for (s, a) in sim_out.lines().zip(ana_out.lines()).skip(1) {
        let key = |row: &str| {
            row.split_whitespace()
                .take(2)
                .map(String::from)
                .collect::<Vec<_>>()
        };
        assert_eq!(key(s), key(a), "row keys must match:\n{sim_out}\n{ana_out}");
    }
    // Deterministic model: the predictions agree to the printed precision.
    assert_eq!(sim_out, ana_out, "tables should be identical for jacobi");

    // Unknown backend on sweep is rejected before compiling.
    let (ok, _out, err) = prophet(&["sweep", model, "--nodes", "1,2", "--backend", "nope"]);
    assert!(!ok);
    assert!(err.contains("unknown backend"), "{err}");
}

#[test]
fn estimate_writes_trace_file() {
    let model = temp_model("trace", "sample");
    let tf_path = std::env::temp_dir().join("prophet-cli-test-trace.txt");
    let (ok, _out, err) = prophet(&[
        "estimate",
        model.to_str().unwrap(),
        "--trace",
        tf_path.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    let tf = std::fs::read_to_string(&tf_path).unwrap();
    assert!(tf.starts_with("# TF model=sample"), "{tf}");
}

fn temp_store_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("prophet-cli-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_populates_a_store_and_hits_on_repeat() {
    let model = temp_model("warm", "sample");
    let model = model.to_str().unwrap();
    let dir = temp_store_dir("warm");
    let store = dir.to_str().unwrap();

    let (ok, out, err) = prophet(&["warm", "--store", store, model]);
    assert!(ok, "{err}");
    assert!(out.contains("warmed `sample`"), "{out}");
    assert!(out.contains("stored"), "{out}");
    assert!(out.contains("1 write(s)"), "{out}");
    // Exactly one artifact file appears.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".bin"))
        .collect();
    assert_eq!(entries.len(), 1, "{entries:?}");

    // Warming again is idempotent: a disk hit, no new write.
    let (ok, out, err) = prophet(&["warm", "--store", store, model]);
    assert!(ok, "{err}");
    assert!(out.contains("already stored"), "{out}");
    assert!(out.contains("0 write(s)"), "{out}");
    assert!(out.contains("1 disk hit(s)"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_rewrites_a_corrupt_entry_even_without_nodes() {
    // A corrupt artifact is evicted on load; warm must then re-write it
    // (reported as `stored`, one write) — not report "already stored"
    // and leave the slot empty.
    let model = temp_model("warm-corrupt", "sample");
    let model = model.to_str().unwrap();
    let dir = temp_store_dir("warm-corrupt");
    let store = dir.to_str().unwrap();
    let (ok, _out, err) = prophet(&["warm", "--store", store, model]);
    assert!(ok, "{err}");

    let entry = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".bin"))
        .expect("artifact written")
        .path();
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&entry, &bytes).unwrap();

    let (ok, out, err) = prophet(&["warm", "--store", store, model]);
    assert!(ok, "{err}");
    assert!(!out.contains("already stored"), "{out}");
    assert!(out.contains("1 write(s)"), "{out}");
    assert!(entry.exists(), "slot must be re-filled");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_pre_elaborates_an_sp_grid() {
    let model = temp_model("warm-grid", "jacobi");
    let dir = temp_store_dir("warm-grid");
    let (ok, out, err) = prophet(&[
        "warm",
        "--store",
        dir.to_str().unwrap(),
        "--nodes",
        "1,2,4,8",
        model.to_str().unwrap(),
    ]);
    assert!(ok, "{err}");
    assert!(out.contains("4 pre-elaborated SP point(s)"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_gc_shrinks_a_warmed_store_under_budget() {
    let model = temp_model("gc", "sample");
    let model = model.to_str().unwrap();
    let dir = temp_store_dir("gc");
    let store = dir.to_str().unwrap();
    let (ok, _out, err) = prophet(&["warm", "--store", store, model]);
    assert!(ok, "{err}");

    // An ample budget retains the entry...
    let (ok, out, err) = prophet(&["store", "gc", "--store", store, "--max-bytes", "100000000"]);
    assert!(ok, "{err}");
    assert!(out.contains("scanned 1 entries"), "{out}");
    assert!(out.contains("evicted 0 corrupt, 0 by LRU"), "{out}");
    assert!(out.contains("retained 1 entries"), "{out}");

    // ...a zero budget reclaims it.
    let (ok, out, err) = prophet(&["store", "gc", "--store", store, "--max-bytes", "0"]);
    assert!(ok, "{err}");
    assert!(out.contains("0 corrupt, 1 by LRU"), "{out}");
    assert!(out.contains("retained 0 entries (0 bytes)"), "{out}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_gc_usage_errors_name_the_offending_token() {
    let (code, _out, err) = prophet_code(&["store"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("store requires a subcommand"), "{err}");

    let (code, _out, err) = prophet_code(&["store", "shrink"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("unknown store subcommand `shrink`"), "{err}");

    let (code, _out, err) = prophet_code(&["store", "gc", "--max-bytes", "10"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("requires --store"), "{err}");

    let (code, _out, err) = prophet_code(&["store", "gc", "--store", "/tmp/x"]);
    assert_eq!(code, Some(2));
    assert!(err.contains("requires --max-bytes"), "{err}");

    let (code, _out, err) =
        prophet_code(&["store", "gc", "--store", "/tmp/x", "--max-bytes", "lots"]);
    assert_eq!(code, Some(2), "{err}");
}

#[test]
fn warm_usage_errors_name_the_offending_token() {
    // Missing --store entirely.
    let model = temp_model("warm-usage", "sample");
    let model = model.to_str().unwrap();
    let (code, _out, err) = prophet_code(&["warm", model]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("--store"), "{err}");
    assert!(err.contains("usage:"), "{err}");

    // --store present, value missing.
    let (code, _out, err) = prophet_code(&["warm", "--store"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("missing value after `--store`"), "{err}");

    // No model argument.
    let dir = temp_store_dir("warm-usage");
    let (code, _out, err) = prophet_code(&["warm", "--store", dir.to_str().unwrap()]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("missing <model.xml> argument"), "{err}");

    // Bad node count, token named.
    let (code, _out, err) = prophet_code(&[
        "warm",
        "--store",
        dir.to_str().unwrap(),
        "--nodes",
        "1,two",
        model,
    ]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("bad node count `two`"), "{err}");

    // Unknown flag, token named.
    let (code, _out, err) = prophet_code(&[
        "warm",
        "--store",
        dir.to_str().unwrap(),
        "--frobnicate",
        model,
    ]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("unknown flag `--frobnicate`"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unusable_store_path_is_a_runtime_failure_not_usage() {
    // A store path that cannot become a writable directory (it names an
    // existing regular file) is the environment's fault, not the
    // arguments': exit 1, no usage block — for both `warm` and `serve`.
    let file = std::env::temp_dir().join(format!("prophet-cli-store-file-{}", std::process::id()));
    std::fs::write(&file, b"not a directory").unwrap();
    let model = temp_model("store-file", "sample");

    let (code, _out, err) = prophet_code(&[
        "warm",
        "--store",
        file.to_str().unwrap(),
        model.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("cannot open store"), "{err}");
    assert!(!err.contains("usage:"), "runtime errors skip usage: {err}");

    let (code, _out, err) = prophet_code(&["serve", "--store", file.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("cannot open store"), "{err}");
    assert!(!err.contains("usage:"), "{err}");

    // `serve --store` with the value missing is a usage error (exit 2).
    let (code, _out, err) = prophet_code(&["serve", "--store"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("missing value after `--store`"), "{err}");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn metrics_usage_errors_name_the_offending_token() {
    // Missing url entirely (the --watch value is not a url).
    for args in [&["metrics"][..], &["metrics", "--watch", "2"][..]] {
        let (code, _out, err) = prophet_code(args);
        assert_eq!(code, Some(2), "{args:?}: {err}");
        assert!(err.contains("missing <url> argument"), "{args:?}: {err}");
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }

    // Unresolvable url: named before the usage block.
    let (code, _out, err) = prophet_code(&["metrics", "not a url"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("bad server url `not a url`"), "{err}");

    // --watch value missing, unparsable, or zero.
    let (code, _out, err) = prophet_code(&["metrics", "127.0.0.1:1", "--watch"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("missing value after `--watch`"), "{err}");
    let (code, _out, err) = prophet_code(&["metrics", "127.0.0.1:1", "--watch", "soon"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("invalid value `soon` for `--watch`"), "{err}");
    let (code, _out, err) = prophet_code(&["metrics", "127.0.0.1:1", "--watch", "0"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("`--watch`"), "{err}");

    // Unknown flag, token named.
    let (code, _out, err) = prophet_code(&["metrics", "127.0.0.1:1", "--frobnicate"]);
    assert_eq!(code, Some(2), "{err}");
    assert!(err.contains("unknown flag `--frobnicate`"), "{err}");

    // An unreachable server is the environment's fault, not the
    // arguments': exit 1, no usage block.
    let (code, _out, err) = prophet_code(&["metrics", "127.0.0.1:1"]);
    assert_eq!(code, Some(1), "{err}");
    assert!(err.contains("cannot fetch metrics"), "{err}");
    assert!(!err.contains("usage:"), "runtime errors skip usage: {err}");
}

#[test]
fn check_reports_errors_on_broken_model() {
    // Corrupt a valid model by injecting an unparsable cost expression.
    let model = temp_model("broken", "sample");
    let xml = std::fs::read_to_string(&model).unwrap();
    let broken = xml.replace("value=\"FA1()\"", "value=\"FA1() +\"");
    let path = std::env::temp_dir().join("prophet-cli-test-broken.xml");
    std::fs::write(&path, broken).unwrap();
    let (ok, out, err) = prophet(&["check", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(
        out.contains("PP006") || err.contains("PP006"),
        "out: {out}\nerr: {err}"
    );
}

#[test]
fn invalid_sp_rejected() {
    let model = temp_model("badsp", "sample");
    let (ok, _out, err) = prophet(&[
        "estimate",
        model.to_str().unwrap(),
        "--nodes",
        "4",
        "--processes",
        "2",
    ]);
    assert!(!ok);
    assert!(err.contains("processes"), "{err}");
}
