//! Differential conformance: the analytic backend vs the DES simulation
//! backend on every bundled workload model, across an SP grid.
//!
//! Two independent engines computing the same predictions from the same
//! Program IR give us an oracle for the whole pipeline: any divergence
//! beyond the contract below is a bug in one of them.
//!
//! ## The contract (pinned here, stated in `prophet_estimator::analytic`)
//!
//! * **Deterministic, communication-free models** (kernel6, sample):
//!   predicted times are **bit-equal** — both backends accumulate the
//!   same compute costs through the same floating-point operations.
//! * **Deterministic message-passing models** (jacobi, pipeline,
//!   master_worker, lapw0): predicted times agree within
//!   [`REL_TOL`] = 1e-9 relative — the kernel reaches an arrival time
//!   `a` by holding `a − now` while the analytic pass computes `a`
//!   directly, so the two may round differently in the last ulp per
//!   message hop.
//!
//! Divergences are reported per model × SP point, all at once, so a
//! regression shows the full blast radius instead of the first victim.

use prophet::core::{Backend, Scenario, Session};
use prophet::machine::SystemParams;
use prophet::sim::{Action, Config, FacilityId, ProcCtx, Process, Resumed, Simulator};
use prophet::uml::Model;
use prophet::workloads::models::{
    jacobi_model, kernel6_model, lapw0_model, master_worker_model, pipeline_model, sample_model,
};
use proptest::prelude::*;

/// Stated tolerance for deterministic message-passing models (relative).
const REL_TOL: f64 = 1e-9;

fn flat(n: usize) -> SystemParams {
    SystemParams::flat_mpi(n, 1)
}

fn hybrid(nodes: usize, cpus: usize, procs: usize, threads: usize) -> SystemParams {
    SystemParams {
        nodes,
        cpus_per_node: cpus,
        processes: procs,
        threads_per_process: threads,
    }
}

struct Case {
    name: &'static str,
    model: Model,
    grid: Vec<SystemParams>,
    /// `true` → bit-equal required (communication-free deterministic);
    /// `false` → within [`REL_TOL`] relative.
    exact: bool,
}

/// Every bundled workload model with its conformance grid (≥ 4 SP
/// points each).
fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "kernel6",
            model: kernel6_model(500, 10, 2e-9),
            grid: vec![flat(1), flat(2), flat(4), flat(8)],
            exact: true,
        },
        Case {
            name: "sample",
            model: sample_model(),
            grid: vec![flat(1), flat(2), flat(4), flat(8)],
            exact: true,
        },
        Case {
            name: "jacobi",
            model: jacobi_model(200_000, 5, 1e-8),
            grid: vec![flat(1), flat(2), flat(4), flat(8)],
            exact: false,
        },
        Case {
            name: "pipeline",
            model: pipeline_model(20, 0.01, 1024),
            grid: vec![flat(1), flat(2), flat(4), flat(8)],
            exact: false,
        },
        Case {
            name: "master_worker",
            model: master_worker_model(64, 0.005, 128),
            grid: vec![flat(1), flat(2), flat(4), flat(8)],
            exact: false,
        },
        Case {
            name: "lapw0",
            model: lapw0_model(64, 16, 1e-5),
            // Hybrid MPI+OpenMP grid: one rank per node (the analytic CPU
            // model assumes ranks do not contend for node CPUs).
            grid: vec![
                hybrid(1, 1, 1, 1),
                hybrid(2, 1, 2, 1),
                hybrid(2, 2, 2, 2),
                hybrid(4, 2, 4, 2),
            ],
            exact: false,
        },
    ]
}

fn rel_diff(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
    (a - b).abs() / scale
}

/// The headline test: evaluate every model on both backends across its
/// grid and report all divergences at once.
#[test]
fn analytic_matches_simulation_across_all_models() {
    let mut divergences = Vec::new();
    for case in cases() {
        let session = Session::new(case.model).expect("model compiles");
        for sp in &case.grid {
            let scenario = Scenario::new(*sp).without_trace();
            let sim = session
                .evaluate(&scenario)
                .unwrap_or_else(|e| panic!("{} sim {sp:?}: {e}", case.name));
            let ana = session
                .evaluate(&scenario.clone().with_backend(Backend::Analytic))
                .unwrap_or_else(|e| panic!("{} analytic {sp:?}: {e}", case.name));

            // The analytic backend must never touch the DES kernel.
            assert_eq!(ana.report.events_processed, 0, "{}", case.name);
            assert!(ana.report.facilities.is_empty(), "{}", case.name);
            assert!(ana.trace.is_empty(), "{}", case.name);

            let (s, a) = (sim.predicted_time, ana.predicted_time);
            let ok = if case.exact {
                s.to_bits() == a.to_bits()
            } else {
                rel_diff(s, a) <= REL_TOL
            };
            if !ok {
                divergences.push(format!(
                    "model={} sp={}x{}x{}x{}: simulation={s:.12e} analytic={a:.12e} rel={:.3e} ({})",
                    case.name,
                    sp.nodes,
                    sp.cpus_per_node,
                    sp.processes,
                    sp.threads_per_process,
                    rel_diff(s, a),
                    if case.exact { "exact required" } else { "tol 1e-9" },
                ));
            }
        }
    }
    assert!(
        divergences.is_empty(),
        "{} divergence(s):\n{}",
        divergences.len(),
        divergences.join("\n")
    );
}

/// Both backends must agree on *failures* too: a model that deadlocks
/// under simulation must deadlock analytically.
#[test]
fn backends_agree_on_deadlock() {
    // Rank 0 waits for a message rank 1 never sends.
    use prophet::estimator::{
        evaluate_analytic, Estimator, EstimatorError, EstimatorOptions, MpiOp, Program, Step,
    };
    use prophet::machine::{CommParams, MachineModel};

    let mut p = Program::new("stuck");
    p.body = Step::Branch(vec![(
        Some(prophet::expr::parse_expression("pid == 0").unwrap()),
        Step::Mpi {
            name: "r".into(),
            op: MpiOp::Recv {
                src: prophet::expr::parse_expression("1").unwrap(),
                tag: 0,
            },
        },
    )]);
    let m = MachineModel::new(flat(2), CommParams::default()).unwrap();
    let opts = EstimatorOptions::default();
    let sim = Estimator::run(&p, &m, &opts).unwrap_err();
    let ana = evaluate_analytic(&p, &m, &opts).unwrap_err();
    for (which, err) in [("simulation", sim), ("analytic", ana)] {
        match err {
            EstimatorError::Sim(prophet::sim::SimError::Deadlock { blocked, .. }) => {
                assert!(
                    blocked.iter().any(|b| b.contains("rank0")),
                    "{which}: {blocked:?}"
                );
            }
            other => panic!("{which}: expected deadlock, got {other}"),
        }
    }
}

// ---------------------------------------------------------------------
// Determinism properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Session::evaluate` with `Backend::Analytic` is deterministic and
    /// seed-independent: the same scenario modulo seed (and calendar)
    /// yields a bit-identical Evaluation.
    #[test]
    fn analytic_is_seed_independent(seed_a in any::<u64>(), seed_b in any::<u64>(), idx in 0usize..4) {
        let session = Session::new(jacobi_model(50_000, 3, 1e-8)).unwrap();
        let sp = [flat(1), flat(2), flat(4), flat(8)][idx];
        let time = |seed: u64| {
            session
                .evaluate(
                    &Scenario::new(sp)
                        .with_seed(seed)
                        .with_backend(Backend::Analytic),
                )
                .unwrap()
                .predicted_time
        };
        prop_assert_eq!(time(seed_a).to_bits(), time(seed_b).to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batch-vs-single differential: analytic sweeps dispatch whole
    /// chunks through `prophet_estimator::batch` (compact ops, static
    /// message matching, reused scratch), while `Session::evaluate`
    /// stays on the per-point oracle. Every sweep point must be
    /// **bit-identical** to its per-point evaluation — across models,
    /// random grids with repeated points (exercising elab-cache hits
    /// and scratch reuse), and worker counts (exercising the chunked
    /// work-stealing dispatch).
    #[test]
    fn batch_sweep_is_bit_identical_to_per_point_evaluation(
        model_idx in 0usize..6,
        picks in proptest::collection::vec(0usize..4, 1..16),
        threads in 0usize..4,
    ) {
        use prophet::core::{SweepConfig, SweepPoint};
        let (name, model, grid): (_, Model, Vec<SystemParams>) = match model_idx {
            0 => ("kernel6", kernel6_model(100, 5, 2e-9), vec![flat(1), flat(2), flat(4), flat(8)]),
            1 => ("sample", sample_model(), vec![flat(1), flat(2), flat(4), flat(8)]),
            2 => ("jacobi", jacobi_model(50_000, 3, 1e-8), vec![flat(1), flat(2), flat(4), flat(8)]),
            3 => ("pipeline", pipeline_model(10, 0.01, 1024), vec![flat(1), flat(2), flat(4), flat(8)]),
            4 => ("master_worker", master_worker_model(32, 0.005, 128), vec![flat(1), flat(2), flat(4), flat(8)]),
            _ => (
                "lapw0",
                lapw0_model(32, 8, 1e-5),
                // Hybrid grid: thread teams exercise the pre-priced
                // FCFS lock schedules of the batch compilation.
                vec![hybrid(1, 1, 1, 1), hybrid(2, 1, 2, 1), hybrid(2, 2, 2, 2), hybrid(4, 2, 4, 2)],
            ),
        };
        let session = Session::new(model).expect("model compiles");
        let points: Vec<SweepPoint> = picks.iter().map(|&i| SweepPoint { sp: grid[i] }).collect();
        let report = session.sweep_with(
            &points,
            &SweepConfig {
                backend: Backend::Analytic,
                threads,
                ..Default::default()
            },
            |_, _| {},
        );
        prop_assert_eq!(report.points.len(), points.len());
        for (point, result) in points.iter().zip(&report.points) {
            let batch = result
                .time()
                .unwrap_or_else(|| panic!("{name} sweep failed at {:?}", point.sp));
            let single = session
                .evaluate(&Scenario::new(point.sp).with_backend(Backend::Analytic).without_trace())
                .unwrap_or_else(|e| panic!("{name} evaluate {:?}: {e}", point.sp))
                .predicted_time;
            prop_assert_eq!(
                batch.to_bits(),
                single.to_bits(),
                "{} at {:?}: batch {} vs single {}",
                name, point.sp, batch, single
            );
        }
    }
}

/// The contrast: on a *stochastic* model (random service times drawn
/// from the kernel's seeded streams) the simulation backend IS seed
/// sensitive — which is exactly why the analytic backend's
/// seed-independence above is a property and not a tautology.
#[test]
fn simulation_is_seed_sensitive_on_stochastic_models() {
    struct RandomWork {
        cpu: FacilityId,
        jobs: u32,
    }
    impl Process for RandomWork {
        fn resume(&mut self, ctx: &mut ProcCtx<'_>, _why: Resumed) -> Action {
            if self.jobs == 0 {
                return Action::Terminate;
            }
            self.jobs -= 1;
            let service = ctx
                .random_stream(&format!("svc-{}", self.jobs))
                .exponential(1.0);
            Action::Use(self.cpu, service)
        }
    }
    let end_time = |seed: u64| {
        let mut sim = Simulator::new(Config {
            seed,
            ..Default::default()
        });
        let cpu = sim.add_facility("cpu", 1, prophet::sim::Discipline::Fcfs);
        sim.spawn("w", Box::new(RandomWork { cpu, jobs: 50 }));
        sim.run().unwrap().end_time
    };
    assert_eq!(end_time(3).to_bits(), end_time(3).to_bits(), "same seed");
    assert_ne!(
        end_time(3).to_bits(),
        end_time(4).to_bits(),
        "different seeds must differ on stochastic models"
    );
}
