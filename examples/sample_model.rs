//! The Figure 7/8 sample model, reproduced end to end.
//!
//! Prints: the model's XML representation (`Models (XML)`), the checker
//! verdict, the generated C++ (compare with the paper's Figure 8), the
//! predicted time, and the per-element profile.
//!
//! Run with: `cargo run --release --example sample_model`

use prophet_core::{Scenario, Session};
use prophet_trace::TraceAnalysis;
use prophet_workloads::models::sample_model;

fn main() {
    let session = Session::new(sample_model()).expect("compile");

    println!("=== Models (XML) ===");
    println!("{}", session.model_xml());

    println!("=== Model Checker ===");
    println!(
        "{} finding(s){}",
        session.diagnostics().len(),
        if session.diagnostics().is_empty() {
            " — model conforms"
        } else {
            ":"
        }
    );
    for d in session.diagnostics() {
        println!("  {d}");
    }

    println!("\n=== Generated C++ (compare with Figure 8) ===");
    println!("{}", session.cpp().model_text());

    let run = session.evaluate(&Scenario::default()).expect("evaluate");

    println!("=== Evaluation ===");
    println!("predicted time: {:.6} s", run.predicted_time);

    let analysis = TraceAnalysis::analyze(&run.trace);
    println!("\nelement profile:");
    for p in &analysis.profile {
        println!("  {:<10} total={:.4}s", p.element, p.total_time);
    }
    println!(
        "\nBranch taken: {} (A1's associated code sets GV = 1, so the model\nexecutes activity SA rather than action A2 — Figure 7(a) semantics).",
        if analysis.element("SA1").is_some() { "SA" } else { "A2" }
    );
}
