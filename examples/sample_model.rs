//! The Figure 7/8 sample model, reproduced end to end.
//!
//! Prints: the model's XML representation (`Models (XML)`), the checker
//! verdict, the generated C++ (compare with the paper's Figure 8), the
//! predicted time, and the per-element profile.
//!
//! Run with: `cargo run --release --example sample_model`

use prophet_core::project::Project;
use prophet_trace::TraceAnalysis;
use prophet_workloads::models::sample_model;

fn main() {
    let project = Project::new(sample_model());

    println!("=== Models (XML) ===");
    println!("{}", project.model_xml());

    let run = project.run().expect("pipeline");

    println!("=== Model Checker ===");
    println!(
        "{} finding(s){}",
        run.diagnostics.len(),
        if run.diagnostics.is_empty() { " — model conforms" } else { ":" }
    );
    for d in &run.diagnostics {
        println!("  {d}");
    }

    println!("\n=== Generated C++ (compare with Figure 8) ===");
    println!("{}", run.cpp.model_text());

    println!("=== Evaluation ===");
    println!("predicted time: {:.6} s", run.evaluation.predicted_time);

    let analysis = TraceAnalysis::analyze(&run.evaluation.trace);
    println!("\nelement profile:");
    for p in &analysis.profile {
        println!("  {:<10} total={:.4}s", p.element, p.total_time);
    }
    println!(
        "\nBranch taken: {} (A1's associated code sets GV = 1, so the model\nexecutes activity SA rather than action A2 — Figure 7(a) semantics).",
        if analysis.element("SA1").is_some() { "SA" } else { "A2" }
    );
}
