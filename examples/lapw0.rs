//! LAPW0-like hybrid MPI+OpenMP prediction (experiment E5).
//!
//! The Performance Prophet line of work validated against the LAPW0
//! material-science code (hybrid parallelism). The real code is
//! proprietary; this synthetic model reproduces its phase structure —
//! setup, a k-point loop whose FFT work runs in an OpenMP region, an
//! allreduce of the potential each iteration, and a final gather — and
//! sweeps ranks × threads to show where hybrid beats flat MPI.
//!
//! Run with: `cargo run --release --example lapw0`

use prophet_core::{Scenario, Session};
use prophet_machine::SystemParams;
use prophet_workloads::models::lapw0_model;

fn main() {
    let atoms = 64usize;
    let kpoints = 32usize;
    // One compile serves the whole ranks × threads sweep below.
    let session = Session::new(lapw0_model(atoms, kpoints, 1e-4)).expect("compile");

    println!("=== LAPW0-like hybrid sweep ({atoms} atoms, {kpoints} k-points) ===");
    println!(
        "{:>6} {:>8} {:>8} {:>12} {:>9}",
        "nodes", "ranks", "threads", "time(s)", "speedup"
    );

    let mut baseline = None;
    for &(nodes, cpn, procs, threads) in &[
        (1usize, 1usize, 1usize, 1usize), // serial
        (2, 1, 2, 1),                     // flat MPI, 2 ranks
        (4, 1, 4, 1),                     // flat MPI, 4 ranks
        (2, 2, 4, 1),                     // flat MPI, 2 nodes × 2 cpus
        (2, 2, 2, 2),                     // hybrid: 2 ranks × 2 threads
        (4, 2, 4, 2),                     // hybrid: 4 ranks × 2 threads
        (4, 4, 4, 4),                     // hybrid: 4 ranks × 4 threads
    ] {
        let sp = SystemParams {
            nodes,
            cpus_per_node: cpn,
            processes: procs,
            threads_per_process: threads,
        };
        let run = session.evaluate(&Scenario::new(sp)).expect("evaluate");
        let t = run.predicted_time;
        let base = *baseline.get_or_insert(t);
        println!(
            "{nodes:>6} {procs:>8} {threads:>8} {t:>12.4} {:>9.2}",
            base / t
        );
    }

    println!("\nExpected shape: ranks split the k-point loop, threads split each");
    println!("k-point's FFT work; the hybrid rows beat flat MPI at equal core");
    println!("counts once the allreduce cost of extra ranks outweighs thread");
    println!("scaling losses.");
}
