//! Kernel 6 end to end — the paper's running example (Figures 3 and 4)
//! plus the derived prediction-accuracy experiment E1 of EXPERIMENTS.md.
//!
//! 1. run the *real* Livermore kernel 6 (Rust port) at a calibration size
//!    and derive seconds-per-flop (the paper's profiling step),
//! 2. build the UML model of Figure 3(c) with cost function `FK6`,
//! 3. transform it to C++ (Figure 4(c)) and to the executable IR,
//! 4. predict the runtime at *other* problem sizes and compare with
//!    fresh measurements of the real kernel.
//!
//! Run with: `cargo run --release --example kernel6`

use prophet_core::{Scenario, Session};
use prophet_workloads::lfk::{calibrate_kernel6, kernel6_flops, lfk_kernel6};
use prophet_workloads::models::kernel6_model;
use std::time::Instant;

fn measure(n: usize, m: usize) -> f64 {
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| 0.5 / (i % 97 + 1) as f64).collect();
    lfk_kernel6(&mut w, &b, n, 1); // warm-up
    let start = Instant::now();
    lfk_kernel6(&mut w, &b, n, m);
    let secs = start.elapsed().as_secs_f64();
    std::hint::black_box(&w);
    secs
}

fn main() {
    // --- 1. Calibrate (profiling step of Section 3). -------------------
    let cal = calibrate_kernel6(600, 20);
    println!(
        "calibration at n={} m={}: {:.3} ms, {:.3e} s/flop",
        cal.n,
        cal.m,
        cal.seconds * 1e3,
        cal.seconds_per_flop
    );

    // --- 2/3. Model + transformation. ----------------------------------
    let model = kernel6_model(600, 20, cal.seconds_per_flop);
    let session = Session::new(model).expect("compile");
    println!("\nFigure 4(c) shape in generated C++:");
    for line in session
        .cpp()
        .program
        .lines()
        .filter(|l| l.contains("kernel6"))
    {
        println!("  {}", line.trim());
    }

    // --- 4. Predict vs measure across sizes (experiment E1). -----------
    println!(
        "\n{:>6} {:>4} {:>14} {:>14} {:>8}",
        "n", "m", "predicted(s)", "measured(s)", "err%"
    );
    for &(n, m) in &[
        (200usize, 20usize),
        (400, 20),
        (600, 20),
        (800, 10),
        (1200, 5),
    ] {
        let session = Session::new(kernel6_model(n, m, cal.seconds_per_flop)).expect("compile");
        let predicted = session
            .evaluate(&Scenario::default())
            .expect("evaluate")
            .predicted_time;
        let measured = measure(n, m);
        let err = (predicted - measured).abs() / measured * 100.0;
        println!("{n:>6} {m:>4} {predicted:>14.6} {measured:>14.6} {err:>7.1}%");
        let _ = kernel6_flops(n, m);
    }
    println!("\n(The model is a single-coefficient linear-in-flops cost function, so");
    println!(" errors grow where cache effects kick in — exactly the fidelity the");
    println!(" paper's rough-estimation workflow targets.)");
}
