//! Quickstart: the full Performance Prophet pipeline on a small model.
//!
//! Builds a UML performance model programmatically (the stand-in for
//! Teuta's drawing space), checks it, transforms it to C++ (the PMP of
//! the paper's Figure 8) *and* to the executable IR, evaluates it by
//! simulation, and prints the predicted time plus an ASCII timeline.
//!
//! Run with: `cargo run --release --example quickstart`

use prophet_core::{mpi_grid, Backend, Scenario, Session, SweepConfig};
use prophet_machine::SystemParams;
use prophet_trace::{render_timeline, TraceAnalysis};
use prophet_uml::{ModelBuilder, VarType};

fn main() {
    // --- 1. Specify the performance model (Figure 1/3 style). ---------
    let mut b = ModelBuilder::new("quickstart");
    b.global("WORK", VarType::Double, Some("2.0"));
    b.function("FInit", &[], "0.25");
    b.function("FSolve", &["w"], "w / P"); // scales with process count
    b.function("FWrite", &[], "0.5");

    let main = b.main_diagram();
    let start = b.initial(main, "start");
    let init = b.action(main, "InitPhase", "FInit()");
    let solve = b.action(main, "SolvePhase", "FSolve(WORK)");
    let write = b.action(main, "WriteResults", "FWrite()");
    let end = b.final_node(main, "end");
    b.flow(main, start, init);
    b.flow(main, init, solve);
    b.flow(main, solve, write);
    b.flow(main, write, end);

    // --- 2. Compile once: check → transform (both targets). -----------
    let session = Session::new(b.build()).expect("compile");

    println!("=== model checker ===");
    if session.diagnostics().is_empty() {
        println!("no findings");
    }
    for d in session.diagnostics() {
        println!("{d}");
    }

    println!("\n=== generated C++ (PMP, Figure 8 shape) ===");
    println!("{}", session.cpp().model_text());

    // --- 3. Evaluate a scenario (the SP of Figure 2). -----------------
    let run = session
        .evaluate(&Scenario::new(SystemParams::flat_mpi(4, 1)))
        .expect("evaluate");

    println!("=== prediction ===");
    println!("predicted execution time: {:.6} s", run.predicted_time);
    println!(
        "events processed: {}, processes completed: {}",
        run.report.events_processed, run.report.processes_completed
    );

    let analysis = TraceAnalysis::analyze(&run.trace);
    println!("\n=== element profile (Charts data) ===");
    for p in &analysis.profile {
        println!(
            "{:<14} count={:<3} total={:.4}s mean={:.4}s",
            p.element, p.count, p.total_time, p.mean_time
        );
    }

    println!("\n=== timeline (Animator stand-in) ===");
    print!("{}", render_timeline(&analysis, 4, 64));

    println!("\n=== trace file (TF) head ===");
    for line in run.trace.to_text().lines().take(8) {
        println!("{line}");
    }

    // --- 4. Sweep an SP grid on the analytic backend. ------------------
    // Closed-form evaluation of the same compiled program: no DES
    // kernel, no trace — the fast engine for many-point sweeps, and it
    // agrees with the simulation within the conformance contract
    // (exactly, for this communication-free model).
    let report = session.sweep_with(
        &mpi_grid(&[1, 2, 4, 8], 1),
        &SweepConfig {
            backend: Backend::Analytic,
            ..Default::default()
        },
        |_, _| {},
    );
    println!("\n=== analytic SP sweep ===");
    for point in &report.points {
        println!(
            "P={:<3} predicted {:.6} s",
            point.sp.processes,
            point.time().expect("sweep point evaluates")
        );
    }
}
