//! SP sweep: predict a model across machine configurations (experiment
//! E4) — the "influence design decisions without touching the cluster"
//! workflow the paper motivates.
//!
//! Sweeps the Jacobi stencil model over node counts with both the default
//! Gigabit-class interconnect and a fast InfiniBand-class one, printing a
//! speedup table. The model is compiled once into a `Session`; every
//! configuration then reuses the immutable artifacts across scoped
//! worker threads.
//!
//! Run with: `cargo run --release --example cluster_sweep`

use prophet_core::{mpi_grid, Session, SweepConfig};
use prophet_machine::CommParams;
use prophet_trace::analysis::speedup_series;
use prophet_workloads::models::jacobi_model;

fn main() {
    let nodes = [1usize, 2, 4, 8, 16, 32];
    // Compile once; both interconnect sweeps reuse the same artifacts.
    let session = Session::new(jacobi_model(2_000_000, 20, 2e-9)) // ~4 ms/sweep serial
        .expect("compile");

    for (label, comm) in [
        ("gigabit-class interconnect", CommParams::default()),
        ("fast interconnect", CommParams::fast_interconnect()),
    ] {
        let config = SweepConfig {
            comm,
            ..Default::default()
        };
        let report = session.sweep_with(&mpi_grid(&nodes, 1), &config, |_, _| {});

        println!("=== Jacobi 2M points × 20 sweeps — {label} ===");
        println!(
            "{:>6} {:>12} {:>9} {:>11}",
            "P", "time(s)", "speedup", "efficiency"
        );
        let runs: Vec<(usize, f64)> = report
            .points
            .iter()
            .map(|r| (r.sp.processes, r.time().expect("run ok")))
            .collect();
        let series = speedup_series(&runs);
        for ((p, t), (_, s)) in runs.iter().zip(&series.points) {
            println!("{p:>6} {t:>12.6} {s:>9.2} {:>10.1}%", s / *p as f64 * 100.0);
        }
        println!();
    }

    println!("Expected shape: near-linear speedup while compute dominates, then");
    println!("communication (halo latency + allreduce) flattens the curve — the");
    println!("crossover arrives later on the faster interconnect.");
}
