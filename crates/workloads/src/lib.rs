//! # prophet-workloads
//!
//! Workloads for the reproduction's experiments (DESIGN.md §4):
//!
//! * [`lfk`] — Rust ports of **Livermore Fortran kernels** (McMahon,
//!   UCRL-53745), including kernel 6 — the paper's running example
//!   (Figure 3) — plus an in-process calibration timer that plays the
//!   role of the profiling step ("we may identify, for an existing
//!   program, code blocks that determine the overall program performance
//!   by using a profiling tool"),
//! * [`models`] — ready-made UML performance models:
//!   - [`models::kernel6_model`] — Figure 3(c),
//!   - [`models::sample_model`] — the Figure 7/8 hierarchical sample
//!     model (A1, GV-branch, SA{SA1, SA2}, A2, A4, globals GV/P, code
//!     fragment, cost functions FA1…FSA2),
//!   - [`models::jacobi_model`] — MPI halo-exchange stencil,
//!   - [`models::pipeline_model`] — message pipeline,
//!   - [`models::master_worker_model`] — scatter/compute/gather,
//!   - [`models::lapw0_model`] — the LAPW0-like hybrid MPI+OpenMP phase
//!     structure used by the companion validation (CISIS 2008), built
//!     synthetically per the substitution table.

pub mod lfk;
pub mod models;

pub use lfk::{
    calibrate_kernel6, lfk_kernel1, lfk_kernel11, lfk_kernel12, lfk_kernel2, lfk_kernel3,
    lfk_kernel4, lfk_kernel5, lfk_kernel6, lfk_kernel7, lfk_kernel9,
};
pub use models::{
    jacobi_model, kernel6_model, lapw0_model, master_worker_model, pipeline_model, sample_model,
};
