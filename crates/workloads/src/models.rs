//! Ready-made UML performance models for the experiments.

use prophet_core::{Scenario, Session};
use prophet_machine::SystemParams;
use prophet_uml::{Model, ModelBuilder, TagValue, VarType};

/// Figure 3(c): the kernel-6 performance model — one `<<action+>>` whose
/// cost function `FK6` models `TK6`.
///
/// `seconds_per_flop` comes from calibration
/// ([`crate::lfk::calibrate_kernel6`]); `n`/`m` are the Fortran loop
/// bounds.
pub fn kernel6_model(n: usize, m: usize, seconds_per_flop: f64) -> Model {
    let mut b = ModelBuilder::new("kernel6");
    // TK6 = FK6(n, m): 2 flops × m × n(n−1)/2, times seconds/flop.
    b.function(
        "FK6",
        &["n", "m"],
        &format!("{seconds_per_flop} * 2 * m * n * (n - 1) / 2"),
    );
    b.global("KN", VarType::Int, Some(&n.to_string()));
    b.global("KM", VarType::Int, Some(&m.to_string()));
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let k6 = b.action(main, "Kernel6", "FK6(KN, KM)");
    let f = b.final_node(main, "end");
    b.flow(main, i, k6);
    b.flow(main, k6, f);
    b.build()
}

/// The Figure 7/8 sample model of a hypothetical program.
///
/// Main diagram: `start → A1 → ◇(GV) → {SA | A2} → merge → A4 → end`,
/// where `SA` is an `<<activity+>>` containing `SA1 → SA2`. Globals `GV`
/// and `P` are set by the code fragment associated with `A1`
/// (Figure 7(b)); each element has a cost function `FA1 … FSA2`, with
/// `FSA2(pid)` parameterized by the process id exactly as in
/// Figure 8(a).
pub fn sample_model() -> Model {
    let mut b = ModelBuilder::new("sample");
    // Globals (Figure 8(a) lines 24–25). `P` doubles as a cost parameter.
    b.global("GV", VarType::Int, Some("0"));
    b.global("P", VarType::Int, Some("4"));
    // Cost functions (Figure 8(a) lines 31–54): "these cost functions …
    // serve the purpose of illustration of various forms of expressing
    // cost functions".
    b.function("FA1", &[], "0.04 + 0.01 * P");
    b.function("FA2", &[], "0.2");
    b.function("FA4", &[], "0.05 * P");
    b.function("FSA1", &[], "0.5");
    b.function("FSA2", &["pid"], "0.1 + 0.02 * pid");

    let main = b.main_diagram();
    let sub = b.diagram("SA");

    let start = b.initial(main, "start");
    let a1 = b.action(main, "A1", "FA1()");
    // Figure 7(b): the fragment associated with A1 assigns GV and P.
    b.attach_code(a1, "GV = 1; P = 4;");
    let dec = b.decision(main, "decideGV");
    let sa = b.call_activity(main, "SA", sub);
    let a2 = b.action(main, "A2", "FA2()");
    let mrg = b.merge(main, "merge");
    let a4 = b.action(main, "A4", "FA4()");
    let end = b.final_node(main, "end");

    b.flow(main, start, a1);
    b.flow(main, a1, dec);
    b.guarded_flow(main, dec, sa, "GV == 1");
    b.guarded_flow(main, dec, a2, "else");
    b.flow(main, sa, mrg);
    b.flow(main, a2, mrg);
    b.flow(main, mrg, a4);
    b.flow(main, a4, end);

    let sa1 = b.action(sub, "SA1", "FSA1()");
    let sa2 = b.action(sub, "SA2", "FSA2(pid)");
    b.flow(sub, sa1, sa2);

    b.build()
}

/// A 1-D Jacobi stencil with halo exchange: `iters` sweeps over an
/// `n`-point grid block-distributed over `P` ranks, allreduce for the
/// convergence norm each sweep.
///
/// `seconds_per_point` is the per-point compute cost.
pub fn jacobi_model(n: usize, iters: usize, seconds_per_point: f64) -> Model {
    let mut b = ModelBuilder::new("jacobi");
    b.function(
        "FSweep",
        &["points"],
        &format!("{seconds_per_point} * points"),
    );
    b.global("GN", VarType::Int, Some(&n.to_string()));

    let main = b.main_diagram();
    let body = b.diagram("sweep");

    let i = b.initial(main, "start");
    let init = b.action(main, "InitGrid", "FSweep(GN / P)");
    let lp = b.loop_activity(main, "TimeLoop", body, &iters.to_string());
    let fin = b.action(main, "Finalize", "FSweep(GN / P) / 10");
    let f = b.final_node(main, "end");
    b.flow(main, i, init);
    b.flow(main, init, lp);
    b.flow(main, lp, fin);
    b.flow(main, fin, f);

    // Sweep body: compute, exchange halos with neighbours, allreduce.
    let compute = b.action(body, "Compute", "FSweep(GN / P)");
    let d_up = b.decision(body, "hasUp");
    let send_up = b.mpi(
        body,
        "SendUp",
        "send",
        &[
            ("dest", TagValue::Expr("pid - 1".into())),
            ("size", TagValue::Expr("8 * 1".into())),
            ("tag", TagValue::Int(1)),
        ],
    );
    let m_up = b.merge(body, "mergeUp");
    let d_dn = b.decision(body, "hasDown");
    let send_dn = b.mpi(
        body,
        "SendDown",
        "send",
        &[
            ("dest", TagValue::Expr("pid + 1".into())),
            ("size", TagValue::Expr("8 * 1".into())),
            ("tag", TagValue::Int(2)),
        ],
    );
    let m_dn = b.merge(body, "mergeDown");
    let d_rup = b.decision(body, "recvUpQ");
    let recv_up = b.mpi(
        body,
        "RecvUp",
        "recv",
        &[
            ("src", TagValue::Expr("pid - 1".into())),
            ("tag", TagValue::Int(2)),
        ],
    );
    let m_rup = b.merge(body, "mergeRecvUp");
    let d_rdn = b.decision(body, "recvDownQ");
    let recv_dn = b.mpi(
        body,
        "RecvDown",
        "recv",
        &[
            ("src", TagValue::Expr("pid + 1".into())),
            ("tag", TagValue::Int(1)),
        ],
    );
    let m_rdn = b.merge(body, "mergeRecvDown");
    let norm = b.mpi(
        body,
        "NormAllreduce",
        "allreduce",
        &[("size", TagValue::Expr("8".into()))],
    );

    b.flow(body, compute, d_up);
    b.guarded_flow(body, d_up, send_up, "pid > 0");
    b.guarded_flow(body, d_up, m_up, "else");
    b.flow(body, send_up, m_up);
    b.flow(body, m_up, d_dn);
    b.guarded_flow(body, d_dn, send_dn, "pid < P - 1");
    b.guarded_flow(body, d_dn, m_dn, "else");
    b.flow(body, send_dn, m_dn);
    b.flow(body, m_dn, d_rup);
    b.guarded_flow(body, d_rup, recv_up, "pid > 0");
    b.guarded_flow(body, d_rup, m_rup, "else");
    b.flow(body, recv_up, m_rup);
    b.flow(body, m_rup, d_rdn);
    b.guarded_flow(body, d_rdn, recv_dn, "pid < P - 1");
    b.guarded_flow(body, d_rdn, m_rdn, "else");
    b.flow(body, recv_dn, m_rdn);
    b.flow(body, m_rdn, norm);

    b.build()
}

/// A `stages`-deep message pipeline streaming `items` items: rank 0
/// produces, ranks 1..P−1 receive from the left, process, forward right.
pub fn pipeline_model(items: usize, per_item_cost: f64, item_bytes: u64) -> Model {
    let mut b = ModelBuilder::new("pipeline");
    b.function("FItem", &[], &format!("{per_item_cost}"));
    let main = b.main_diagram();
    let body = b.diagram("item");
    let i = b.initial(main, "start");
    let lp = b.loop_activity(main, "Stream", body, &items.to_string());
    let f = b.final_node(main, "end");
    b.flow(main, i, lp);
    b.flow(main, lp, f);

    // Item body: if not first rank, receive; compute; if not last, send.
    let d_in = b.decision(body, "notFirst");
    let rx = b.mpi(
        body,
        "RecvItem",
        "recv",
        &[
            ("src", TagValue::Expr("pid - 1".into())),
            ("tag", TagValue::Int(0)),
        ],
    );
    let m_in = b.merge(body, "mergeIn");
    let work = b.action(body, "Process", "FItem()");
    let d_out = b.decision(body, "notLast");
    let tx = b.mpi(
        body,
        "SendItem",
        "send",
        &[
            ("dest", TagValue::Expr("pid + 1".into())),
            ("size", TagValue::Expr(item_bytes.to_string())),
            ("tag", TagValue::Int(0)),
        ],
    );
    let m_out = b.merge(body, "mergeOut");

    // `d_in` is the body's entry (unique node without incoming edges).
    b.guarded_flow(body, d_in, rx, "pid > 0");
    b.guarded_flow(body, d_in, m_in, "else");
    b.flow(body, rx, m_in);
    b.flow(body, m_in, work);
    b.flow(body, work, d_out);
    b.guarded_flow(body, d_out, tx, "pid < P - 1");
    b.guarded_flow(body, d_out, m_out, "else");
    b.flow(body, tx, m_out);

    b.build()
}

/// Master/worker: rank 0 scatters `task_bytes`-sized work descriptors,
/// every rank computes its (pid-skewed) share, then a gather and a final
/// reduce collect results.
pub fn master_worker_model(tasks: usize, per_task_cost: f64, task_bytes: u64) -> Model {
    let mut b = ModelBuilder::new("master_worker");
    b.function(
        "FWork",
        &["t"],
        &format!("{per_task_cost} * t * (1 + 0.1 * pid)"),
    );
    b.global("TASKS", VarType::Int, Some(&tasks.to_string()));
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let scatter = b.mpi(
        main,
        "ScatterTasks",
        "scatter",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr(format!("{task_bytes} * TASKS"))),
        ],
    );
    let work = b.action(main, "Work", "FWork(TASKS / P)");
    let gather = b.mpi(
        main,
        "GatherResults",
        "gather",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr(format!("{task_bytes} * TASKS"))),
        ],
    );
    let reduce = b.mpi(
        main,
        "FinalReduce",
        "reduce",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr("8".into())),
        ],
    );
    let f = b.final_node(main, "end");
    b.flow(main, i, scatter);
    b.flow(main, scatter, work);
    b.flow(main, work, gather);
    b.flow(main, gather, reduce);
    b.flow(main, reduce, f);
    b.build()
}

/// A LAPW0-like hybrid MPI+OpenMP model (companion validation, CISIS
/// 2008; synthetic per the DESIGN.md substitution table).
///
/// Phase structure: setup, then a loop over `kpoints` in which each rank
/// computes its k-point share inside an OpenMP `<<parallel+>>` region and
/// the ranks allreduce the potential, then a gather of eigenvalues.
pub fn lapw0_model(atoms: usize, kpoints: usize, per_atom_cost: f64) -> Model {
    let mut b = ModelBuilder::new("lapw0");
    b.function("FSetup", &["a"], &format!("{per_atom_cost} * a * 2"));
    // Per k-point cost: atoms²-ish work divided over threads.
    b.function(
        "FKpoint",
        &["a"],
        &format!("{per_atom_cost} * a * a / 50 / threads"),
    );
    b.global("ATOMS", VarType::Int, Some(&atoms.to_string()));

    let main = b.main_diagram();
    let kloop = b.diagram("kpointLoop");
    let omp = b.diagram("ompRegion");

    let i = b.initial(main, "start");
    let setup = b.action(main, "Setup", "FSetup(ATOMS)");
    let lp = b.loop_activity(main, "KpointLoop", kloop, &format!("{kpoints} / P"));
    let gather = b.mpi(
        main,
        "GatherEig",
        "gather",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr("8 * ATOMS".into())),
        ],
    );
    let f = b.final_node(main, "end");
    b.flow(main, i, setup);
    b.flow(main, setup, lp);
    b.flow(main, lp, gather);
    b.flow(main, gather, f);

    // k-point body: OpenMP region + allreduce.
    let region = b.parallel_activity(kloop, "FftRegion", omp, "threads");
    let sync = b.mpi(
        kloop,
        "PotAllreduce",
        "allreduce",
        &[("size", TagValue::Expr("8 * ATOMS".into()))],
    );
    b.flow(kloop, region, sync);

    b.action(omp, "FftWork", "FKpoint(ATOMS)");

    b.build()
}

/// A rounds-based task farm (master–worker shaped, promoted from the
/// `tests/model_gen.rs` generator vocabulary): each of `rounds` rounds
/// broadcasts `task_bytes` of work descriptors from rank 0, every rank
/// computes a pid-skewed share whose cost also grows with an
/// accumulated steering state `GV`, and a reduce collects partials.
///
/// Differs from [`master_worker_model`] in that the farm is iterative
/// (a `<<loop+>>` of rounds rather than one scatter/gather) and
/// stateful: the code fragment attached to the steering action bumps
/// `GV` every round, so later rounds are costlier — the generator's
/// `Stateful` segment as a named workload.
pub fn task_farm_model(rounds: usize, per_task_cost: f64, task_bytes: u64) -> Model {
    let mut b = ModelBuilder::new("task_farm");
    b.function(
        "FTask",
        &["r"],
        &format!("{per_task_cost} * r * (1 + 0.05 * pid)"),
    );
    b.function("FSteer", &[], &format!("{per_task_cost} * (1 + GV) / 4"));
    b.global("GV", VarType::Int, Some("0"));
    let main = b.main_diagram();
    let body = b.diagram("round");

    let i = b.initial(main, "start");
    let lp = b.loop_activity(main, "Farm", body, &rounds.to_string());
    let gather = b.mpi(
        main,
        "GatherResults",
        "gather",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr(task_bytes.to_string())),
        ],
    );
    let f = b.final_node(main, "end");
    b.flow(main, i, lp);
    b.flow(main, lp, gather);
    b.flow(main, gather, f);

    // Round body: broadcast descriptors, steer (stateful), work, reduce.
    let bcast = b.mpi(
        body,
        "BcastTasks",
        "broadcast",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr(task_bytes.to_string())),
        ],
    );
    let steer = b.action(body, "Steer", "FSteer()");
    b.attach_code(steer, "GV = GV + 1;");
    let work = b.action(body, "Work", "FTask(64 / P)");
    let reduce = b.mpi(
        body,
        "ReducePartials",
        "reduce",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr("8".into())),
        ],
    );
    b.flow(body, bcast, steer);
    b.flow(body, steer, work);
    b.flow(body, work, reduce);

    b.build()
}

/// A pipeline whose per-item work branches on rank parity (the
/// generator's `Branch` segment promoted into [`pipeline_model`]'s
/// streaming skeleton): even-rank stages do light filtering, odd-rank
/// stages do the expensive transform, so the pipeline's steady-state
/// rate is set by the odd stages.
pub fn branching_pipeline_model(items: usize, per_item_cost: f64, item_bytes: u64) -> Model {
    let mut b = ModelBuilder::new("branching_pipeline");
    b.function("FLight", &[], &format!("{per_item_cost} / 4"));
    b.function("FHeavy", &[], &format!("{per_item_cost}"));
    let main = b.main_diagram();
    let body = b.diagram("item");
    let i = b.initial(main, "start");
    let lp = b.loop_activity(main, "Stream", body, &items.to_string());
    let f = b.final_node(main, "end");
    b.flow(main, i, lp);
    b.flow(main, lp, f);

    // Item body: receive from the left (unless first), branch on rank
    // parity for the processing cost, forward right (unless last).
    let d_in = b.decision(body, "notFirst");
    let rx = b.mpi(
        body,
        "RecvItem",
        "recv",
        &[
            ("src", TagValue::Expr("pid - 1".into())),
            ("tag", TagValue::Int(0)),
        ],
    );
    let m_in = b.merge(body, "mergeIn");
    let d_par = b.decision(body, "parity");
    let filt = b.action(body, "Filter", "FLight()");
    let xform = b.action(body, "Transform", "FHeavy()");
    let m_par = b.merge(body, "mergeParity");
    let d_out = b.decision(body, "notLast");
    let tx = b.mpi(
        body,
        "SendItem",
        "send",
        &[
            ("dest", TagValue::Expr("pid + 1".into())),
            ("size", TagValue::Expr(item_bytes.to_string())),
            ("tag", TagValue::Int(0)),
        ],
    );
    let m_out = b.merge(body, "mergeOut");

    b.guarded_flow(body, d_in, rx, "pid > 0");
    b.guarded_flow(body, d_in, m_in, "else");
    b.flow(body, rx, m_in);
    b.flow(body, m_in, d_par);
    b.guarded_flow(body, d_par, filt, "pid % 2 == 0");
    b.guarded_flow(body, d_par, xform, "else");
    b.flow(body, filt, m_par);
    b.flow(body, xform, m_par);
    b.flow(body, m_par, d_out);
    b.guarded_flow(body, d_out, tx, "pid < P - 1");
    b.guarded_flow(body, d_out, m_out, "else");
    b.flow(body, tx, m_out);

    b.build()
}

/// A periodic halo exchange on a ring (the generator's `RingShift`
/// segment as a named workload): `iters` steps, each computing a
/// `per_step_cost` update, shifting `cell_bytes` of boundary cells to
/// `(pid + 1) % P` while receiving from `(pid − 1 + P) % P` — guarded
/// by `P > 1` so the model stays valid on one rank — then an allreduce
/// for the step norm.
///
/// Unlike [`jacobi_model`]'s open-ended up/down halo, the ring wraps:
/// every rank sends and receives exactly one message per step, so the
/// communication load is perfectly balanced at any `P`.
pub fn halo_ring_model(iters: usize, per_step_cost: f64, cell_bytes: u64) -> Model {
    let mut b = ModelBuilder::new("halo_ring");
    b.function("FStep", &[], &format!("{per_step_cost} * (1 + 0.02 * pid)"));
    let main = b.main_diagram();
    let body = b.diagram("step");
    let i = b.initial(main, "start");
    let lp = b.loop_activity(main, "TimeLoop", body, &iters.to_string());
    let f = b.final_node(main, "end");
    b.flow(main, i, lp);
    b.flow(main, lp, f);

    // Step body: compute, ring shift (skipped entirely at P = 1), norm.
    let compute = b.action(body, "Compute", "FStep()");
    let d_ring = b.decision(body, "ring");
    let tx = b.mpi(
        body,
        "RingSend",
        "send",
        &[
            ("dest", TagValue::Expr("(pid + 1) % P".into())),
            ("size", TagValue::Expr(cell_bytes.to_string())),
            ("tag", TagValue::Int(3)),
        ],
    );
    let rx = b.mpi(
        body,
        "RingRecv",
        "recv",
        &[
            ("src", TagValue::Expr("(pid - 1 + P) % P".into())),
            ("tag", TagValue::Int(3)),
        ],
    );
    let m_ring = b.merge(body, "mergeRing");
    let norm = b.mpi(
        body,
        "NormAllreduce",
        "allreduce",
        &[("size", TagValue::Expr("8".into()))],
    );
    b.flow(body, compute, d_ring);
    b.guarded_flow(body, d_ring, tx, "P > 1");
    b.guarded_flow(body, d_ring, m_ring, "else");
    b.flow(body, tx, rx);
    b.flow(body, rx, m_ring);
    b.flow(body, m_ring, norm);

    b.build()
}

/// A MapReduce-shaped job: rank 0 scatters `records` fixed-size input
/// records, every rank maps its share at a pid-skewed cost, pairs of
/// neighbouring ranks shuffle intermediate keys (the generator's
/// `PairExchange` segment: even ranks with an odd right neighbour send,
/// exactly those neighbours receive, so every send is matched at any
/// `P`), each rank combines locally, and a reduce folds the combined
/// partials into rank 0.
pub fn mapreduce_model(records: usize, per_record_cost: f64, record_bytes: u64) -> Model {
    let mut b = ModelBuilder::new("mapreduce");
    b.function(
        "FMap",
        &["r"],
        &format!("{per_record_cost} * r * (1 + 0.15 * pid)"),
    );
    b.function("FCombine", &["r"], &format!("{per_record_cost} * r / 8"));
    b.global("RECORDS", VarType::Int, Some(&records.to_string()));
    let main = b.main_diagram();

    let i = b.initial(main, "start");
    let scatter = b.mpi(
        main,
        "ScatterInput",
        "scatter",
        &[
            ("root", TagValue::Expr("0".into())),
            ("size", TagValue::Expr(format!("{record_bytes} * RECORDS"))),
        ],
    );
    let map = b.action(main, "Map", "FMap(RECORDS / P)");
    let d_tx = b.decision(main, "isSender");
    let tx = b.mpi(
        main,
        "ShuffleSend",
        "send",
        &[
            ("dest", TagValue::Expr("pid + 1".into())),
            (
                "size",
                TagValue::Expr(format!("{record_bytes} * RECORDS / 4")),
            ),
            ("tag", TagValue::Int(5)),
        ],
    );
    let m_tx = b.merge(main, "mergeSend");
    let d_rx = b.decision(main, "isReceiver");
    let rx = b.mpi(
        main,
        "ShuffleRecv",
        "recv",
        &[
            ("src", TagValue::Expr("pid - 1".into())),
            ("tag", TagValue::Int(5)),
        ],
    );
    let m_rx = b.merge(main, "mergeRecv");
    let combine = b.action(main, "Combine", "FCombine(RECORDS / P)");
    let reduce = b.mpi(
        main,
        "ReduceOutput",
        "reduce",
        &[
            ("root", TagValue::Expr("0".into())),
            (
                "size",
                TagValue::Expr(format!("{record_bytes} * RECORDS / P")),
            ),
        ],
    );
    let f = b.final_node(main, "end");

    b.flow(main, i, scatter);
    b.flow(main, scatter, map);
    b.flow(main, map, d_tx);
    b.guarded_flow(main, d_tx, tx, "pid % 2 == 0 && pid + 1 < P");
    b.guarded_flow(main, d_tx, m_tx, "else");
    b.flow(main, tx, m_tx);
    b.flow(main, m_tx, d_rx);
    b.guarded_flow(main, d_rx, rx, "pid % 2 == 1");
    b.guarded_flow(main, d_rx, m_rx, "else");
    b.flow(main, rx, m_rx);
    b.flow(main, m_rx, combine);
    b.flow(main, combine, reduce);
    b.flow(main, reduce, f);

    b.build()
}

/// Convenience: compile `model` and pair it with the scenario for the
/// given flat-MPI size.
pub fn session_for(
    model: Model,
    nodes: usize,
    cpus_per_node: usize,
) -> Result<(Session, Scenario), prophet_core::Error> {
    let session = Session::new(model)?;
    let scenario = Scenario::new(SystemParams::flat_mpi(nodes, cpus_per_node));
    Ok((session, scenario))
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_check::{check_model, McfConfig};
    use prophet_core::mpi_grid;
    use prophet_machine::SystemParams;
    use prophet_trace::TraceAnalysis;

    fn run_default(model: Model) -> prophet_core::Evaluation {
        Session::new(model)
            .unwrap()
            .evaluate(&Scenario::default())
            .unwrap()
    }

    fn assert_checks(model: &Model) {
        let diags = check_model(model, &McfConfig::default());
        let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn all_models_pass_the_checker() {
        assert_checks(&kernel6_model(100, 10, 1e-9));
        assert_checks(&sample_model());
        assert_checks(&jacobi_model(1000, 5, 1e-8));
        assert_checks(&pipeline_model(10, 0.01, 1024));
        assert_checks(&master_worker_model(64, 0.01, 256));
        assert_checks(&lapw0_model(32, 8, 1e-4));
        assert_checks(&task_farm_model(8, 0.002, 512));
        assert_checks(&branching_pipeline_model(24, 0.004, 2048));
        assert_checks(&halo_ring_model(16, 0.003, 4096));
        assert_checks(&mapreduce_model(4096, 1e-6, 64));
    }

    #[test]
    fn task_farm_rounds_get_costlier() {
        // GV accumulates across rounds, so doubling the rounds more
        // than doubles the farm time (stateful steering, not a loop
        // of identical bodies).
        let time_for = |rounds| {
            let (session, scenario) =
                session_for(task_farm_model(rounds, 0.002, 512), 4, 1).unwrap();
            session.evaluate(&scenario).unwrap().predicted_time
        };
        let (t4, t8) = (time_for(4), time_for(8));
        assert!(t8 > 2.0 * t4, "t8 {t8} vs t4 {t4}: steering state lost");
    }

    #[test]
    fn branching_pipeline_odd_stages_dominate() {
        let (session, scenario) =
            session_for(branching_pipeline_model(24, 0.004, 2048), 4, 1).unwrap();
        let run = session.evaluate(&scenario).unwrap();
        let a = TraceAnalysis::analyze(&run.trace);
        let heavy = a.element("Transform").unwrap();
        let light = a.element("Filter").unwrap();
        assert!(
            heavy.max_time > light.max_time,
            "heavy {} !> light {}",
            heavy.max_time,
            light.max_time
        );
        // Steady-state rate is set by the heavy (odd) stages.
        assert!(run.predicted_time >= 24.0 * 0.004, "{}", run.predicted_time);
    }

    #[test]
    fn halo_ring_is_valid_at_any_p() {
        // The `P > 1` guard makes one rank legal; the wrap makes the
        // communication volume identical on every rank at P > 1.
        for p in [1usize, 2, 3, 5] {
            let (session, scenario) = session_for(halo_ring_model(16, 0.003, 4096), p, 1).unwrap();
            let run = session.evaluate(&scenario).unwrap();
            assert!(run.predicted_time > 0.0, "P={p}");
        }
    }

    #[test]
    fn mapreduce_shuffle_is_matched_at_odd_p() {
        // P = 3: rank 0 sends, rank 1 receives, rank 2 does neither —
        // the PairExchange guards keep every send matched.
        for p in [1usize, 2, 3, 4] {
            let (session, scenario) = session_for(mapreduce_model(4096, 1e-6, 64), p, 1).unwrap();
            let run = session.evaluate(&scenario).unwrap();
            assert!(run.predicted_time > 0.0, "P={p}");
        }
    }

    #[test]
    fn kernel6_prediction_matches_closed_form() {
        let spf = 2e-9;
        let (n, m) = (500usize, 10usize);
        let run = run_default(kernel6_model(n, m, spf));
        let expect = spf * (n * (n - 1) * m) as f64; // 2 flops × n(n−1)/2 × m
        assert!(
            (run.predicted_time - expect).abs() < 1e-12,
            "{} vs {expect}",
            run.predicted_time
        );
    }

    #[test]
    fn sample_model_takes_sa_branch() {
        // A1's fragment sets GV = 1 → SA runs, A2 does not (Figure 7).
        let run = run_default(sample_model());
        let a = TraceAnalysis::analyze(&run.trace);
        assert!(a.element("SA1").is_some());
        assert!(a.element("SA2").is_some());
        assert!(a.element("A2").is_none());
        // Predicted: FA1 + FSA1 + FSA2(0) + FA4 = 0.08 + 0.5 + 0.1 + 0.2 = 0.88
        assert!(
            (run.predicted_time - 0.88).abs() < 1e-9,
            "{}",
            run.predicted_time
        );
    }

    #[test]
    fn sample_model_cpp_matches_figure8_shape() {
        let session = Session::new(sample_model()).unwrap();
        let text = session.cpp().model_text();
        for needle in [
            "int GV = 0;",
            "int P = 4;",
            "double FA1(){ return 0.04 + 0.01 * P; };",
            "double FSA2(double pid){ return 0.1 + 0.02 * pid; };",
            "ActionPlus a1(\"A1\"",
            "a1.execute(uid, pid, tid, FA1());",
            "if (GV == 1) {",
            "{ // Activity SA",
            "sA1.execute(uid, pid, tid, FSA1());",
            "sA2.execute(uid, pid, tid, FSA2(pid));",
            "} else {",
            "a2.execute(uid, pid, tid, FA2());",
            "a4.execute(uid, pid, tid, FA4());",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn jacobi_scales_then_flattens() {
        let model = jacobi_model(200_000, 10, 1e-7); // 20ms/sweep serial
        let session = Session::new(model).unwrap();
        let report = session.sweep(&mpi_grid(&[1, 2, 4, 8], 1));
        let times: Vec<f64> = report.times().into_iter().map(Option::unwrap).collect();
        // Monotone speedup at these sizes.
        assert!(times[1] < times[0], "{times:?}");
        assert!(times[2] < times[1], "{times:?}");
        // Efficiency below 100%: communication costs bite.
        let speedup8 = times[0] / times[3];
        assert!(
            speedup8 < 8.0 && speedup8 > 2.0,
            "speedup {speedup8}, times {times:?}"
        );
    }

    #[test]
    fn pipeline_fills_and_drains() {
        let items = 20usize;
        let per_item = 0.01;
        let stages = 4usize;
        let (session, scenario) =
            session_for(pipeline_model(items, per_item, 1024), stages, 1).unwrap();
        let run = session.evaluate(&scenario).unwrap();
        let t = run.predicted_time;
        // Lower bound: (items + stages − 1) × per-item compute.
        let lower = (items + stages - 1) as f64 * per_item;
        assert!(t >= lower, "{t} < {lower}");
        // And far better than fully serial across stages.
        let serial = (items * stages) as f64 * per_item;
        assert!(t < serial * 0.75, "{t} vs serial {serial}");
    }

    #[test]
    fn master_worker_skew_determines_makespan() {
        let (session, scenario) = session_for(master_worker_model(64, 0.005, 128), 4, 1).unwrap();
        let run = session.evaluate(&scenario).unwrap();
        let a = TraceAnalysis::analyze(&run.trace);
        // The most skewed worker (pid 3, factor 1.3) dominates Work time.
        let work = a.element("Work").unwrap();
        let fastest = 0.005 * 16.0;
        assert!(work.max_time >= fastest * 1.29, "{}", work.max_time);
    }

    #[test]
    fn lapw0_hybrid_uses_threads_and_ranks() {
        // 2 ranks × 2 threads on 2 nodes with 2 cpus each.
        let sp = SystemParams {
            nodes: 2,
            cpus_per_node: 2,
            processes: 2,
            threads_per_process: 2,
        };
        let run = Session::new(lapw0_model(64, 8, 1e-5))
            .unwrap()
            .evaluate(&Scenario::new(sp))
            .unwrap();
        assert!(run.predicted_time > 0.0);
        let a = TraceAnalysis::analyze(&run.trace);
        // Thread workers appear with tid > 0 in the trace.
        assert!(
            run.trace.events.iter().any(|e| e.tid > 0),
            "no thread events"
        );
        assert!(a.element("FftWork").is_some());
    }

    #[test]
    fn lapw0_hybrid_speedup_shape() {
        let session = Session::new(lapw0_model(64, 16, 1e-5)).unwrap();
        let time_for =
            |sp: SystemParams| session.evaluate(&Scenario::new(sp)).unwrap().predicted_time;
        let t1 = time_for(SystemParams {
            nodes: 1,
            cpus_per_node: 1,
            processes: 1,
            threads_per_process: 1,
        });
        let t2 = time_for(SystemParams {
            nodes: 2,
            cpus_per_node: 1,
            processes: 2,
            threads_per_process: 1,
        });
        let t4 = time_for(SystemParams {
            nodes: 2,
            cpus_per_node: 2,
            processes: 2,
            threads_per_process: 2,
        });
        assert!(t2 < t1, "MPI scaling: {t2} !< {t1}");
        assert!(t4 < t2, "hybrid scaling: {t4} !< {t2}");
    }
}
