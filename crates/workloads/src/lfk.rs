//! Rust ports of Livermore Fortran kernels (McMahon, UCRL-53745) and the
//! calibration harness.
//!
//! Kernel 6 is the paper's running example (Figure 3(a)):
//!
//! ```fortran
//! DO  L = 1, M
//!  DO  i = 2, N
//!   DO  k = 1, i-1
//!    W(i) = W(i) + B(i,k) * W(i-k)
//!   END DO
//!  END DO
//! END DO
//! ```
//!
//! The ports keep the original loop structure (1-based indices shifted to
//! 0-based) so the flop counts used for cost-function calibration match
//! the literature.

use std::time::Instant;

/// Kernel 1 — hydro fragment: `X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11))`.
pub fn lfk_kernel1(x: &mut [f64], y: &[f64], z: &[f64], q: f64, r: f64, t: f64) {
    let n = x.len();
    assert!(
        y.len() >= n && z.len() >= n + 11,
        "kernel 1 needs y[n], z[n+11]"
    );
    for k in 0..n {
        x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    }
}

/// Kernel 3 — inner product.
pub fn lfk_kernel3(x: &[f64], z: &[f64]) -> f64 {
    assert_eq!(x.len(), z.len(), "kernel 3 needs equal lengths");
    let mut q = 0.0;
    for k in 0..x.len() {
        q += z[k] * x[k];
    }
    q
}

/// Kernel 5 — tri-diagonal elimination, below diagonal:
/// `X(i) = Z(i)*(Y(i) - X(i-1))`.
pub fn lfk_kernel5(x: &mut [f64], y: &[f64], z: &[f64]) {
    let n = x.len();
    assert!(y.len() >= n && z.len() >= n, "kernel 5 needs y[n], z[n]");
    for i in 1..n {
        x[i] = z[i] * (y[i] - x[i - 1]);
    }
}

/// Kernel 6 — general linear recurrence equations (the paper's example).
///
/// `w` has length `n`; `b` is an `n × n` row-major matrix (only the lower
/// triangle is read). Repeated `m` times like the Fortran original.
pub fn lfk_kernel6(w: &mut [f64], b: &[f64], n: usize, m: usize) {
    assert!(w.len() >= n, "kernel 6 needs w[n]");
    assert!(b.len() >= n * n, "kernel 6 needs b[n*n]");
    for _l in 0..m {
        for i in 1..n {
            let mut acc = w[i];
            for k in 0..i {
                acc += b[i * n + k] * w[i - k - 1];
            }
            w[i] = acc;
        }
    }
}

/// Kernel 2 — excerpt from an incomplete Cholesky conjugate gradient
/// (ICCG): pairwise combine over a shrinking index range.
pub fn lfk_kernel2(x: &mut [f64], v: &[f64]) {
    let n = x.len();
    assert!(v.len() >= n, "kernel 2 needs v[n]");
    let mut ipntp = 0usize;
    let mut ipnt = n;
    // Each pass halves the active range, combining pairs — the classic
    // log-depth reduction structure of the original kernel.
    while ipnt - ipntp > 1 {
        let len = ipnt - ipntp;
        let half = len / 2;
        for i in 0..half {
            let a = ipntp + 2 * i;
            let b = (a + 1).min(n - 1);
            x[ipntp + i] = x[a] - v[a] * x[b];
        }
        ipnt = ipntp + half;
        ipntp = 0;
        if half <= 1 {
            break;
        }
    }
}

/// Kernel 4 — banded linear equations: dot-products over strided bands.
pub fn lfk_kernel4(x: &mut [f64], y: &[f64], band: usize) {
    let n = x.len();
    assert!(y.len() >= n, "kernel 4 needs y[n]");
    if n < band + 1 {
        return;
    }
    for j in (band..n).step_by(band) {
        let mut temp = 0.0;
        let lo = j.saturating_sub(band);
        for k in lo..j {
            temp += x[k] * y[k];
        }
        x[j] -= temp;
    }
}

/// Kernel 9 — integrate predictors: long polynomial combine per element.
#[allow(clippy::too_many_arguments)]
pub fn lfk_kernel9(px: &mut [f64], stride: usize, c: &[f64; 10]) {
    assert!(stride >= 13, "kernel 9 rows need at least 13 columns");
    let rows = px.len() / stride;
    for i in 0..rows {
        let row = &mut px[i * stride..(i + 1) * stride];
        row[0] = c[0]
            + c[1]
                * (c[2] * row[4]
                    + c[3] * row[5]
                    + c[4] * row[6]
                    + c[5] * row[7]
                    + c[6] * row[8]
                    + c[7] * row[9]
                    + c[8] * row[10]
                    + c[9] * row[11])
            + row[2];
    }
}

/// Kernel 11 — first sum (prefix sum).
pub fn lfk_kernel11(x: &mut [f64], y: &[f64]) {
    let n = x.len();
    assert!(y.len() >= n, "kernel 11 needs y[n]");
    if n == 0 {
        return;
    }
    x[0] = y[0];
    for k in 1..n {
        x[k] = x[k - 1] + y[k];
    }
}

/// Kernel 12 — first difference.
pub fn lfk_kernel12(x: &mut [f64], y: &[f64]) {
    let n = x.len();
    assert!(y.len() > n, "kernel 12 needs y[n+1]");
    for k in 0..n {
        x[k] = y[k + 1] - y[k];
    }
}

/// Kernel 7 — equation of state fragment.
pub fn lfk_kernel7(x: &mut [f64], y: &[f64], z: &[f64], u: &[f64], r: f64, t: f64) {
    let n = x.len();
    assert!(
        y.len() >= n + 6 && z.len() >= n + 6 && u.len() >= n + 6,
        "kernel 7 bounds"
    );
    for k in 0..n {
        x[k] = u[k]
            + r * (z[k] + r * y[k])
            + t * (u[k + 3]
                + r * (u[k + 2] + r * u[k + 1])
                + t * (u[k + 6] + r * (u[k + 5] + r * u[k + 4])));
    }
}

/// Floating-point operation count of one kernel-6 sweep
/// (2 flops per inner iteration; Σ_{i=1}^{n-1} i inner iterations).
pub fn kernel6_flops(n: usize, m: usize) -> u64 {
    let inner = (n as u64) * (n as u64 - 1) / 2;
    2 * inner * m as u64
}

/// Calibration result for a kernel: the measured seconds-per-flop feeds
/// the model's cost function `FK6`.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Problem size used.
    pub n: usize,
    /// Outer repetitions used.
    pub m: usize,
    /// Measured wall time for the whole run (seconds).
    pub seconds: f64,
    /// Derived seconds per floating-point operation.
    pub seconds_per_flop: f64,
}

/// Measure kernel 6 on this host — the reproduction's stand-in for the
/// profiling step of Section 3.
pub fn calibrate_kernel6(n: usize, m: usize) -> Calibration {
    let mut w: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| 0.5 / (i % 97 + 1) as f64).collect();
    // Warm-up sweep (touch the pages, fill caches).
    lfk_kernel6(&mut w, &b, n, 1);
    let start = Instant::now();
    lfk_kernel6(&mut w, &b, n, m);
    let seconds = start.elapsed().as_secs_f64().max(1e-9);
    // Defeat dead-code elimination.
    std::hint::black_box(&w);
    let flops = kernel6_flops(n, m).max(1);
    Calibration {
        n,
        m,
        seconds,
        seconds_per_flop: seconds / flops as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel1_matches_formula() {
        let n = 64;
        let y: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let z: Vec<f64> = (0..n + 11).map(|i| (i as f64) * 0.5).collect();
        let mut x = vec![0.0; n];
        lfk_kernel1(&mut x, &y, &z, 1.0, 2.0, 3.0);
        for k in 0..n {
            let expect = 1.0 + y[k] * (2.0 * z[k + 10] + 3.0 * z[k + 11]);
            assert_eq!(x[k], expect, "k={k}");
        }
    }

    #[test]
    fn kernel3_is_dot_product() {
        let x = vec![1.0, 2.0, 3.0];
        let z = vec![4.0, 5.0, 6.0];
        assert_eq!(lfk_kernel3(&x, &z), 32.0);
    }

    #[test]
    fn kernel5_recurrence() {
        let mut x = vec![1.0, 0.0, 0.0];
        let y = vec![0.0, 2.0, 3.0];
        let z = vec![0.0, 10.0, 100.0];
        lfk_kernel5(&mut x, &y, &z);
        assert_eq!(x[1], 10.0 * (2.0 - 1.0));
        assert_eq!(x[2], 100.0 * (3.0 - 10.0));
    }

    #[test]
    fn kernel6_small_case_by_hand() {
        // n = 3, m = 1, b[i][k] = 1:
        // i=1: w1 += b*w0           → w1' = w1 + w0
        // i=2: w2 += b*w1' + b*w0   → w2' = w2 + w1' + w0
        let mut w = vec![1.0, 2.0, 3.0];
        let b = vec![1.0; 9];
        lfk_kernel6(&mut w, &b, 3, 1);
        assert_eq!(w, vec![1.0, 3.0, 7.0]);
    }

    #[test]
    fn kernel6_m_repeats() {
        let mut w1 = vec![1.0, 2.0, 3.0, 4.0];
        let mut w2 = w1.clone();
        let b = vec![0.25; 16];
        lfk_kernel6(&mut w1, &b, 4, 2);
        lfk_kernel6(&mut w2, &b, 4, 1);
        lfk_kernel6(&mut w2, &b, 4, 1);
        assert_eq!(w1, w2, "m=2 equals two m=1 sweeps");
    }

    #[test]
    fn kernel7_matches_formula_at_zero() {
        let n = 8;
        let y = vec![1.0; n + 6];
        let z = vec![2.0; n + 6];
        let u: Vec<f64> = (0..n + 6).map(|i| i as f64).collect();
        let mut x = vec![0.0; n];
        lfk_kernel7(&mut x, &y, &z, &u, 0.5, 0.25);
        let k = 0usize;
        let r = 0.5;
        let t = 0.25;
        let expect = u[k]
            + r * (z[k] + r * y[k])
            + t * (u[k + 3]
                + r * (u[k + 2] + r * u[k + 1])
                + t * (u[k + 6] + r * (u[k + 5] + r * u[k + 4])));
        assert_eq!(x[0], expect);
    }

    #[test]
    fn kernel2_pairwise_combine() {
        // Two elements: exactly one combine step.
        let mut x = vec![1.0, 2.0];
        let v = vec![0.5, 0.5];
        lfk_kernel2(&mut x, &v);
        assert_eq!(x[0], 1.0 - 0.5 * 2.0);

        // Larger input: terminates and changes the head of the array.
        let mut x: Vec<f64> = (1..=64).map(|i| i as f64).collect();
        let v = vec![0.25; 64];
        lfk_kernel2(&mut x, &v);
        assert!(x[0].is_finite());
        assert_ne!(x[0], 1.0);
    }

    #[test]
    fn kernel4_banded_update() {
        let mut x = vec![1.0; 12];
        let y = vec![2.0; 12];
        lfk_kernel4(&mut x, &y, 4);
        // x[4] -= sum(x[0..4] * y[0..4]) = 1 - 8 = -7.
        assert_eq!(x[4], -7.0);
        // Untouched below the band.
        assert_eq!(x[3], 1.0);
    }

    #[test]
    fn kernel9_polynomial_rows() {
        let stride = 13;
        let mut px = vec![1.0; stride * 3];
        let c = [0.5; 10];
        lfk_kernel9(&mut px, stride, &c);
        // row[0] = c0 + c1*(8 * 0.5 * 1.0) + row[2] = 0.5 + 0.5*4 + 1 = 3.5
        assert_eq!(px[0], 3.5);
        assert_eq!(px[stride], 3.5);
        // Other columns untouched.
        assert_eq!(px[1], 1.0);
    }

    #[test]
    fn kernel11_prefix_sum() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let mut x = vec![0.0; 4];
        lfk_kernel11(&mut x, &y);
        assert_eq!(x, vec![1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn kernel12_first_difference() {
        let y = vec![1.0, 4.0, 9.0, 16.0, 25.0];
        let mut x = vec![0.0; 4];
        lfk_kernel12(&mut x, &y);
        assert_eq!(x, vec![3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn kernel11_and_12_are_inverses() {
        let y: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let mut sums = vec![0.0; 32];
        lfk_kernel11(&mut sums, &y);
        // diff of [0, sums...] recovers y.
        let padded: Vec<f64> = std::iter::once(0.0).chain(sums.iter().copied()).collect();
        let mut back = vec![0.0; 32];
        lfk_kernel12(&mut back, &padded);
        for (a, b) in back.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn flop_count() {
        // n=4: inner iterations 1+2+3 = 6, ×2 flops, ×m.
        assert_eq!(kernel6_flops(4, 1), 12);
        assert_eq!(kernel6_flops(4, 10), 120);
    }

    #[test]
    fn calibration_is_positive_and_scales() {
        let c = calibrate_kernel6(128, 4);
        assert!(c.seconds > 0.0);
        assert!(c.seconds_per_flop > 0.0);
        assert!(
            c.seconds_per_flop < 1e-3,
            "implausibly slow: {}",
            c.seconds_per_flop
        );
    }
}
