//! Option strategies (`prop::option`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy producing `Option<T>` (3:1 biased toward `Some`).
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.chance(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `of(inner)`: optional values, usually present.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
