//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Canonical strategy for `T` (`any::<T>()`).
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);
