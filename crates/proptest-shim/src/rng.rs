//! The shim's random source: xoshiro256++ seeded via splitmix64.

/// Deterministic PRNG for strategy generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed the generator; any seed (including 0) is valid.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, bound)` via Lemire's multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform i64 in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::seed_from_u64(7);
        let mut b = TestRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::seed_from_u64(8);
        assert_ne!(TestRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn bounds_respected() {
        let mut r = TestRng::seed_from_u64(42);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
            let x = r.range_i64(-5, 5);
            assert!((-5..5).contains(&x));
            let f = r.range_f64(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
        }
    }
}
