//! Regex-lite string strategies.
//!
//! String literals act as strategies, as in real proptest, for the
//! pattern subset Prophet's tests use: a sequence of atoms, each either
//! `\PC` (any printable char) or a `[...]` character class, optionally
//! followed by `{m,n}` (or `{m}`) repetition; bare characters match
//! themselves.

use crate::rng::TestRng;
use crate::strategy::Strategy;

#[derive(Debug, Clone)]
enum Atom {
    /// `\PC`: any non-control char, mostly ASCII printable.
    AnyPrintable,
    /// `[...]`: one of the listed chars / ranges.
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') => {
                i += 3;
                Atom::AnyPrintable
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling `\\` in `{pattern}`"));
                i += 2;
                Atom::Literal(c)
            }
            '[' => {
                let mut members = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // `a-z` range when `-` sits between two members.
                    if chars.get(i + 1) == Some(&'-') && i + 2 < chars.len() && chars[i + 2] != ']'
                    {
                        members.push((c, chars[i + 2]));
                        i += 3;
                    } else {
                        members.push((c, c));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated `[` in `{pattern}`");
                i += 1; // skip ']'
                Atom::Class(members)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated `{{` in `{pattern}`"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition bound"),
                    hi.trim().parse().expect("bad repetition bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(members) => {
            let (lo, hi) = members[rng.range_usize(0, members.len())];
            char::from_u32(rng.range_i64(lo as i64, hi as i64 + 1) as u32)
                .expect("class range produced invalid char")
        }
        Atom::AnyPrintable => {
            if rng.chance(0.9) {
                char::from_u32(rng.range_i64(0x20, 0x7F) as u32).unwrap()
            } else {
                // A sprinkle of multi-byte scalars to stress parsers.
                loop {
                    let c = rng.range_i64(0xA0, 0x3000) as u32;
                    if let Some(c) = char::from_u32(c) {
                        if !c.is_control() {
                            return c;
                        }
                    }
                }
            }
        }
    }
}

/// Compiled pattern strategy backing `&str` literals.
pub struct StringStrategy {
    pieces: Vec<Piece>,
}

impl Strategy for StringStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.range_usize(piece.min, piece.max + 1);
            for _ in 0..n {
                out.push(generate_char(&piece.atom, rng));
            }
        }
        out
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringStrategy {
            pieces: parse_pattern(self),
        }
        .generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(1)
    }

    #[test]
    fn class_with_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut r);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn leading_atom_then_class() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z_][a-z0-9_.-]{0,8}".generate(&mut r);
            let first = s.chars().next().unwrap();
            assert!(first == '_' || first.is_ascii_lowercase(), "{s:?}");
            assert!(
                s.chars()
                    .skip(1)
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn printable_any() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "\\PC{0,80}".generate(&mut r);
            assert!(s.chars().count() <= 80);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn class_with_literal_specials() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-zA-Z0-9<>&\"' \t\n]{1,20}".generate(&mut r);
            assert!(!s.is_empty());
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "<>&\"' \t\n".contains(c)),
                "{s:?}"
            );
        }
    }
}
