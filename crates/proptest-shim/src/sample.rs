//! Sampling strategies (`prop::sample`).

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy picking uniformly from a fixed list.
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.choices[rng.range_usize(0, self.choices.len())].clone()
    }
}

/// `select(choices)`: one of the given values.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select from empty list");
    Select { choices }
}
