//! Offline stand-in for the [proptest](https://docs.rs/proptest) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! crate implements exactly the strategy surface Prophet's property
//! tests use: range strategies, tuples, `prop_map`/`prop_filter`/
//! `prop_recursive`, `prop_oneof!`, collection/option/sample modules, a
//! regex-lite string strategy, and the `proptest!` test macro.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the case number and
//!   the runner's deterministic seed; re-running reproduces it exactly.
//! * **Deterministic seeding.** Each test derives its seed from the test
//!   name (override with `PROPTEST_SEED=<u64>`), so CI runs are stable.
//! * **Case budget.** `PROPTEST_CASES=<u32>` overrides every test's
//!   configured case count, like the real crate — CI uses it to pin the
//!   model-fuzzing budget.
//! * **Regex strategies** support the subset used here: one or more
//!   atoms (`\PC` or a `[...]` character class) each followed by an
//!   optional `{m,n}` repetition.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod rng;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The subset of the proptest prelude the workspace uses.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a proptest case; fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: `{:?}` != `{:?}`", format!($($fmt)*), l, r);
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides are `{:?}`", l);
    }};
}

/// Define property tests: each `#[test] fn name(x in strategy, ...)`
/// becomes a standard test that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new_for(stringify!($name), config);
                runner.run(|__proptest_rng| {
                    #[allow(unused_imports)]
                    use $crate::strategy::Strategy as _;
                    $(let $arg = ($strategy).generate(__proptest_rng);)+
                    let mut __proptest_case =
                        move || -> $crate::test_runner::TestCaseResult {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                    __proptest_case()
                });
            }
        )*
    };
}
