//! The case runner behind the `proptest!` macro.

use crate::rng::TestRng;
use std::fmt;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case asked to be discarded (not counted).
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (discarded) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Drives the generated cases of one property test.
pub struct TestRunner {
    name: &'static str,
    seed: u64,
    config: ProptestConfig,
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl TestRunner {
    /// Runner for the named test. The seed derives from the test name so
    /// runs are deterministic; set `PROPTEST_SEED` to override. The case
    /// count comes from `config` unless `PROPTEST_CASES` is set — the
    /// same env knob the real crate honors, used by CI to pin an exact
    /// fuzzing budget without editing the test files.
    pub fn new_for(name: &'static str, mut config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name));
        if let Some(cases) = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            config.cases = cases;
        }
        Self { name, seed, config }
    }

    /// Run `case` over `config.cases` generated inputs; panics on the
    /// first failure with enough context to reproduce it.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> TestCaseResult) {
        let mut rng = TestRng::seed_from_u64(self.seed);
        let mut rejected = 0u32;
        for i in 0..self.config.cases {
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected < self.config.cases.max(16) * 4,
                        "[{}] too many rejected cases",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "[{}] case {}/{} failed (seed {:#x}): {}",
                    self.name,
                    i + 1,
                    self.config.cases,
                    self.seed,
                    msg
                ),
            }
        }
    }
}
