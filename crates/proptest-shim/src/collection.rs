//! Collection strategies (`prop::collection`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::Range;

/// Strategy for `Vec<T>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.range_usize(self.len.start, self.len.end);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, min..max)`: vectors of `element` values.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.end > len.start, "empty length range");
    VecStrategy { element, len }
}
