//! The `Strategy` trait and combinators.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard generated values failing `pred` (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Build a recursive strategy: `recurse` receives the
    /// strategy for the next-smaller level and returns the composite
    /// level. Levels bottom out at `self` after `depth` steps; each
    /// level picks leaf or recursion with equal probability, so
    /// `desired_size`/`expected_branch_size` are accepted for API
    /// compatibility but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            level = Union::new(vec![base.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}`: 1000 consecutive rejections", self.reason);
    }
}

/// Uniform choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of arms.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.range_usize(0, self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i64(self.start as i64, self.end as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_i64(*self.start() as i64, *self.end() as i64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        let s = (0u16..100).prop_map(|n| n * 2);
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!(v < 200 && v % 2 == 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut r = rng();
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 64, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        let mut max = 0;
        for _ in 0..200 {
            max = max.max(depth(&s.generate(&mut r)));
        }
        assert!(max >= 1, "recursion never taken");
        assert!(max <= 4, "depth bound exceeded: {max}");
    }

    #[test]
    fn filter_respects_predicate() {
        let s = (0u32..100).prop_filter("even", |n| n % 2 == 0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
