//! Inverse queries over the SP lattice: instead of sweeping a grid and
//! reading the table, ask for the answer — "cheapest `(nodes, cpus)`
//! meeting a 2 s deadline", "best speedup per cost under a budget".
//!
//! [`optimize`] searches the `(nodes, cpus)` lattice lazily and returns
//! the Pareto frontier over `(cost, predicted time)`, where
//! `cost(n, c) = per_node·n + per_cpu·n·c` is known exactly without any
//! evaluation. The search is a coarse-seed / bound-and-refine loop in
//! the branch-and-bound family, with the analytic backend as the cheap
//! oracle (PR 7's batch path, elaboration cache shared through the
//! [`Session`]):
//!
//! 1. **Seed**: every cpus column is evaluated at a coarse stride along
//!    the nodes axis (endpoints always included), one batched sweep.
//! 2. **Bound**: each unevaluated gap ("cell") between two seeded
//!    neighbours gets the optimistic bound
//!    `lb = (1 − margin) · min(corner times)` — sound whenever the time
//!    curve between two seeded neighbours does not undercut its better
//!    corner by more than `margin`. The bundled workloads' sawtooth
//!    dips (lapw0's k-point remainders, jacobi's block boundaries)
//!    measure up to ~14% at the default stride, so the default margin
//!    is a conservative 20% — pinned by the differential suite in
//!    `tests/opt.rs`.
//! 3. **Refine or skip**: a cell is skipped when it provably cannot
//!    contribute a frontier point — an already-evaluated strictly
//!    cheaper point beats its bound (domination), both corners are
//!    bit-equal and a cheaper point matches them (plateau, the
//!    zero-speedup workloads), the bound misses the deadline
//!    (infeasible), or the whole cell is over the cost budget. Cells
//!    that survive are evaluated in full, cheapest first, so refined
//!    points immediately widen the incumbent set that later, more
//!    expensive cells are bounded against.
//!
//! The returned frontier is exactly the Pareto set a brute-force
//! full-grid sweep extracts ([`brute_force`], the differential
//! reference) while evaluating strictly fewer lattice points on
//! anything with pruneable structure. `margin` trades safety against
//! laziness: `margin → 1` refines everything (degenerates to the full
//! grid), `margin = 0` trusts the corners exactly. Frontier points can
//! optionally be re-verified with the trusted simulation backend
//! (`verify: "sim"` — the conformance-tested expensive twin of the
//! analytic oracle).
//!
//! Served as `POST /v1/optimize` (prophet-serve, digest-routed by
//! prophet-router) and `prophet optimize` on the CLI; library callers
//! use [`OptimizeSession::optimize`] on any compiled [`Session`].

use prophet_core::{Backend, Error as CoreError, Session, SweepConfig, SweepPoint};
use prophet_machine::SystemParams;
use std::fmt;

/// What "best" means for [`OptimizeReport::best`]. The frontier itself
/// is objective-independent; the objective selects one point of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// The fastest feasible configuration (ties: cheapest).
    #[default]
    MinTime,
    /// The cheapest feasible configuration (pair with a deadline —
    /// without one this is simply the cheapest lattice point).
    MinCost,
    /// The configuration maximizing `speedup / cost` — equivalently
    /// minimizing `time · cost`, so it needs no baseline to be chosen.
    MaxSpeedupPerCost,
}

impl std::str::FromStr for Objective {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "min_time" => Ok(Self::MinTime),
            "min_cost" => Ok(Self::MinCost),
            "max_speedup_per_cost" => Ok(Self::MaxSpeedupPerCost),
            other => Err(format!(
                "unknown objective `{other}`; expected min_time, min_cost or max_speedup_per_cost"
            )),
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::MinTime => "min_time",
            Self::MinCost => "min_cost",
            Self::MaxSpeedupPerCost => "max_speedup_per_cost",
        })
    }
}

/// The cost model: `cost(n, c) = per_node·n + per_cpu·n·c`. Monotone in
/// both lattice coordinates for non-negative weights, which is what
/// makes cost-ordered pruning sound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Cost per allocated node.
    pub per_node: f64,
    /// Cost per allocated cpu (nodes × cpus-per-node of them).
    pub per_cpu: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        Self {
            per_node: 1.0,
            per_cpu: 1.0,
        }
    }
}

impl CostWeights {
    /// The cost of a `(nodes, cpus_per_node)` lattice point.
    pub fn cost(&self, nodes: usize, cpus: usize) -> f64 {
        self.per_node * nodes as f64 + self.per_cpu * (nodes * cpus) as f64
    }
}

/// Feasibility constraints. Both are *monotone* (violated-by-slower /
/// violated-by-costlier), so the constrained Pareto set is exactly the
/// unconstrained frontier intersected with the feasible region — which
/// is also what lets the search skip certified-infeasible cells.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Constraints {
    /// Keep only configurations with predicted time ≤ deadline seconds.
    pub deadline: Option<f64>,
    /// Keep only configurations with cost ≤ budget (cost-model units);
    /// over-budget points are excluded without ever being evaluated.
    pub max_cost: Option<f64>,
}

/// Optional re-verification of the frontier with the trusted backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Verify {
    /// Report the oracle's times as-is.
    #[default]
    None,
    /// Re-evaluate every frontier point with [`Backend::Simulation`]
    /// and attach the result as [`FrontierPoint::verified_time`].
    Sim,
}

impl std::str::FromStr for Verify {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(Self::None),
            "sim" => Ok(Self::Sim),
            other => Err(format!(
                "unknown verify mode `{other}`; expected sim or none"
            )),
        }
    }
}

/// One inverse query over the `(nodes, cpus)` lattice.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeRequest {
    /// Which frontier point is reported as [`OptimizeReport::best`].
    pub objective: Objective,
    /// The cost model the frontier is extracted against.
    pub weights: CostWeights,
    /// Feasibility constraints (deadline / cost budget).
    pub constraints: Constraints,
    /// Node counts of the lattice (deduplicated and sorted ascending by
    /// [`OptimizeRequest::normalized`]; zero is rejected).
    pub nodes: Vec<usize>,
    /// Cpus-per-node values of the lattice (same normalization).
    pub cpus: Vec<usize>,
    /// The search oracle. [`Backend::Analytic`] (default) is the cheap
    /// closed-form oracle; [`Backend::Simulation`] searches with the
    /// expensive backend directly (same pruning, same frontier).
    pub backend: Backend,
    /// Re-verify the frontier with the simulation backend.
    pub verify: Verify,
    /// Cell-bound safety factor in `[0, 1)`: a cell interior is assumed
    /// not to undercut `min(corner times)` by more than this fraction.
    /// The default (0.2) clears the worst interior dip any bundled
    /// workload shows at the default stride (~14%, lapw0) with room to
    /// spare; smooth workloads can drop it for more aggressive pruning.
    pub margin: f64,
    /// Coarse seed stride along the nodes axis (≥ 1; `1` seeds every
    /// point, degenerating to the full grid).
    pub stride: usize,
    /// Worker threads for oracle sweeps (`0` = auto).
    pub workers: usize,
}

impl Default for OptimizeRequest {
    fn default() -> Self {
        Self {
            objective: Objective::default(),
            weights: CostWeights::default(),
            constraints: Constraints::default(),
            nodes: (1..=16).collect(),
            cpus: vec![1, 2, 4, 8],
            backend: Backend::Analytic,
            verify: Verify::None,
            margin: 0.2,
            stride: 4,
            workers: 0,
        }
    }
}

impl OptimizeRequest {
    /// Validate and canonicalize: axes deduplicated + sorted ascending,
    /// every numeric knob range-checked. All entry points (library,
    /// CLI, HTTP) funnel through this, so a zero node count or an
    /// inverted margin can never reach the engine.
    pub fn normalized(&self) -> Result<OptimizeRequest, OptError> {
        let mut req = self.clone();
        normalize_axis(&mut req.nodes, "nodes")?;
        normalize_axis(&mut req.cpus, "cpus")?;
        if !req.margin.is_finite() || !(0.0..1.0).contains(&req.margin) {
            return Err(OptError::Request(format!(
                "`margin` must be in [0, 1), got {}",
                req.margin
            )));
        }
        if req.stride == 0 {
            return Err(OptError::Request("`stride` must be at least 1".into()));
        }
        let w = &req.weights;
        if !w.per_node.is_finite() || !w.per_cpu.is_finite() || w.per_node < 0.0 || w.per_cpu < 0.0
        {
            return Err(OptError::Request(format!(
                "cost weights must be finite and non-negative, got per_node={} per_cpu={}",
                w.per_node, w.per_cpu
            )));
        }
        if w.per_node == 0.0 && w.per_cpu == 0.0 {
            return Err(OptError::Request(
                "cost weights must not both be zero".into(),
            ));
        }
        for (name, value) in [
            ("deadline", req.constraints.deadline),
            ("max_cost", req.constraints.max_cost),
        ] {
            if let Some(v) = value {
                if !v.is_finite() || v <= 0.0 {
                    return Err(OptError::Request(format!(
                        "`{name}` must be positive and finite, got {v}"
                    )));
                }
            }
        }
        Ok(req)
    }
}

fn normalize_axis(axis: &mut Vec<usize>, name: &str) -> Result<(), OptError> {
    if axis.is_empty() {
        return Err(OptError::Request(format!(
            "`{name}` must be a non-empty list of counts"
        )));
    }
    if axis.contains(&0) {
        return Err(OptError::Request(format!(
            "bad count `0` in `{name}`: every count must be at least 1"
        )));
    }
    axis.sort_unstable();
    axis.dedup();
    Ok(())
}

/// One point of the returned Pareto frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierPoint {
    /// The configuration (flat MPI: `processes = nodes × cpus`).
    pub sp: SystemParams,
    /// Its cost under the request's [`CostWeights`].
    pub cost: f64,
    /// The oracle's predicted time in seconds.
    pub time: f64,
    /// Speedup relative to the cheapest in-budget lattice point.
    pub speedup: f64,
    /// The simulation backend's time, when `verify: sim` was requested.
    pub verified_time: Option<f64>,
}

/// The answer to an [`OptimizeRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    /// Echo of the request's objective.
    pub objective: Objective,
    /// Echo of the request's oracle backend.
    pub backend: Backend,
    /// The Pareto frontier over `(cost, time)`, feasible points only,
    /// sorted by ascending cost (ties: time, nodes, cpus).
    pub frontier: Vec<FrontierPoint>,
    /// Index into [`Self::frontier`] of the objective's pick (`None`
    /// when the frontier is empty, e.g. nothing meets the deadline).
    pub best: Option<usize>,
    /// The cheapest in-budget lattice point and its predicted time —
    /// the speedup baseline.
    pub baseline: Option<(SystemParams, f64)>,
    /// Lattice points actually evaluated through the oracle backend.
    pub oracle_evals: usize,
    /// Lattice points in the requested grid (`nodes × cpus`).
    pub grid_size: usize,
    /// Seed-gap cells proven unable to contribute a frontier point and
    /// skipped without evaluation.
    pub cells_skipped: usize,
    /// Seed-gap cells whose bound survived and were fully evaluated.
    pub cells_refined: usize,
    /// Simulation evaluations spent re-verifying the frontier.
    pub verifier_evals: usize,
}

impl OptimizeReport {
    /// The objective's pick, if the frontier is non-empty.
    pub fn best_point(&self) -> Option<&FrontierPoint> {
        self.best.and_then(|i| self.frontier.get(i))
    }
}

/// Optimizer failures. Evaluation problems fail the whole query and
/// name the offending lattice point — a search over a model that cannot
/// be evaluated somewhere has no trustworthy frontier.
#[derive(Debug)]
pub enum OptError {
    /// The request itself is invalid (bad axis, margin, weights...).
    Request(String),
    /// The oracle failed at a lattice point.
    Eval {
        /// The point that failed.
        sp: SystemParams,
        /// The underlying evaluation error.
        source: CoreError,
    },
    /// The oracle produced a non-finite prediction at a lattice point.
    NonFinite {
        /// The point that produced it.
        sp: SystemParams,
        /// The non-finite value (`inf`/`NaN`).
        time: f64,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Request(msg) => write!(f, "invalid optimize request: {msg}"),
            Self::Eval { sp, .. } => write!(
                f,
                "evaluation failed at nodes={} cpus={}",
                sp.nodes, sp.cpus_per_node
            ),
            Self::NonFinite { sp, time } => write!(
                f,
                "non-finite prediction ({time}) at nodes={} cpus={}",
                sp.nodes, sp.cpus_per_node
            ),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Eval { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// `Session::optimize` — the optimizer as a method on any compiled
/// [`Session`] (prophet-core cannot depend on this crate, so the entry
/// point arrives as an extension trait).
pub trait OptimizeSession {
    /// Run the lazy Pareto search ([`optimize`]).
    fn optimize(&self, req: &OptimizeRequest) -> Result<OptimizeReport, OptError>;
    /// Run the exhaustive reference ([`brute_force`]).
    fn optimize_brute_force(&self, req: &OptimizeRequest) -> Result<OptimizeReport, OptError>;
}

impl OptimizeSession for Session {
    fn optimize(&self, req: &OptimizeRequest) -> Result<OptimizeReport, OptError> {
        optimize(self, req)
    }
    fn optimize_brute_force(&self, req: &OptimizeRequest) -> Result<OptimizeReport, OptError> {
        brute_force(self, req)
    }
}

/// An evaluated lattice point (finite time only — anything else aborts
/// the search).
#[derive(Debug, Clone, Copy)]
struct Evaled {
    sp: SystemParams,
    cost: f64,
    time: f64,
}

/// A seed gap: the unevaluated node indices `lo+1..hi` of one cpus
/// column, bounded by its two evaluated corners.
struct Cell {
    ci: usize,
    lo: usize,
    hi: usize,
    lo_time: f64,
    hi_time: f64,
}

/// Evaluate `sps` through `backend`, failing fast on evaluation errors
/// and non-finite predictions.
fn sweep_times(
    session: &Session,
    backend: Backend,
    workers: usize,
    sps: &[SystemParams],
) -> Result<Vec<f64>, OptError> {
    let points: Vec<SweepPoint> = sps.iter().map(|&sp| SweepPoint { sp }).collect();
    let config = SweepConfig {
        backend,
        threads: workers,
        ..Default::default()
    };
    let report = session.sweep_with(&points, &config, |_, _| {});
    report
        .points
        .into_iter()
        .map(|p| match p.outcome {
            Ok(t) if t.is_finite() => Ok(t),
            Ok(t) => Err(OptError::NonFinite { sp: p.sp, time: t }),
            Err(e) => Err(OptError::Eval {
                sp: p.sp,
                source: e,
            }),
        })
        .collect()
}

/// Search the lattice lazily (see the crate docs for the algorithm) and
/// extract the Pareto frontier from the evaluated points.
pub fn optimize(session: &Session, req: &OptimizeRequest) -> Result<OptimizeReport, OptError> {
    let req = req.normalized()?;
    let (nodes, cpus) = (&req.nodes, &req.cpus);
    let grid_size = nodes.len() * cpus.len();

    // Seed: a coarse stride along every (budget-truncated) column,
    // endpoints included, evaluated as one batched sweep.
    let mut seed_sps = Vec::new();
    let mut columns: Vec<(usize, Vec<usize>)> = Vec::new();
    for (ci, &c) in cpus.iter().enumerate() {
        let in_budget = match req.constraints.max_cost {
            // Cost is monotone in n, so the in-budget rows are a prefix.
            Some(budget) => nodes
                .iter()
                .take_while(|&&n| req.weights.cost(n, c) <= budget)
                .count(),
            None => nodes.len(),
        };
        if in_budget == 0 {
            continue;
        }
        let mut idxs: Vec<usize> = (0..in_budget).step_by(req.stride).collect();
        if *idxs.last().expect("non-empty seed") != in_budget - 1 {
            idxs.push(in_budget - 1);
        }
        seed_sps.extend(idxs.iter().map(|&i| SystemParams::flat_mpi(nodes[i], c)));
        columns.push((ci, idxs));
    }
    let seed_times = sweep_times(session, req.backend, req.workers, &seed_sps)?;
    let mut oracle_evals = seed_sps.len();
    let mut evaled: Vec<Evaled> = seed_sps
        .iter()
        .zip(&seed_times)
        .map(|(&sp, &time)| Evaled {
            sp,
            cost: req.weights.cost(sp.nodes, sp.cpus_per_node),
            time,
        })
        .collect();

    // Cells between seeded neighbours, cheapest interior first so every
    // refinement widens the incumbent set later cells are bounded by.
    let mut cells = Vec::new();
    {
        let mut cursor = 0;
        for (ci, idxs) in &columns {
            for pair in idxs.windows(2) {
                if pair[1] > pair[0] + 1 {
                    let lo_pos = cursor + idxs.iter().position(|i| i == &pair[0]).expect("seeded");
                    let hi_pos = cursor + idxs.iter().position(|i| i == &pair[1]).expect("seeded");
                    cells.push(Cell {
                        ci: *ci,
                        lo: pair[0],
                        hi: pair[1],
                        lo_time: seed_times[lo_pos],
                        hi_time: seed_times[hi_pos],
                    });
                }
            }
            cursor += idxs.len();
        }
    }
    cells.sort_by(|a, b| {
        let ca = req.weights.cost(nodes[a.lo + 1], cpus[a.ci]);
        let cb = req.weights.cost(nodes[b.lo + 1], cpus[b.ci]);
        ca.total_cmp(&cb)
            .then(a.ci.cmp(&b.ci))
            .then(a.lo.cmp(&b.lo))
    });

    let (mut cells_skipped, mut cells_refined) = (0usize, 0usize);
    for cell in &cells {
        let c = cpus[cell.ci];
        let min_interior_cost = req.weights.cost(nodes[cell.lo + 1], c);
        let corner_min = cell.lo_time.min(cell.hi_time);
        let lb = (1.0 - req.margin) * corner_min;
        // Infeasible: even the optimistic bound misses the deadline.
        let infeasible = req.constraints.deadline.is_some_and(|d| lb > d);
        // Dominated: a strictly cheaper evaluated point beats the bound
        // — or, for a bit-equal plateau (constant-time workloads),
        // matches the corners outright.
        let plateau = cell.lo_time.to_bits() == cell.hi_time.to_bits();
        let dominated = || {
            evaled.iter().any(|q| {
                q.cost < min_interior_cost && (q.time <= lb || (plateau && q.time <= corner_min))
            })
        };
        if infeasible || dominated() {
            cells_skipped += 1;
            continue;
        }
        let sps: Vec<SystemParams> = (cell.lo + 1..cell.hi)
            .map(|i| SystemParams::flat_mpi(nodes[i], c))
            .collect();
        let times = sweep_times(session, req.backend, req.workers, &sps)?;
        oracle_evals += sps.len();
        evaled.extend(sps.iter().zip(&times).map(|(&sp, &time)| Evaled {
            sp,
            cost: req.weights.cost(sp.nodes, sp.cpus_per_node),
            time,
        }));
        cells_refined += 1;
    }

    finish(
        session,
        &req,
        evaled,
        oracle_evals,
        grid_size,
        cells_skipped,
        cells_refined,
    )
}

/// The exhaustive reference: evaluate every lattice point, then extract
/// the frontier with exactly the same machinery as [`optimize`]. The
/// differential suite asserts the two agree bit-for-bit on the bundled
/// workloads — with `oracle_evals` strictly smaller for the lazy path.
pub fn brute_force(session: &Session, req: &OptimizeRequest) -> Result<OptimizeReport, OptError> {
    let req = req.normalized()?;
    let sps: Vec<SystemParams> = req
        .cpus
        .iter()
        .flat_map(|&c| req.nodes.iter().map(move |&n| SystemParams::flat_mpi(n, c)))
        .collect();
    let times = sweep_times(session, req.backend, req.workers, &sps)?;
    let evaled = sps
        .iter()
        .zip(&times)
        .map(|(&sp, &time)| Evaled {
            sp,
            cost: req.weights.cost(sp.nodes, sp.cpus_per_node),
            time,
        })
        .collect();
    let grid = sps.len();
    finish(session, &req, evaled, grid, grid, 0, 0)
}

/// Shared tail of both searches: feasibility filter, Pareto extraction,
/// baseline/speedup, objective pick, optional sim verification.
fn finish(
    session: &Session,
    req: &OptimizeRequest,
    evaled: Vec<Evaled>,
    oracle_evals: usize,
    grid_size: usize,
    cells_skipped: usize,
    cells_refined: usize,
) -> Result<OptimizeReport, OptError> {
    // The speedup baseline: the cheapest in-budget lattice point. Both
    // search paths always evaluate it (it is the first seed of the
    // cheapest column), so the two reports agree on speedups too.
    let baseline_sp = req
        .cpus
        .iter()
        .flat_map(|&c| req.nodes.iter().map(move |&n| (n, c)))
        .filter(|&(n, c)| {
            req.constraints
                .max_cost
                .is_none_or(|b| req.weights.cost(n, c) <= b)
        })
        .min_by(|&(n1, c1), &(n2, c2)| {
            req.weights
                .cost(n1, c1)
                .total_cmp(&req.weights.cost(n2, c2))
                .then(n1.cmp(&n2))
                .then(c1.cmp(&c2))
        });
    let baseline = baseline_sp.and_then(|(n, c)| {
        evaled
            .iter()
            .find(|e| e.sp.nodes == n && e.sp.cpus_per_node == c)
            .map(|e| (e.sp, e.time))
    });

    // Feasible points, sorted by (cost, time, nodes, cpus).
    let mut feasible: Vec<&Evaled> = evaled
        .iter()
        .filter(|e| {
            req.constraints.deadline.is_none_or(|d| e.time <= d)
                && req.constraints.max_cost.is_none_or(|b| e.cost <= b)
        })
        .collect();
    feasible.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(a.time.total_cmp(&b.time))
            .then(a.sp.nodes.cmp(&b.sp.nodes))
            .then(a.sp.cpus_per_node.cmp(&b.sp.cpus_per_node))
    });

    // Pareto scan: within an equal-cost group only the minimal-time
    // points survive, and only if they strictly beat everything
    // cheaper; identical (cost, time) pairs are mutually non-dominating
    // and all kept.
    let mut frontier: Vec<FrontierPoint> = Vec::new();
    let mut best_cheaper = f64::INFINITY;
    let mut i = 0;
    while i < feasible.len() {
        let mut j = i;
        while j < feasible.len() && feasible[j].cost.to_bits() == feasible[i].cost.to_bits() {
            j += 1;
        }
        let group_min = feasible[i].time; // sorted: first of the group
        if group_min < best_cheaper {
            for e in &feasible[i..j] {
                if e.time.to_bits() == group_min.to_bits() {
                    frontier.push(FrontierPoint {
                        sp: e.sp,
                        cost: e.cost,
                        time: e.time,
                        speedup: baseline.map_or(1.0, |(_, b)| b / e.time),
                        verified_time: None,
                    });
                }
            }
            best_cheaper = group_min;
        }
        i = j;
    }

    let best = pick_best(req.objective, &frontier);

    let mut verifier_evals = 0;
    if req.verify == Verify::Sim && !frontier.is_empty() {
        let sps: Vec<SystemParams> = frontier.iter().map(|p| p.sp).collect();
        let times = sweep_times(session, Backend::Simulation, req.workers, &sps)?;
        verifier_evals = sps.len();
        for (p, t) in frontier.iter_mut().zip(times) {
            p.verified_time = Some(t);
        }
    }

    Ok(OptimizeReport {
        objective: req.objective,
        backend: req.backend,
        frontier,
        best,
        baseline,
        oracle_evals,
        grid_size,
        cells_skipped,
        cells_refined,
        verifier_evals,
    })
}

/// The objective's pick among the (already feasible) frontier points.
fn pick_best(objective: Objective, frontier: &[FrontierPoint]) -> Option<usize> {
    if frontier.is_empty() {
        return None;
    }
    let key = |p: &FrontierPoint| -> (f64, f64) {
        match objective {
            Objective::MinTime => (p.time, p.cost),
            // Frontier order is (cost, time, ...) ascending already.
            Objective::MinCost => (p.cost, p.time),
            // max speedup/cost == min time·cost, baseline-independent.
            Objective::MaxSpeedupPerCost => (p.time * p.cost, p.cost),
        }
    };
    (0..frontier.len()).min_by(|&a, &b| {
        let (ka, kb) = (key(&frontier[a]), key(&frontier[b]));
        ka.0.total_cmp(&kb.0)
            .then(ka.1.total_cmp(&kb.1))
            .then(frontier[a].sp.nodes.cmp(&frontier[b].sp.nodes))
            .then(
                frontier[a]
                    .sp
                    .cpus_per_node
                    .cmp(&frontier[b].sp.cpus_per_node),
            )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_workloads::models;

    fn jacobi() -> Session {
        Session::new(models::jacobi_model(100_000, 10, 1e-8)).expect("bundled models compile")
    }

    #[test]
    fn axes_are_validated_and_canonicalized() {
        let mut req = OptimizeRequest {
            nodes: vec![4, 1, 4, 2],
            cpus: vec![2, 1],
            ..Default::default()
        };
        let norm = req.normalized().unwrap();
        assert_eq!(norm.nodes, vec![1, 2, 4]);
        assert_eq!(norm.cpus, vec![1, 2]);
        req.nodes = vec![1, 0, 2];
        let err = req.normalized().unwrap_err().to_string();
        assert!(err.contains("bad count `0` in `nodes`"), "{err}");
        req.nodes = vec![];
        assert!(req.normalized().is_err());
        req.nodes = vec![1];
        req.margin = 1.5;
        assert!(req.normalized().is_err());
        req.margin = 0.2;
        req.weights = CostWeights {
            per_node: 0.0,
            per_cpu: 0.0,
        };
        assert!(req.normalized().is_err());
    }

    #[test]
    fn objective_and_verify_parse_roundtrip() {
        for o in [
            Objective::MinTime,
            Objective::MinCost,
            Objective::MaxSpeedupPerCost,
        ] {
            assert_eq!(o.to_string().parse::<Objective>().unwrap(), o);
        }
        assert!("fastest".parse::<Objective>().is_err());
        assert_eq!("sim".parse::<Verify>().unwrap(), Verify::Sim);
        assert!("simulation!".parse::<Verify>().is_err());
    }

    #[test]
    fn frontier_matches_brute_force_and_prunes() {
        let s = jacobi();
        let req = OptimizeRequest {
            nodes: (1..=24).collect(),
            cpus: vec![1, 2, 4],
            ..Default::default()
        };
        let lazy = optimize(&s, &req).unwrap();
        let full = brute_force(&s, &req).unwrap();
        assert_eq!(lazy.frontier, full.frontier);
        assert_eq!(lazy.best, full.best);
        assert_eq!(full.oracle_evals, full.grid_size);
        assert!(
            lazy.oracle_evals < lazy.grid_size,
            "lazy search must evaluate fewer points: {} vs {}",
            lazy.oracle_evals,
            lazy.grid_size
        );
        assert!(lazy.cells_skipped > 0);
        // Frontier shape: cost strictly ascending, time strictly
        // descending (no duplicates on this lattice).
        for w in lazy.frontier.windows(2) {
            assert!(w[0].cost < w[1].cost && w[0].time > w[1].time);
        }
    }

    #[test]
    fn constraints_filter_the_frontier() {
        let s = jacobi();
        let free = optimize(&s, &OptimizeRequest::default()).unwrap();
        assert!(!free.frontier.is_empty());
        let deadline = free.frontier[free.frontier.len() / 2].time;
        let req = OptimizeRequest {
            constraints: Constraints {
                deadline: Some(deadline),
                max_cost: None,
            },
            ..Default::default()
        };
        let constrained = optimize(&s, &req).unwrap();
        assert!(constrained.frontier.iter().all(|p| p.time <= deadline));
        assert_eq!(
            constrained.frontier,
            brute_force(&s, &req).unwrap().frontier
        );
        // min_cost under a deadline = the cheapest point meeting it.
        let cheapest = OptimizeRequest {
            objective: Objective::MinCost,
            ..req.clone()
        };
        let report = optimize(&s, &cheapest).unwrap();
        assert_eq!(report.best, Some(0));

        // An unmeetable deadline yields an empty frontier, not an error.
        let impossible = OptimizeRequest {
            constraints: Constraints {
                deadline: Some(1e-12),
                max_cost: None,
            },
            ..Default::default()
        };
        let report = optimize(&s, &impossible).unwrap();
        assert!(report.frontier.is_empty() && report.best.is_none());
    }

    #[test]
    fn cost_budget_excludes_points_without_evaluating_them() {
        let s = jacobi();
        let req = OptimizeRequest {
            constraints: Constraints {
                deadline: None,
                max_cost: Some(20.0),
            },
            ..Default::default()
        };
        let lazy = optimize(&s, &req).unwrap();
        assert!(lazy.frontier.iter().all(|p| p.cost <= 20.0));
        assert_eq!(lazy.frontier, brute_force(&s, &req).unwrap().frontier);
        // The whole over-budget region was never evaluated.
        let in_budget = req
            .nodes
            .iter()
            .flat_map(|&n| req.cpus.iter().map(move |&c| (n, c)))
            .filter(|&(n, c)| req.weights.cost(n, c) <= 20.0)
            .count();
        assert!(lazy.oracle_evals <= in_budget);
    }

    #[test]
    fn sim_verify_attaches_trusted_times() {
        let s = jacobi();
        let req = OptimizeRequest {
            nodes: (1..=6).collect(),
            cpus: vec![1],
            verify: Verify::Sim,
            ..Default::default()
        };
        let report = optimize(&s, &req).unwrap();
        assert_eq!(report.verifier_evals, report.frontier.len());
        for p in &report.frontier {
            let sim = p.verified_time.expect("verified");
            // Conformance: analytic and simulation agree tightly.
            assert!((sim - p.time).abs() <= 1e-9 * sim.max(1.0), "{p:?}");
        }
    }

    #[test]
    fn best_point_tracks_the_objective() {
        let s = jacobi();
        let mut req = OptimizeRequest::default();
        let report = optimize(&s, &req).unwrap();
        let best = report.best_point().unwrap();
        // min_time: no frontier point is faster.
        assert!(report.frontier.iter().all(|p| best.time <= p.time));
        req.objective = Objective::MaxSpeedupPerCost;
        let report = optimize(&s, &req).unwrap();
        let best = report.best_point().unwrap();
        for p in &report.frontier {
            assert!(
                best.speedup / best.cost >= p.speedup / p.cost - 1e-12,
                "{p:?}"
            );
        }
    }
}
