//! System parameters (SP): the architectural description Teuta passes to
//! the Performance Estimator.

use crate::error::MachineError;

/// The paper's SP set: "the number of computational nodes, the number of
/// processors per node, the number of processes, and the number of
/// threads."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemParams {
    /// Computational nodes in the machine.
    pub nodes: usize,
    /// Processors (cores) per node.
    pub cpus_per_node: usize,
    /// MPI processes in the program model.
    pub processes: usize,
    /// OpenMP threads per process (team size for `<<parallel+>>` regions
    /// that don't specify their own).
    pub threads_per_process: usize,
}

impl Default for SystemParams {
    fn default() -> Self {
        Self {
            nodes: 1,
            cpus_per_node: 1,
            processes: 1,
            threads_per_process: 1,
        }
    }
}

impl SystemParams {
    /// A homogeneous cluster: `nodes` × `cpus_per_node`, one process per
    /// node, threads matching the cpu count.
    pub fn cluster(nodes: usize, cpus_per_node: usize) -> Self {
        Self {
            nodes,
            cpus_per_node,
            processes: nodes,
            threads_per_process: cpus_per_node,
        }
    }

    /// Flat MPI: one process per cpu, single-threaded.
    pub fn flat_mpi(nodes: usize, cpus_per_node: usize) -> Self {
        Self {
            nodes,
            cpus_per_node,
            processes: nodes * cpus_per_node,
            threads_per_process: 1,
        }
    }

    /// Total processor count.
    pub fn total_cpus(&self) -> usize {
        self.nodes * self.cpus_per_node
    }

    /// Node hosting an MPI process: block distribution, matching common
    /// `mpirun` placement.
    ///
    /// # Panics
    /// Panics if `pid >= processes`.
    pub fn node_of(&self, pid: usize) -> usize {
        assert!(
            pid < self.processes,
            "pid {pid} out of range (P={})",
            self.processes
        );
        // Block distribution over nodes.
        pid * self.nodes / self.processes
    }

    /// Validate internal consistency; returns an explanatory error.
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.nodes == 0
            || self.cpus_per_node == 0
            || self.processes == 0
            || self.threads_per_process == 0
        {
            return Err(MachineError::InvalidParams(
                "all system parameters must be positive".into(),
            ));
        }
        if self.processes < self.nodes {
            return Err(MachineError::InvalidParams(format!(
                "{} processes on {} nodes would leave nodes idle; processes must be >= nodes",
                self.processes, self.nodes
            )));
        }
        Ok(())
    }

    /// Serialize as the SP XML fragment.
    pub fn to_xml(&self) -> String {
        format!(
            "<sp nodes=\"{}\" cpusPerNode=\"{}\" processes=\"{}\" threadsPerProcess=\"{}\"/>",
            self.nodes, self.cpus_per_node, self.processes, self.threads_per_process
        )
    }

    /// Parse from the SP XML fragment.
    pub fn from_xml(xml: &str) -> Result<Self, MachineError> {
        // Minimal attribute scraping to avoid a crate dependency cycle;
        // the full XML stack lives above this crate.
        let get = |key: &str| -> Result<usize, MachineError> {
            let pat = format!("{key}=\"");
            let start = xml
                .find(&pat)
                .ok_or_else(|| MachineError::Xml(format!("missing `{key}`")))?
                + pat.len();
            let end = xml[start..]
                .find('"')
                .ok_or_else(|| MachineError::Xml("unterminated attribute".into()))?
                + start;
            xml[start..end]
                .parse()
                .map_err(|_| MachineError::Xml(format!("bad value for `{key}`")))
        };
        let sp = Self {
            nodes: get("nodes")?,
            cpus_per_node: get("cpusPerNode")?,
            processes: get("processes")?,
            threads_per_process: get("threadsPerProcess")?,
        };
        sp.validate()?;
        Ok(sp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = SystemParams::cluster(4, 8);
        assert_eq!(c.total_cpus(), 32);
        assert_eq!(c.processes, 4);
        assert_eq!(c.threads_per_process, 8);
        let f = SystemParams::flat_mpi(4, 8);
        assert_eq!(f.processes, 32);
        assert_eq!(f.threads_per_process, 1);
    }

    #[test]
    fn block_distribution() {
        let sp = SystemParams::flat_mpi(4, 2); // 8 processes, 4 nodes
        let nodes: Vec<_> = (0..8).map(|p| sp.node_of(p)).collect();
        assert_eq!(nodes, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn uneven_distribution_covers_all_nodes() {
        let sp = SystemParams {
            nodes: 3,
            cpus_per_node: 2,
            processes: 7,
            threads_per_process: 1,
        };
        let mut used = [false; 3];
        for p in 0..7 {
            used[sp.node_of(p)] = true;
        }
        assert!(used.iter().all(|&u| u));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_bounds() {
        SystemParams::default().node_of(1);
    }

    #[test]
    fn validation() {
        assert!(SystemParams::default().validate().is_ok());
        assert!(SystemParams {
            nodes: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SystemParams {
            nodes: 4,
            cpus_per_node: 1,
            processes: 2,
            threads_per_process: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn xml_roundtrip() {
        let sp = SystemParams::cluster(4, 8);
        let xml = sp.to_xml();
        assert_eq!(SystemParams::from_xml(&xml).unwrap(), sp);
    }

    #[test]
    fn xml_errors() {
        assert!(SystemParams::from_xml("<sp nodes=\"2\"/>").is_err());
        assert!(SystemParams::from_xml(
            "<sp nodes=\"0\" cpusPerNode=\"1\" processes=\"1\" threadsPerProcess=\"1\"/>"
        )
        .is_err());
    }
}
