//! # prophet-machine
//!
//! The machine model of the Performance Estimator (Figure 2 of Pllana et
//! al., ICPP-W 2008): "The Performance Estimator generates automatically
//! the machine model based on the specified architectural parameters."
//!
//! * [`SystemParams`] — the **SP** element of the architecture: number of
//!   computational nodes, processors per node, number of processes, and
//!   threads per process,
//! * [`CommParams`] / [`CommModel`] — a Hockney (α–β) communication model
//!   with distinct intra-node and inter-node parameters, plus log-tree
//!   cost formulas for the MPI collectives of the UML profile,
//! * [`MachineModel`] — instantiates facilities (one multi-server CPU
//!   facility per node) and per-process mailboxes in a
//!   [`prophet_sim::Simulator`], and answers placement questions
//!   (`node_of`, `cpu_facility_of`).
//!
//! The original system evaluated models on clusters described by SP; this
//! crate is the simulated stand-in (see DESIGN.md substitution table).

pub mod comm;
pub mod error;
pub mod params;
pub mod topology;

pub use comm::{CommModel, CommParams};
pub use error::MachineError;
pub use params::SystemParams;
pub use topology::{MachineLayout, MachineModel};
