//! Typed machine-model errors (previously bare `String`s).

use std::fmt;

/// Why a machine model could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The system parameters are internally inconsistent.
    InvalidParams(String),
    /// The SP XML fragment is malformed.
    Xml(String),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::InvalidParams(m) => write!(f, "invalid system parameters: {m}"),
            MachineError::Xml(m) => write!(f, "malformed SP fragment: {m}"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            MachineError::InvalidParams("p < nodes".into()).to_string(),
            "invalid system parameters: p < nodes"
        );
        assert_eq!(
            MachineError::Xml("missing `nodes`".into()).to_string(),
            "malformed SP fragment: missing `nodes`"
        );
    }
}
