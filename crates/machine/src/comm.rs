//! Communication cost model: Hockney point-to-point plus log-tree
//! collectives.
//!
//! Point-to-point transfer time is `α + size·β` with `(α, β)` chosen by
//! locality (same node or different nodes). Collectives use the standard
//! binomial-tree / linear formulas found in MPI performance literature;
//! the Performance Estimator applies them when evaluating the profile's
//! `<<broadcast>>`, `<<reduce>>`, `<<barrier>>`, … building blocks.

use crate::params::SystemParams;

/// Raw latency/bandwidth parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommParams {
    /// Intra-node latency (s), e.g. shared-memory copy startup.
    pub intra_latency: f64,
    /// Intra-node bandwidth (bytes/s).
    pub intra_bandwidth: f64,
    /// Inter-node latency (s).
    pub inter_latency: f64,
    /// Inter-node bandwidth (bytes/s).
    pub inter_bandwidth: f64,
    /// Sender-side CPU overhead per message (s) — the time the sending
    /// process is busy before the message is in flight.
    pub send_overhead: f64,
}

impl Default for CommParams {
    /// Defaults shaped on a mid-2000s Gigabit-Ethernet cluster (the class
    /// of machine the paper's tooling targeted): ~50 µs inter-node
    /// latency, ~100 MB/s inter-node bandwidth, ~1 µs / ~2 GB/s intra-node.
    fn default() -> Self {
        Self {
            intra_latency: 1.0e-6,
            intra_bandwidth: 2.0e9,
            inter_latency: 50.0e-6,
            inter_bandwidth: 100.0e6,
            send_overhead: 1.0e-6,
        }
    }
}

impl CommParams {
    /// An idealized fast interconnect (InfiniBand-class) for sensitivity
    /// sweeps.
    pub fn fast_interconnect() -> Self {
        Self {
            inter_latency: 2.0e-6,
            inter_bandwidth: 1.0e9,
            ..Self::default()
        }
    }
}

/// The communication model: [`CommParams`] bound to a machine shape.
#[derive(Debug, Clone, Copy)]
pub struct CommModel {
    /// Raw parameters.
    pub params: CommParams,
    sp: SystemParams,
}

impl CommModel {
    /// Bind parameters to a system shape.
    pub fn new(params: CommParams, sp: SystemParams) -> Self {
        Self { params, sp }
    }

    /// The bound system parameters.
    pub fn system(&self) -> &SystemParams {
        &self.sp
    }

    /// Point-to-point transfer time between two processes.
    pub fn ptp_time(&self, from_pid: usize, to_pid: usize, size_bytes: u64) -> f64 {
        if from_pid == to_pid {
            return 0.0;
        }
        let same_node = self.sp.node_of(from_pid) == self.sp.node_of(to_pid);
        self.ptp_by_locality(same_node, size_bytes)
    }

    /// Point-to-point time given only locality.
    pub fn ptp_by_locality(&self, same_node: bool, size_bytes: u64) -> f64 {
        let (alpha, beta_inv) = if same_node {
            (self.params.intra_latency, self.params.intra_bandwidth)
        } else {
            (self.params.inter_latency, self.params.inter_bandwidth)
        };
        alpha + size_bytes as f64 / beta_inv
    }

    /// Worst-case (inter-node if the job spans nodes) point-to-point time —
    /// used by the analytic collective formulas.
    fn ptp_worst(&self, size_bytes: u64) -> f64 {
        self.ptp_by_locality(self.sp.nodes <= 1, size_bytes)
    }

    fn log2_ceil(p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            (p as f64).log2().ceil()
        }
    }

    /// Binomial-tree broadcast of `size_bytes` among `p` processes.
    pub fn broadcast_time(&self, p: usize, size_bytes: u64) -> f64 {
        Self::log2_ceil(p) * self.ptp_worst(size_bytes)
    }

    /// Binomial-tree reduce (same shape as broadcast, plus a per-step
    /// combine that we fold into the transfer).
    pub fn reduce_time(&self, p: usize, size_bytes: u64) -> f64 {
        Self::log2_ceil(p) * self.ptp_worst(size_bytes)
    }

    /// Allreduce as reduce + broadcast (the classic two-phase bound).
    pub fn allreduce_time(&self, p: usize, size_bytes: u64) -> f64 {
        self.reduce_time(p, size_bytes) + self.broadcast_time(p, size_bytes)
    }

    /// Dissemination barrier: ⌈log2 p⌉ zero-byte exchanges.
    pub fn barrier_time(&self, p: usize) -> f64 {
        Self::log2_ceil(p) * self.ptp_worst(0)
    }

    /// Linear scatter: the root sends `p − 1` chunks of `size/p`.
    pub fn scatter_time(&self, p: usize, total_size_bytes: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let chunk = total_size_bytes / p as u64;
        (p as f64 - 1.0) * self.ptp_worst(chunk)
    }

    /// Linear gather (mirror of scatter).
    pub fn gather_time(&self, p: usize, total_size_bytes: u64) -> f64 {
        self.scatter_time(p, total_size_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: usize, cpn: usize) -> CommModel {
        CommModel::new(CommParams::default(), SystemParams::flat_mpi(nodes, cpn))
    }

    #[test]
    fn ptp_locality() {
        let m = model(2, 2); // pids 0,1 on node0; 2,3 on node1
        let intra = m.ptp_time(0, 1, 1024);
        let inter = m.ptp_time(0, 2, 1024);
        assert!(
            inter > intra * 10.0,
            "inter {inter} should dwarf intra {intra}"
        );
        assert_eq!(m.ptp_time(1, 1, 1024), 0.0);
    }

    #[test]
    fn ptp_is_affine_in_size() {
        let m = model(2, 1);
        let t1 = m.ptp_time(0, 1, 1000);
        let t2 = m.ptp_time(0, 1, 2000);
        let t3 = m.ptp_time(0, 1, 3000);
        assert!(((t2 - t1) - (t3 - t2)).abs() < 1e-15);
        assert!(t1 > m.params.inter_latency);
    }

    #[test]
    fn broadcast_scales_logarithmically() {
        let m8 = model(8, 1);
        let m16 = model(16, 1);
        let b8 = m8.broadcast_time(8, 4096);
        let b16 = m16.broadcast_time(16, 4096);
        assert!(
            (b16 / b8 - 4.0 / 3.0).abs() < 1e-9,
            "log8=3 vs log16=4 steps"
        );
    }

    #[test]
    fn single_process_collectives_free() {
        let m = model(1, 1);
        assert_eq!(m.broadcast_time(1, 1 << 20), 0.0);
        assert_eq!(m.barrier_time(1), 0.0);
        assert_eq!(m.scatter_time(1, 1 << 20), 0.0);
    }

    #[test]
    fn allreduce_is_reduce_plus_broadcast() {
        let m = model(4, 1);
        assert!(
            (m.allreduce_time(4, 512) - (m.reduce_time(4, 512) + m.broadcast_time(4, 512))).abs()
                < 1e-15
        );
    }

    #[test]
    fn barrier_uses_zero_byte_messages() {
        let m = model(4, 1);
        assert!((m.barrier_time(4) - 2.0 * m.params.inter_latency).abs() < 1e-12);
    }

    #[test]
    fn scatter_linear_in_p() {
        let m8 = model(8, 1);
        // chunk = size/p, (p-1) sends.
        let total = 8 * 1024u64;
        let expect = 7.0 * m8.ptp_by_locality(false, 1024);
        assert!((m8.scatter_time(8, total) - expect).abs() < 1e-12);
        assert_eq!(m8.gather_time(8, total), m8.scatter_time(8, total));
    }

    #[test]
    fn single_node_job_uses_intra_params() {
        let m = CommModel::new(CommParams::default(), SystemParams::flat_mpi(1, 8));
        let b = m.broadcast_time(8, 0);
        assert!((b - 3.0 * m.params.intra_latency).abs() < 1e-12, "{b}");
    }
}
