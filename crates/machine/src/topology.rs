//! Machine topology instantiation: CPU facilities and process mailboxes.

use crate::comm::{CommModel, CommParams};
use crate::error::MachineError;
use crate::params::SystemParams;
use prophet_sim::{Discipline, FacilityId, MailboxId, Simulator};

/// Ids of the simulation resources that make up one instantiated machine.
#[derive(Debug, Clone)]
pub struct MachineLayout {
    /// One multi-server facility per node (servers = cpus per node).
    pub node_cpus: Vec<FacilityId>,
    /// One mailbox per MPI process (receive side).
    pub proc_mailboxes: Vec<MailboxId>,
}

/// The machine model: shape + communication parameters, instantiable into
/// a simulator.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// System parameters (SP).
    pub sp: SystemParams,
    /// Communication model bound to `sp`.
    pub comm: CommModel,
}

impl MachineModel {
    /// Create a machine model; validates `sp`.
    ///
    /// # Errors
    /// Returns the validation error for inconsistent parameters.
    pub fn new(sp: SystemParams, comm_params: CommParams) -> Result<Self, MachineError> {
        sp.validate()?;
        Ok(Self {
            sp,
            comm: CommModel::new(comm_params, sp),
        })
    }

    /// Node hosting process `pid` (block distribution).
    pub fn node_of(&self, pid: usize) -> usize {
        self.sp.node_of(pid)
    }

    /// Instantiate facilities and mailboxes in `sim`.
    ///
    /// "The program model is integrated with the machine model to create
    /// the model of the whole computer system" — this is the machine half;
    /// the estimator spawns the program processes on top.
    pub fn instantiate(&self, sim: &mut Simulator) -> MachineLayout {
        let node_cpus = (0..self.sp.nodes)
            .map(|n| {
                sim.add_facility(
                    &format!("node{n}.cpu"),
                    self.sp.cpus_per_node,
                    Discipline::Fcfs,
                )
            })
            .collect();
        let proc_mailboxes = (0..self.sp.processes)
            .map(|p| sim.add_mailbox(&format!("proc{p}.inbox")))
            .collect();
        MachineLayout {
            node_cpus,
            proc_mailboxes,
        }
    }

    /// CPU facility for process `pid` within a layout.
    pub fn cpu_facility_of(&self, layout: &MachineLayout, pid: usize) -> FacilityId {
        layout.node_cpus[self.node_of(pid)]
    }

    /// Mailbox of process `pid`.
    pub fn mailbox_of(&self, layout: &MachineLayout, pid: usize) -> MailboxId {
        layout.proc_mailboxes[pid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_sim::Config;

    #[test]
    fn instantiation_counts() {
        let m = MachineModel::new(SystemParams::flat_mpi(3, 2), CommParams::default()).unwrap();
        let mut sim = Simulator::new(Config::default());
        let layout = m.instantiate(&mut sim);
        assert_eq!(layout.node_cpus.len(), 3);
        assert_eq!(layout.proc_mailboxes.len(), 6);
    }

    #[test]
    fn placement_is_consistent_with_sp() {
        let m = MachineModel::new(SystemParams::flat_mpi(2, 2), CommParams::default()).unwrap();
        let mut sim = Simulator::new(Config::default());
        let layout = m.instantiate(&mut sim);
        assert_eq!(m.cpu_facility_of(&layout, 0), layout.node_cpus[0]);
        assert_eq!(m.cpu_facility_of(&layout, 1), layout.node_cpus[0]);
        assert_eq!(m.cpu_facility_of(&layout, 2), layout.node_cpus[1]);
        assert_eq!(m.cpu_facility_of(&layout, 3), layout.node_cpus[1]);
    }

    #[test]
    fn invalid_sp_rejected() {
        assert!(MachineModel::new(
            SystemParams {
                nodes: 4,
                cpus_per_node: 1,
                processes: 2,
                threads_per_process: 1
            },
            CommParams::default()
        )
        .is_err());
    }
}
