//! Persistent artifact store: a store hit must be correct — zero
//! check/transform invocations, bit-identical predictions, persisted
//! elaborations served as pure cache hits.
//!
//! The guard section (run by the CI smoke) pins that contract; the
//! timed section is honest about the economics. For a small model, a
//! cold compile is *cheaper* than a disk load — the store's payoff is
//! the restart semantics (zero compiles, wire-visible on
//! `/v1/metrics`) and the pre-flattened elaborations riding along:
//! `restart_to_first_sweep` measures the end-to-end question ("process
//! starts → first sweep served") where the warm path amortizes both
//! the compile and every per-point flatten.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_check::McfConfig;
use prophet_core::{
    mpi_grid, transform_invocations, ArtifactKey, ArtifactStore, Scenario, Session, SweepConfig,
};
use prophet_machine::SystemParams;
use prophet_workloads::models::jacobi_model;

fn temp_store(tag: &str) -> ArtifactStore {
    let dir =
        std::env::temp_dir().join(format!("prophet-bench-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    ArtifactStore::open(dir).expect("temp store opens")
}

fn bench_store(c: &mut Criterion) {
    let model = jacobi_model(100_000, 10, 1e-8);
    let store = temp_store("hitpath");

    // Warm the store: compile once, pre-elaborate a grid, persist.
    let session = Session::new(model.clone()).expect("compile");
    let points = mpi_grid(&[1, 2, 4, 8], 1);
    assert_eq!(
        session
            .sweep_with(&points, &SweepConfig::default(), |_, _| {})
            .failures(),
        0
    );
    let key = store.save_session(&session).expect("store write");

    // --- Guard: a store hit skips check + transform and predicts
    // bit-identically (the CI smoke gate for the persistence layer). ---
    let before = transform_invocations();
    let loaded = Session::compile_stored(model.clone(), McfConfig::default(), Some(&store))
        .expect("store hit");
    assert_eq!(
        transform_invocations(),
        before,
        "a store hit must not invoke the transformer"
    );
    let scenario = Scenario::new(SystemParams::flat_mpi(4, 1)).without_trace();
    assert_eq!(
        loaded.evaluate(&scenario).unwrap().predicted_time.to_bits(),
        session
            .evaluate(&scenario)
            .unwrap()
            .predicted_time
            .to_bits(),
        "loaded artifact must predict bit-identically"
    );
    // The persisted elaborations came back: the evaluate above was a
    // pure cache hit, no fresh flatten.
    let stats = loaded.elab_stats();
    assert_eq!((stats.hits, stats.misses), (1, 0), "{stats:?}");
    assert_eq!(ArtifactKey::of(loaded.model(), loaded.mcf()), key);

    // --- Timings. ---
    let mut group = c.benchmark_group("store/jacobi");
    group.sample_size(10);
    group.bench_function("cold_compile", |b| {
        b.iter(|| Session::new(model.clone()).expect("compile"))
    });
    group.bench_function("disk_load", |b| {
        b.iter(|| store.load_session(key).expect("hit"))
    });
    group.bench_function("compile_stored_hit", |b| {
        b.iter(|| {
            Session::compile_stored(model.clone(), McfConfig::default(), Some(&store)).expect("hit")
        })
    });
    group.finish();

    // The restart question the store actually answers: how long from
    // "process starts" to "first sweep served"? Cold pays compile +
    // per-point flattening; warm pays the disk load and then serves the
    // pre-flattened grid as pure elaboration-cache hits.
    let config = SweepConfig {
        threads: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("store/restart_to_first_sweep");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let s = Session::new(model.clone()).expect("compile");
            assert_eq!(s.sweep_with(&points, &config, |_, _| {}).failures(), 0);
        })
    });
    group.bench_function("warm", |b| {
        b.iter(|| {
            let s = store.load_session(key).expect("hit");
            assert_eq!(s.sweep_with(&points, &config, |_, _| {}).failures(), 0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
