//! Experiment E3 + ablation A3: simulation-engine throughput.
//!
//! Event throughput of the CSIM-substitute kernel on an M/M/c facility
//! workload, with both calendar implementations (binary heap vs
//! insertion-sorted vec).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prophet_sim::{
    Action, CalendarKind, Config, Discipline, FacilityId, ProcCtx, Process, Resumed, Simulator,
};

struct Worker {
    cpu: FacilityId,
    left: u32,
    stream: String,
}

impl Process for Worker {
    fn resume(&mut self, ctx: &mut ProcCtx<'_>, why: Resumed) -> Action {
        match why {
            Resumed::Start | Resumed::UseDone(_) => {
                if self.left == 0 {
                    return Action::Terminate;
                }
                self.left -= 1;
                let mut rng = ctx.random_stream(&self.stream);
                Action::Use(self.cpu, rng.exponential(0.1))
            }
            _ => Action::Terminate,
        }
    }
}

fn run_load(kind: CalendarKind, workers: usize, jobs_each: u32) -> u64 {
    let mut sim = Simulator::new(Config {
        calendar: kind,
        ..Default::default()
    });
    let cpu = sim.add_facility("cpu", 4, Discipline::Fcfs);
    for w in 0..workers {
        sim.spawn(
            &format!("w{w}"),
            Box::new(Worker {
                cpu,
                left: jobs_each,
                stream: format!("svc{w}"),
            }),
        );
    }
    sim.run().unwrap().events_processed
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/throughput");
    for &workers in &[8usize, 64, 256] {
        let jobs = 100u32;
        // Event count is deterministic; use it as the throughput unit.
        let events = run_load(CalendarKind::BinaryHeap, workers, jobs);
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new("binary_heap", workers),
            &workers,
            |b, &w| b.iter(|| run_load(CalendarKind::BinaryHeap, w, jobs)),
        );
        group.bench_with_input(
            BenchmarkId::new("sorted_vec", workers),
            &workers,
            |b, &w| b.iter(|| run_load(CalendarKind::SortedVec, w, jobs)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
