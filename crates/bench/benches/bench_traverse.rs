//! Ablation A2: traversal strategy — explicit-stack navigator vs the
//! recursive walk (which materializes the step list eagerly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prophet_bench::{chain_model, nested_model};
use prophet_uml::{
    ContentHandler, ExplicitStackNavigator, Model, RecursiveWalk, Traverser, VisitPhase,
};

/// A handler that counts visits without allocating.
#[derive(Default)]
struct Counter {
    visits: usize,
}

impl ContentHandler for Counter {
    fn visit_element(&mut self, _m: &Model, _e: prophet_uml::ElementId, _p: VisitPhase) {
        self.visits += 1;
    }
}

fn bench_traverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("traverse");
    for (label, model) in [
        ("chain_2000", chain_model(2000)),
        ("nested_16x16", nested_model(16, 16)),
    ] {
        let size = model.element_count() as u64;
        group.throughput(Throughput::Elements(size));
        group.bench_with_input(BenchmarkId::new("explicit_stack", label), &model, |b, m| {
            b.iter(|| {
                let mut nav = ExplicitStackNavigator::new(m.main_diagram());
                let mut counter = Counter::default();
                Traverser::new().traverse(m, &mut nav, &mut counter);
                counter.visits
            })
        });
        group.bench_with_input(BenchmarkId::new("recursive_walk", label), &model, |b, m| {
            b.iter(|| {
                let mut nav = RecursiveWalk::new(m, m.main_diagram());
                let mut counter = Counter::default();
                Traverser::new().traverse(m, &mut nav, &mut counter);
                counter.visits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_traverse);
criterion_main!(benches);
