//! Ablation A1: cost-function evaluation strategy.
//!
//! Interpreted AST walking (hash-map variable lookups) vs the
//! slot-compiled form (dense frame, functions inlined). The estimator
//! elaborates each cost expression once per element execution, so this
//! ratio bounds how much elaboration-time headroom the compiled form
//! buys.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_expr::{parse_expression, CompiledExpr, Env, FunctionDef, Slots, Value};

fn bench_expr(c: &mut Criterion) {
    let mut env = Env::new();
    env.define_function(FunctionDef::parse("G", &["n"], "n * 0.5 + 1").unwrap());
    env.define_function(
        FunctionDef::parse("F", &["x"], "G(x) * (x > 8 ? log2(x) : 1) + 0.25 * pid").unwrap(),
    );
    env.set_var("P", Value::Num(16.0));
    env.set_var("pid", Value::Num(3.0));

    let expr = parse_expression("F(P) + min(P, 8) * 0.125 + (pid % 2 == 0 ? 1 : 2)").unwrap();

    let mut group = c.benchmark_group("expr/eval");
    group.bench_function("interpreted", |b| b.iter(|| expr.eval(&mut env).unwrap()));

    let mut slots = Slots::new();
    let compiled = CompiledExpr::compile(&expr, &env, &mut slots).unwrap();
    let frame = slots.frame_from_env(&env);
    group.bench_function("compiled", |b| b.iter(|| compiled.eval(&frame).unwrap()));

    // Parse cost for completeness (checker + transformation both parse).
    group.bench_function("parse", |b| {
        b.iter(|| parse_expression("F(P) + min(P, 8) * 0.125 + (pid % 2 == 0 ? 1 : 2)").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_expr);
criterion_main!(benches);
