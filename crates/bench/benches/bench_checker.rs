//! Experiment E6: model-checker performance across model sizes, plus the
//! XML round-trip cost of the Models (XML) artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prophet_bench::{branchy_model, chain_model};
use prophet_check::{check_model, McfConfig};
use prophet_uml::xmi::{model_from_xml, model_to_xml};

fn bench_checker(c: &mut Criterion) {
    let config = McfConfig::default();
    let mut group = c.benchmark_group("checker");
    for &n in &[100usize, 1000, 5000] {
        let model = chain_model(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("chain", n), &model, |b, m| {
            b.iter(|| check_model(m, &config))
        });
    }
    let branchy = branchy_model(1000, 8);
    group.bench_function("branchy_1000", |b| {
        b.iter(|| check_model(&branchy, &config))
    });
    group.finish();

    let mut group = c.benchmark_group("xml");
    let model = chain_model(1000);
    let xml = model_to_xml(&model);
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("serialize_1000", |b| b.iter(|| model_to_xml(&model)));
    group.bench_function("parse_1000", |b| b.iter(|| model_from_xml(&xml).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
