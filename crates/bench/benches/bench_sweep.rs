//! Experiment E4: SP sweeps — serial vs parallel execution of
//! independent simulations, the compile-once [`Session`] path vs
//! recompiling per call (the pre-`Session` workflow), and the
//! flatten-once elaboration cache vs per-evaluation elaboration.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_bench::trajectory::Trajectory;
use prophet_core::{
    flatten_invocations, mpi_grid, transform_invocations, Backend, EstimatorOptions, Session,
    SweepConfig, SweepPoint,
};
use prophet_workloads::models::jacobi_model;

fn grid_64() -> Vec<SweepPoint> {
    // 64 points: node counts 1..=16 at 1/2/4/8 cpus each.
    let nodes: Vec<usize> = (1..=16).collect();
    let mut points = Vec::new();
    for cpus in [1usize, 2, 4, 8] {
        points.extend(mpi_grid(&nodes, cpus));
    }
    points
}

fn bench_sweep(c: &mut Criterion) {
    let model = jacobi_model(100_000, 10, 1e-8);
    let session = Session::new(model.clone()).expect("compile");
    let points = mpi_grid(&[1, 2, 4, 8, 16], 1);

    // Guard the compile-once contract before timing anything: a 64-point
    // sweep through a Session performs check + transform exactly once
    // (one `to_cpp` + one `to_program`, both at compile time — zero more
    // during the sweep, however many points it has). The transform
    // counter is thread-local, so run this guard sweep with `threads: 1`:
    // every evaluation then happens on this thread and any re-transform
    // would be counted here.
    let before = transform_invocations();
    let report = Session::new(model.clone()).expect("compile").sweep_with(
        &grid_64(),
        &SweepConfig {
            threads: 1,
            ..Default::default()
        },
        |_, _| {},
    );
    assert_eq!(report.points.len(), 64);
    assert_eq!(report.failures(), 0);
    assert_eq!(
        transform_invocations() - before,
        2,
        "session sweep must transform exactly once per backend"
    );

    // Guard the flatten-once elaboration contract (the CI smoke run of
    // this bench is the gate): a cached sweep over 8 SP points × 4 seeds
    // elaborates exactly once per distinct SP point — misses == points,
    // every later evaluation is a hit, and a repeat sweep performs zero
    // `flatten_for_process` calls at all (pure cache hits).
    {
        let session = Session::new(model.clone()).expect("compile");
        let grid8 = mpi_grid(&[1, 2, 4, 8, 16, 32, 64, 128], 1);
        let seeds: [u64; 4] = [11, 22, 33, 44];
        for seed in seeds {
            let config = SweepConfig {
                options: EstimatorOptions {
                    seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            assert_eq!(session.sweep_with(&grid8, &config, |_, _| {}).failures(), 0);
        }
        let stats = session.elab_stats();
        assert_eq!(
            stats.misses,
            grid8.len() as u64,
            "cached sweep must flatten exactly once per distinct SP point: {stats:?}"
        );
        assert_eq!(
            stats.hits,
            (grid8.len() * (seeds.len() - 1)) as u64,
            "every repeat evaluation must be a cache hit: {stats:?}"
        );
        let flattens_before = flatten_invocations();
        assert_eq!(session.sweep(&grid8).failures(), 0);
        assert_eq!(
            flatten_invocations() - flattens_before,
            0,
            "a repeat sweep over cached SP points must not flatten at all"
        );
    }

    let serial = SweepConfig {
        threads: 1,
        ..Default::default()
    };
    let parallel = SweepConfig::default();

    let mut group = c.benchmark_group("sweep/jacobi_5pts");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| session.sweep_with(&points, &serial, |_, _| {}))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| session.sweep_with(&points, &parallel, |_, _| {}))
    });
    group.bench_function("session_sweep", |b| b.iter(|| session.sweep(&points)));
    // The single-shot workflow for comparison: what every sweep cost
    // before compile-once sessions — check + both transforms paid again
    // on each call.
    group.bench_function("recompiling_sweep", |b| {
        b.iter(|| Session::new(model.clone()).expect("compile").sweep(&points))
    });
    group.finish();

    let mut group = c.benchmark_group("sweep/jacobi_64pts");
    group.sample_size(10);
    let big = grid_64();
    group.bench_function("session_sweep", |b| b.iter(|| session.sweep(&big)));
    group.finish();

    // The repeated-seed workload the elaboration cache exists for: the
    // same 8-point grid swept at 4 seeds. Cached, the 8 elaborations are
    // amortized across all 32 evaluations (and across bench iterations);
    // uncached, every evaluation re-flattens.
    let grid8 = mpi_grid(&[1, 2, 4, 8, 16, 32, 64, 128], 1);
    let sweep_4_seeds = |no_elab_cache: bool| {
        for seed in [11u64, 22, 33, 44] {
            let config = SweepConfig {
                threads: 1,
                no_elab_cache,
                options: EstimatorOptions {
                    seed,
                    ..Default::default()
                },
                ..Default::default()
            };
            assert_eq!(session.sweep_with(&grid8, &config, |_, _| {}).failures(), 0);
        }
    };
    let mut group = c.benchmark_group("sweep/jacobi_8pts_x4seeds");
    group.sample_size(10);
    group.bench_function("elab_cached", |b| b.iter(|| sweep_4_seeds(false)));
    group.bench_function("elab_uncached", |b| b.iter(|| sweep_4_seeds(true)));
    group.finish();

    // Trajectory snapshot (BENCH_sweep.json under PROPHET_BENCH_WRITE=1):
    // warm sweep throughput through each dispatch path.
    let analytic_serial = SweepConfig {
        threads: 1,
        backend: Backend::Analytic,
        ..Default::default()
    };
    assert_eq!(
        session
            .sweep_with(&big, &analytic_serial, |_, _| {})
            .failures(),
        0
    ); // warm: elab cache + BatchProgram compilation
    let mut trajectory = Trajectory::new("sweep");
    let n = big.len() as u64;
    trajectory.measure("sim_sweep_serial_64pt_points_per_sec", n, || {
        assert_eq!(session.sweep_with(&big, &serial, |_, _| {}).failures(), 0);
    });
    trajectory.measure("sim_sweep_parallel_64pt_points_per_sec", n, || {
        assert_eq!(session.sweep_with(&big, &parallel, |_, _| {}).failures(), 0);
    });
    trajectory.measure("analytic_batch_sweep_64pt_points_per_sec", n * 8, || {
        for _ in 0..8 {
            assert_eq!(
                session
                    .sweep_with(&big, &analytic_serial, |_, _| {})
                    .failures(),
                0
            );
        }
    });
    trajectory.measure(
        "elab_cached_8pt_x4seed_points_per_sec",
        (grid8.len() * 4) as u64,
        || sweep_4_seeds(false),
    );
    trajectory.write_if_requested();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
