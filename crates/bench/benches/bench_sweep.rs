//! Experiment E4: SP sweeps — serial vs crossbeam-parallel execution of
//! independent simulations.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_core::project::Project;
use prophet_core::sweep::{mpi_grid, sweep_parallel, sweep_serial};
use prophet_workloads::models::jacobi_model;

fn bench_sweep(c: &mut Criterion) {
    let project = Project::new(jacobi_model(100_000, 10, 1e-8));
    let points = mpi_grid(&[1, 2, 4, 8, 16], 1);

    let mut group = c.benchmark_group("sweep/jacobi_5pts");
    group.sample_size(10);
    group.bench_function("serial", |b| b.iter(|| sweep_serial(&project, &points)));
    group.bench_function("parallel", |b| b.iter(|| sweep_parallel(&project, &points, 0)));
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
