//! Analytic-backend benchmarks: the sweep-throughput win of resolving
//! predictions in closed form instead of replaying them on the DES
//! kernel, guarded by a cross-backend agreement check so the speedup is
//! never measured against wrong answers.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_bench::trajectory::Trajectory;
use prophet_core::{mpi_grid, Backend, Scenario, Session, SweepConfig, SweepPoint};
use prophet_machine::SystemParams;
use prophet_workloads::models::jacobi_model;

fn grid_64() -> Vec<SweepPoint> {
    // 64 points: node counts 1..=16 at 1/2/4/8 cpus each.
    let nodes: Vec<usize> = (1..=16).collect();
    let mut points = Vec::new();
    for cpus in [1usize, 2, 4, 8] {
        points.extend(mpi_grid(&nodes, cpus));
    }
    points
}

fn config(backend: Backend) -> SweepConfig {
    SweepConfig {
        threads: 1, // serial: measure per-point engine cost, not fan-out
        backend,
        ..Default::default()
    }
}

fn bench_analytic(c: &mut Criterion) {
    let session = Session::new(jacobi_model(100_000, 10, 1e-8)).expect("compile");
    let big = grid_64();

    // Agreement guard: the analytic sweep must reproduce the simulated
    // sweep within the conformance tolerance (1e-9 relative, the
    // contract pinned by tests/conformance.rs) before we time anything.
    let sim = session.sweep_with(&big, &config(Backend::Simulation), |_, _| {});
    let ana = session.sweep_with(&big, &config(Backend::Analytic), |_, _| {});
    assert_eq!(sim.failures(), 0);
    assert_eq!(ana.failures(), 0);
    for (s, a) in sim.times().iter().zip(ana.times().iter()) {
        let (s, a) = (s.unwrap(), a.unwrap());
        assert!(
            (s - a).abs() <= s.abs().max(a.abs()) * 1e-9,
            "backends diverge: simulation {s} vs analytic {a}"
        );
    }

    let scenario = Scenario::new(SystemParams::flat_mpi(8, 1)).without_trace();
    let mut group = c.benchmark_group("analytic/jacobi_evaluate");
    group.bench_function("simulation", |b| {
        b.iter(|| session.evaluate(&scenario).unwrap().predicted_time)
    });
    group.bench_function("analytic", |b| {
        b.iter(|| {
            session
                .evaluate(&scenario.clone().with_backend(Backend::Analytic))
                .unwrap()
                .predicted_time
        })
    });
    group.finish();

    let mut group = c.benchmark_group("analytic/jacobi_64pt_sweep");
    group.sample_size(10);
    group.bench_function("simulation", |b| {
        b.iter(|| session.sweep_with(&big, &config(Backend::Simulation), |_, _| {}))
    });
    group.bench_function("analytic", |b| {
        b.iter(|| session.sweep_with(&big, &config(Backend::Analytic), |_, _| {}))
    });
    group.finish();

    // Elaboration-cache contract on the repeated-seed workload: the
    // same 8-point grid swept at 8 seeds. Uncached, every one of the 64
    // evaluations re-flattens; cached, only the first 8 do — and since
    // flattening dominates the analytic per-point cost (the PR 2
    // finding that motivated the cache), the cached sweep must be at
    // least 1.5× the uncached throughput. Measured best-of-3 to shrug
    // off scheduler noise before the timed comparison groups run.
    let grid8 = mpi_grid(&[1, 2, 4, 8, 16, 32, 64, 128], 1);
    let sweep_8_seeds = |no_elab_cache: bool| {
        for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            let mut cfg = config(Backend::Analytic);
            cfg.no_elab_cache = no_elab_cache;
            cfg.options.seed = seed;
            assert_eq!(session.sweep_with(&grid8, &cfg, |_, _| {}).failures(), 0);
        }
    };
    let best_of_3 = |no_elab_cache: bool| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                sweep_8_seeds(no_elab_cache);
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    sweep_8_seeds(false); // warm the cache and the branch predictors

    // Shared CI runners can deschedule a whole measurement window, so
    // give the wall-clock guard a few attempts before declaring the
    // speedup gone (the deterministic flatten-count contract is pinned
    // separately in bench_sweep); typical measured speedup is ~5x.
    let mut speedup = 0.0f64;
    for _ in 0..3 {
        let cached = best_of_3(false);
        let uncached = best_of_3(true);
        speedup = speedup.max(uncached.as_secs_f64() / cached.as_secs_f64());
        if speedup >= 1.5 {
            break;
        }
    }
    assert!(
        speedup >= 1.5,
        "cached repeated-seed sweep must be >= 1.5x uncached in at least one of \
         3 attempts, best was {speedup:.2}x"
    );
    println!("elab cache speedup on 8pt x 8seed analytic sweep: {speedup:.2}x");

    let mut group = c.benchmark_group("analytic/jacobi_8pt_x8seed_sweep");
    group.sample_size(10);
    group.bench_function("elab_cached", |b| b.iter(|| sweep_8_seeds(false)));
    group.bench_function("elab_uncached", |b| b.iter(|| sweep_8_seeds(true)));
    group.finish();

    // Batch-path floor: a cached analytic sweep dispatches whole chunks
    // through `prophet_estimator::batch` (compacted ops, statically
    // matched messages, reused scratch), while `Session::evaluate` stays
    // on the per-point oracle. Both sides run warm on the same elab
    // cache, so the ratio isolates the batch walk itself. The floor is
    // 3x (typical measured speedup is well above 5x); same best-of-3
    // x 3-attempt shape as the elab-cache guard above to shrug off
    // shared-runner scheduler noise.
    let batch_pass = || {
        assert_eq!(
            session
                .sweep_with(&big, &config(Backend::Analytic), |_, _| {})
                .failures(),
            0
        );
    };
    let per_point_pass = || {
        for point in &big {
            let scenario = Scenario::new(point.sp)
                .with_backend(Backend::Analytic)
                .without_trace();
            std::hint::black_box(session.evaluate(&scenario).unwrap().predicted_time);
        }
    };
    batch_pass(); // warm: compiles the BatchProgram into the elab cache
    per_point_pass();
    let best_of_3 = |pass: &dyn Fn()| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                pass();
                t0.elapsed()
            })
            .min()
            .unwrap()
    };
    let mut batch_speedup = 0.0f64;
    for _ in 0..3 {
        let batch = best_of_3(&batch_pass);
        let per_point = best_of_3(&per_point_pass);
        batch_speedup = batch_speedup.max(per_point.as_secs_f64() / batch.as_secs_f64());
        if batch_speedup >= 3.0 {
            break;
        }
    }
    assert!(
        batch_speedup >= 3.0,
        "batched analytic sweep must be >= 3x the per-point oracle on the 64pt \
         grid in at least one of 3 attempts, best was {batch_speedup:.2}x"
    );
    println!("batch evaluation speedup on 64pt analytic sweep: {batch_speedup:.2}x");

    // Trajectory snapshot (BENCH_analytic.json under PROPHET_BENCH_WRITE=1):
    // warm points/sec through each evaluation path on the 64-point grid.
    let mut trajectory = Trajectory::new("analytic");
    let n = big.len() as u64;
    trajectory.measure("batch_sweep_64pt_points_per_sec", n * 8, || {
        for _ in 0..8 {
            batch_pass();
        }
    });
    trajectory.measure("per_point_analytic_64pt_points_per_sec", n * 8, || {
        for _ in 0..8 {
            per_point_pass();
        }
    });
    trajectory.measure("simulation_sweep_64pt_points_per_sec", n, || {
        assert_eq!(
            session
                .sweep_with(&big, &config(Backend::Simulation), |_, _| {})
                .failures(),
            0
        );
    });
    trajectory.write_if_requested();
}

criterion_group!(benches, bench_analytic);
criterion_main!(benches);
