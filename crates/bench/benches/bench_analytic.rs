//! Analytic-backend benchmarks: the sweep-throughput win of resolving
//! predictions in closed form instead of replaying them on the DES
//! kernel, guarded by a cross-backend agreement check so the speedup is
//! never measured against wrong answers.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_core::{mpi_grid, Backend, Scenario, Session, SweepConfig, SweepPoint};
use prophet_machine::SystemParams;
use prophet_workloads::models::jacobi_model;

fn grid_64() -> Vec<SweepPoint> {
    // 64 points: node counts 1..=16 at 1/2/4/8 cpus each.
    let nodes: Vec<usize> = (1..=16).collect();
    let mut points = Vec::new();
    for cpus in [1usize, 2, 4, 8] {
        points.extend(mpi_grid(&nodes, cpus));
    }
    points
}

fn config(backend: Backend) -> SweepConfig {
    SweepConfig {
        threads: 1, // serial: measure per-point engine cost, not fan-out
        backend,
        ..Default::default()
    }
}

fn bench_analytic(c: &mut Criterion) {
    let session = Session::new(jacobi_model(100_000, 10, 1e-8)).expect("compile");
    let big = grid_64();

    // Agreement guard: the analytic sweep must reproduce the simulated
    // sweep within the conformance tolerance (1e-9 relative, the
    // contract pinned by tests/conformance.rs) before we time anything.
    let sim = session.sweep_with(&big, &config(Backend::Simulation), |_, _| {});
    let ana = session.sweep_with(&big, &config(Backend::Analytic), |_, _| {});
    assert_eq!(sim.failures(), 0);
    assert_eq!(ana.failures(), 0);
    for (s, a) in sim.times().iter().zip(ana.times().iter()) {
        let (s, a) = (s.unwrap(), a.unwrap());
        assert!(
            (s - a).abs() <= s.abs().max(a.abs()) * 1e-9,
            "backends diverge: simulation {s} vs analytic {a}"
        );
    }

    let scenario = Scenario::new(SystemParams::flat_mpi(8, 1)).without_trace();
    let mut group = c.benchmark_group("analytic/jacobi_evaluate");
    group.bench_function("simulation", |b| {
        b.iter(|| session.evaluate(&scenario).unwrap().predicted_time)
    });
    group.bench_function("analytic", |b| {
        b.iter(|| {
            session
                .evaluate(&scenario.clone().with_backend(Backend::Analytic))
                .unwrap()
                .predicted_time
        })
    });
    group.finish();

    let mut group = c.benchmark_group("analytic/jacobi_64pt_sweep");
    group.sample_size(10);
    group.bench_function("simulation", |b| {
        b.iter(|| session.sweep_with(&big, &config(Backend::Simulation), |_, _| {}))
    });
    group.bench_function("analytic", |b| {
        b.iter(|| session.sweep_with(&big, &config(Backend::Analytic), |_, _| {}))
    });
    group.finish();
}

criterion_group!(benches, bench_analytic);
criterion_main!(benches);
