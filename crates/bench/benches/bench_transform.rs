//! Experiment E2 / Figure 5: transformation scalability.
//!
//! Measures the Figure-5 algorithm (UML → C++ text and UML → executable
//! IR) across model sizes and shapes. The paper claims "machine-efficient
//! model evaluation" motivates the C++ target; this bench quantifies the
//! transformation side of that pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prophet_bench::{branchy_model, chain_model, nested_model};
use prophet_core::transform::{to_cpp, to_program};

fn bench_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("transform/chain");
    for &n in &[10usize, 100, 1000, 5000] {
        let model = chain_model(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("to_cpp", n), &model, |b, m| {
            b.iter(|| to_cpp(m).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("to_program", n), &model, |b, m| {
            b.iter(|| to_program(m).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("transform/shapes");
    let nested = nested_model(8, 16);
    group.bench_function("nested_8x16_to_cpp", |b| {
        b.iter(|| to_cpp(&nested).unwrap())
    });
    let branchy = branchy_model(512, 8);
    group.bench_function("branchy_512_to_cpp", |b| {
        b.iter(|| to_cpp(&branchy).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_transform);
criterion_main!(benches);
