//! Experiments E1/E4/E5: end-to-end estimation cost for each evaluation
//! model — kernel 6, the Figure-7 sample model, Jacobi at two scales, and
//! the LAPW0-like hybrid.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_core::project::Project;
use prophet_estimator::EstimatorOptions;
use prophet_machine::SystemParams;
use prophet_workloads::models::{jacobi_model, kernel6_model, lapw0_model, sample_model};

fn quiet(project: Project) -> Project {
    // Sweeps and benches don't need traces.
    project.with_options(EstimatorOptions { trace: false, ..Default::default() })
}

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate");

    let kernel6 = quiet(Project::new(kernel6_model(1000, 10, 1e-9)));
    group.bench_function("kernel6_fig3", |b| b.iter(|| kernel6.run().unwrap()));

    let sample = quiet(Project::new(sample_model()));
    group.bench_function("sample_fig7", |b| b.iter(|| sample.run().unwrap()));

    let jacobi4 = quiet(
        Project::new(jacobi_model(100_000, 10, 1e-8)).with_system(SystemParams::flat_mpi(4, 1)),
    );
    group.bench_function("jacobi_p4", |b| b.iter(|| jacobi4.run().unwrap()));

    let jacobi16 = quiet(
        Project::new(jacobi_model(100_000, 10, 1e-8)).with_system(SystemParams::flat_mpi(16, 1)),
    );
    group.bench_function("jacobi_p16", |b| b.iter(|| jacobi16.run().unwrap()));

    let lapw0 = quiet(Project::new(lapw0_model(64, 16, 1e-5)).with_system(SystemParams {
        nodes: 4,
        cpus_per_node: 2,
        processes: 4,
        threads_per_process: 2,
    }));
    group.bench_function("lapw0_hybrid_4x2", |b| b.iter(|| lapw0.run().unwrap()));

    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
