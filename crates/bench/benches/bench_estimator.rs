//! Experiments E1/E4/E5: end-to-end estimation cost for each evaluation
//! model — kernel 6, the Figure-7 sample model, Jacobi at two scales, and
//! the LAPW0-like hybrid.
//!
//! Every model is compiled into a `Session` once outside the timing
//! loop; the measured cost is evaluation alone, which is what the
//! compile-once engine pays per scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_core::{Scenario, Session};
use prophet_machine::SystemParams;
use prophet_workloads::models::{jacobi_model, kernel6_model, lapw0_model, sample_model};

fn bench_estimator(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate");

    // Sweeps and benches don't need traces.
    let quiet = Scenario::default().without_trace();

    let kernel6 = Session::new(kernel6_model(1000, 10, 1e-9)).expect("compile");
    group.bench_function("kernel6_fig3", |b| {
        b.iter(|| kernel6.evaluate(&quiet).unwrap())
    });

    let sample = Session::new(sample_model()).expect("compile");
    group.bench_function("sample_fig7", |b| {
        b.iter(|| sample.evaluate(&quiet).unwrap())
    });

    let jacobi = Session::new(jacobi_model(100_000, 10, 1e-8)).expect("compile");
    let p4 = Scenario::new(SystemParams::flat_mpi(4, 1)).without_trace();
    group.bench_function("jacobi_p4", |b| b.iter(|| jacobi.evaluate(&p4).unwrap()));

    let p16 = Scenario::new(SystemParams::flat_mpi(16, 1)).without_trace();
    group.bench_function("jacobi_p16", |b| b.iter(|| jacobi.evaluate(&p16).unwrap()));

    let lapw0 = Session::new(lapw0_model(64, 16, 1e-5)).expect("compile");
    let hybrid = Scenario::new(SystemParams {
        nodes: 4,
        cpus_per_node: 2,
        processes: 4,
        threads_per_process: 2,
    })
    .without_trace();
    group.bench_function("lapw0_hybrid_4x2", |b| {
        b.iter(|| lapw0.evaluate(&hybrid).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
