//! Load generator for the prediction service: N client threads hammer
//! `POST /v1/estimate` and `POST /v1/sweep` over real loopback sockets
//! — each thread on one persistent keep-alive [`Connection`], so the
//! bench measures request throughput, not TCP connect throughput —
//! then the metrics endpoint is used to *prove* the serve-path
//! contracts: the model compiled exactly once into the session pool,
//! repeat evaluations were elaboration-cache hits, and keep-alive held
//! (zero reconnects under sustained load).
//!
//! The CI smoke run of this bench (tiny `PROPHET_BENCH_BUDGET_MS`) is
//! therefore a wire-level guard on session-pool reuse, not just a
//! timing. Run with `PROPHET_BENCH_WRITE=1` to refresh the committed
//! `BENCH_serve.json` perf-trajectory file.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prophet_bench::trajectory::Trajectory;
use prophet_serve::client::{self, Connection};
use prophet_serve::json::Json;
use prophet_serve::server::{serve, ServerConfig};
use std::net::SocketAddr;

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 8;

fn estimate_body(nodes: usize) -> Json {
    Json::object([
        ("model_name", Json::from("jacobi")),
        ("nodes", Json::from(nodes)),
        ("backend", Json::from("analytic")),
    ])
}

fn sweep_body() -> Json {
    Json::object([
        ("model_name", Json::from("jacobi")),
        ("nodes", Json::from(vec![1usize, 2, 4, 8])),
        ("backend", Json::from("analytic")),
        ("workers", Json::from(2usize)),
    ])
}

/// Fire `CLIENT_THREADS × REQUESTS_PER_THREAD` requests at `addr`, all
/// concurrently, each thread over one keep-alive connection, panicking
/// on any non-200 — and on any mid-burst reconnect, which would mean
/// the server dropped a pooled connection.
fn hammer(addr: SocketAddr, body: &Json, path: &str) {
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            scope.spawn(|| {
                let mut conn = Connection::new(addr);
                for _ in 0..REQUESTS_PER_THREAD {
                    let r = conn.post(path, body).expect("request");
                    assert_eq!(r.status, 200, "{}", r.body);
                }
                assert_eq!(conn.reconnects(), 0, "keep-alive must hold for a burst");
            });
        }
    });
}

/// [`hammer`] for a GET endpoint.
fn hammer_get(addr: SocketAddr, path: &str) {
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            scope.spawn(|| {
                let mut conn = Connection::new(addr);
                for _ in 0..REQUESTS_PER_THREAD {
                    assert_eq!(conn.get(path).expect("request").status, 200);
                }
                assert_eq!(conn.reconnects(), 0, "keep-alive must hold for a burst");
            });
        }
    });
}

fn metric(metrics: &Json, path: &[&str]) -> f64 {
    let mut cur = metrics;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    cur.as_f64().expect("numeric metric")
}

fn bench_serve(c: &mut Criterion) {
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: CLIENT_THREADS,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Guard the serve contracts before timing anything: a concurrent
    // burst of estimates for one model must compile one session, and
    // every evaluation after the first per SP point must be served by
    // the shared elaboration cache (4 distinct nodes values => 4
    // misses, all other evaluations hits).
    {
        std::thread::scope(|scope| {
            for t in 0..CLIENT_THREADS {
                scope.spawn(move || {
                    let mut conn = Connection::new(addr);
                    for i in 0..REQUESTS_PER_THREAD {
                        let nodes = 1usize << ((t + i) % 4); // 1,2,4,8
                        let r = conn
                            .post("/v1/estimate", &estimate_body(nodes))
                            .expect("estimate");
                        assert_eq!(r.status, 200, "{}", r.body);
                    }
                    assert_eq!(conn.reconnects(), 0, "keep-alive must hold");
                });
            }
        });
        let total = (CLIENT_THREADS * REQUESTS_PER_THREAD) as f64;
        let metrics = client::get(addr, "/v1/metrics").expect("metrics").body;
        assert_eq!(
            metric(&metrics, &["session_pool", "compiles"]),
            1.0,
            "one model hammered from {CLIENT_THREADS} threads must compile once: {metrics}"
        );
        assert_eq!(
            metric(&metrics, &["session_pool", "reuses"]),
            total - 1.0,
            "{metrics}"
        );
        assert_eq!(metric(&metrics, &["elab", "misses"]), 4.0, "{metrics}");
        assert_eq!(
            metric(&metrics, &["elab", "hits"]),
            total - 4.0,
            "every repeat SP point must be an elaboration-cache hit: {metrics}"
        );
    }

    let requests = (CLIENT_THREADS * REQUESTS_PER_THREAD) as u64;
    let mut group = c.benchmark_group("serve/loopback");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests));
    group.bench_function("estimate_x32", |b| {
        b.iter(|| hammer(addr, &estimate_body(8), "/v1/estimate"))
    });
    group.bench_function("sweep4_x32", |b| {
        b.iter(|| hammer(addr, &sweep_body(), "/v1/sweep"))
    });
    group.bench_function("metrics_x32", |b| {
        b.iter(|| hammer_get(addr, "/v1/metrics"))
    });
    group.finish();

    // Perf trajectory: requests/sec over keep-alive connections,
    // written to BENCH_serve.json when PROPHET_BENCH_WRITE=1.
    const TRAJECTORY_ROUNDS: u64 = 8;
    let mut trajectory = Trajectory::new("serve");
    trajectory.measure("estimate_keepalive", TRAJECTORY_ROUNDS * requests, || {
        for _ in 0..TRAJECTORY_ROUNDS {
            hammer(addr, &estimate_body(8), "/v1/estimate");
        }
    });
    trajectory.measure("sweep4_keepalive", TRAJECTORY_ROUNDS * requests, || {
        for _ in 0..TRAJECTORY_ROUNDS {
            hammer(addr, &sweep_body(), "/v1/sweep");
        }
    });
    trajectory.measure("metrics_keepalive", TRAJECTORY_ROUNDS * requests, || {
        for _ in 0..TRAJECTORY_ROUNDS {
            hammer_get(addr, "/v1/metrics");
        }
    });
    if let Some(path) = trajectory.write_if_requested() {
        println!("wrote {}", path.display());
    }

    // However much the timed sections hammered, the pool never compiled
    // a second session for the same model.
    let metrics = client::get(addr, "/v1/metrics").expect("metrics").body;
    assert_eq!(
        metric(&metrics, &["session_pool", "compiles"]),
        1.0,
        "session-pool reuse must survive sustained load: {metrics}"
    );
    server.shutdown();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
