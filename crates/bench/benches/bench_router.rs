//! Load generator for the scale-out front door: a two-shard fleet
//! behind an in-process `prophet-router`, hammered from concurrent
//! keep-alive clients. Before timing anything it *proves* the routing
//! contracts over real loopback sockets — every bundled model compiles
//! exactly once fleet-wide (digest pinning), both shards stay healthy,
//! and routed answers match direct-to-shard answers — so the CI smoke
//! run (tiny `PROPHET_BENCH_BUDGET_MS`) is a wire-level guard on
//! digest routing, not just a timing.
//!
//! The timed sections compare routed vs direct throughput (the
//! router's forwarding overhead) and the aggregated-metrics fan-out;
//! the trajectory additionally records routed throughput *while the
//! fleet is live-reshaped* (a third shard joining and leaving through
//! `POST /v1/shards` mid-burst), so the rebalance overhead is visible
//! as its own curve. Run with `PROPHET_BENCH_WRITE=1` to refresh the
//! committed `BENCH_router.json` perf-trajectory file.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prophet_bench::trajectory::Trajectory;
use prophet_router::{start, RouterConfig};
use prophet_serve::client::{self, Connection};
use prophet_serve::json::Json;
use prophet_serve::server::{serve, ServerConfig};
use std::net::SocketAddr;
use std::time::Duration;

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_THREAD: usize = 8;

/// Six of the bundled demo workloads — the digest-pinning guard
/// spreads them across the fleet.
const MODELS: [&str; 6] = [
    "sample",
    "kernel6",
    "jacobi",
    "lapw0",
    "pipeline",
    "master_worker",
];

fn estimate_body(model: &str, nodes: usize) -> Json {
    Json::object([
        ("model_name", Json::from(model)),
        ("nodes", Json::from(nodes)),
        ("backend", Json::from("analytic")),
    ])
}

/// Fire `CLIENT_THREADS × REQUESTS_PER_THREAD` estimates at `addr`,
/// each thread over one keep-alive connection, rotating through the
/// bundled models; panics on any non-200.
fn hammer_estimates(addr: SocketAddr) {
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            scope.spawn(move || {
                let mut conn = Connection::new(addr);
                for i in 0..REQUESTS_PER_THREAD {
                    let model = MODELS[(t + i) % MODELS.len()];
                    let r = conn
                        .post("/v1/estimate", &estimate_body(model, 8))
                        .expect("estimate");
                    assert_eq!(r.status, 200, "{model}: {}", r.body);
                }
                assert_eq!(conn.reconnects(), 0, "keep-alive must hold for a burst");
            });
        }
    });
}

fn metric(metrics: &Json, path: &[&str]) -> f64 {
    let mut cur = metrics;
    for key in path {
        cur = cur.get(key).unwrap_or_else(|| panic!("missing {key}"));
    }
    cur.as_f64().expect("numeric metric")
}

// Each serve worker owns one connection at a time, and the router keeps
// a keep-alive connection per router worker per shard — plus health
// probes and the handoff's warm/evict dials during a live reshape. Size
// each shard's worker pool above that sum, or the handoff connections
// starve behind pooled keep-alives and every reconfigure stalls on the
// idle timeout instead of measuring real rebalance overhead.
const SHARD_WORKERS: usize = 2 * CLIENT_THREADS;

fn bench_router(c: &mut Criterion) {
    let shard_a = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: SHARD_WORKERS,
        ..Default::default()
    })
    .expect("bind shard a");
    let shard_b = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: SHARD_WORKERS,
        ..Default::default()
    })
    .expect("bind shard b");
    let router = start(&RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: CLIENT_THREADS,
        shards: vec![shard_a.addr(), shard_b.addr()],
        probe_interval: Duration::from_millis(100),
        ..Default::default()
    })
    .expect("bind router");
    let addr = router.addr();

    // Guard the routing contracts before timing anything: hammering
    // every bundled model from concurrent threads through the router
    // must compile each model exactly once *fleet-wide* (digest
    // pinning — a round-robin balancer would compile up to one per
    // shard), with every repeat a session reuse, and both shards
    // answering their metrics fan-out.
    {
        hammer_estimates(addr);
        let metrics = client::get(addr, "/v1/metrics").expect("metrics").body;
        let total = (CLIENT_THREADS * REQUESTS_PER_THREAD) as f64;
        assert_eq!(
            metric(&metrics, &["fleet", "session_compiles"]),
            MODELS.len() as f64,
            "each model must compile exactly once fleet-wide: {metrics}"
        );
        assert_eq!(
            metric(&metrics, &["fleet", "session_reuses"]),
            total - MODELS.len() as f64,
            "{metrics}"
        );
        assert_eq!(metric(&metrics, &["router", "routing", "shards"]), 2.0);
        assert_eq!(
            metric(&metrics, &["router", "routing", "healthy"]),
            2.0,
            "both shards must be healthy under load: {metrics}"
        );
        assert!(
            metric(&metrics, &["router", "routing", "forwards"]) >= total,
            "{metrics}"
        );
    }

    // Routed-only timed sections first, so digest pinning can still be
    // asserted strictly afterwards (direct-to-shard traffic below
    // compiles models on whichever shard it hits).
    let requests = (CLIENT_THREADS * REQUESTS_PER_THREAD) as u64;
    let mut group = c.benchmark_group("router/loopback");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests));
    group.bench_function("routed_estimate_x32", |b| b.iter(|| hammer_estimates(addr)));
    group.bench_function("aggregated_metrics", |b| {
        b.iter(|| {
            let r = client::get(addr, "/v1/metrics").expect("metrics");
            assert_eq!(r.status, 200);
        })
    });
    group.bench_function("shards_view", |b| {
        b.iter(|| {
            let r = client::get(addr, "/v1/shards").expect("shards");
            assert_eq!(r.status, 200);
        })
    });
    group.finish();

    // Perf trajectory: routed requests/sec (measured before any direct
    // traffic), written to BENCH_router.json when PROPHET_BENCH_WRITE=1.
    const TRAJECTORY_ROUNDS: u64 = 8;
    let mut trajectory = Trajectory::new("router");
    trajectory.measure("routed_estimate", TRAJECTORY_ROUNDS * requests, || {
        for _ in 0..TRAJECTORY_ROUNDS {
            hammer_estimates(addr);
        }
    });
    trajectory.measure("aggregated_metrics", TRAJECTORY_ROUNDS, || {
        for _ in 0..TRAJECTORY_ROUNDS {
            assert_eq!(
                client::get(addr, "/v1/metrics").expect("metrics").status,
                200
            );
        }
    });

    // However hard the fleet was hammered through the router, digest
    // pinning held: still exactly one compile per model across both
    // shards.
    let metrics = client::get(addr, "/v1/metrics").expect("metrics").body;
    assert_eq!(
        metric(&metrics, &["fleet", "session_compiles"]),
        MODELS.len() as f64,
        "digest pinning must survive sustained load: {metrics}"
    );

    // Live-join trajectory: routed throughput while the fleet is being
    // reshaped. Each round fires one membership mutation (a third shard
    // alternately joining and leaving through POST /v1/shards) *while*
    // the client burst runs, so the measured rate pays for the epoch
    // swap and the warm-before/evict-after handoff — the rebalance
    // overhead is the gap to `routed_estimate` in BENCH_router.json.
    // (Runs after the strict pinning assert above: handoff primes are
    // legitimate extra compiles.)
    let shard_c = serve(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: SHARD_WORKERS,
        ..Default::default()
    })
    .expect("bind shard c");
    let joiner = shard_c.addr().to_string();
    trajectory.measure(
        "routed_estimate_live_join",
        TRAJECTORY_ROUNDS * requests,
        || {
            for round in 0..TRAJECTORY_ROUNDS {
                let verb = if round % 2 == 0 { "add" } else { "remove" };
                std::thread::scope(|scope| {
                    let joiner = &joiner;
                    scope.spawn(move || {
                        let body =
                            Json::object([(verb, Json::Array(vec![Json::from(joiner.clone())]))]);
                        let r = client::post(addr, "/v1/shards", &body).expect("reconfigure");
                        assert_eq!(r.status, 200, "live {verb}: {}", r.body);
                    });
                    hammer_estimates(addr);
                });
            }
        },
    );
    // An even number of alternating add/remove rounds settles the fleet
    // back on the two founding shards, with every mid-swap request
    // answered 200 (hammer_estimates asserts).
    let shards_view = client::get(addr, "/v1/shards").expect("shards").body;
    assert_eq!(
        metric(&shards_view, &["routing", "shards"]),
        2.0,
        "{shards_view}"
    );

    // Finally the same burst straight at one shard: the difference to
    // the routed number is the forwarding overhead. (This compiles the
    // models shard_a did not own, so it runs after the pinning checks.)
    let mut group = c.benchmark_group("router/loopback");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests));
    group.bench_function("direct_estimate_x32", |b| {
        b.iter(|| hammer_estimates(shard_a.addr()))
    });
    group.finish();
    trajectory.measure("direct_estimate", TRAJECTORY_ROUNDS * requests, || {
        for _ in 0..TRAJECTORY_ROUNDS {
            hammer_estimates(shard_a.addr());
        }
    });
    if let Some(path) = trajectory.write_if_requested() {
        println!("wrote {}", path.display());
    }

    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
    shard_c.shutdown();
}

criterion_group!(benches, bench_router);
criterion_main!(benches);
