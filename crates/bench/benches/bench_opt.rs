//! Optimizer benchmarks: the lazy SP-lattice search win of pruning
//! cells through analytic cost bounds instead of evaluating the full
//! grid, guarded by a frontier-identity check so the speedup is never
//! measured against a wrong Pareto set.

use criterion::{criterion_group, criterion_main, Criterion};
use prophet_bench::trajectory::Trajectory;
use prophet_core::{Backend, Session};
use prophet_opt::{Constraints, OptimizeRequest, OptimizeSession};
use prophet_workloads::models::jacobi_model;

/// The benchmark lattice: serve-scale jacobi over a dense 96-point
/// grid with a deadline that rules out the slow single-node corner and
/// a budget that truncates each cpus column's tail without evaluating
/// it. Under these constraints the lazy search settles the frontier
/// from well under half the lattice.
fn request(backend: Backend) -> OptimizeRequest {
    OptimizeRequest {
        nodes: (1..=32).collect(),
        cpus: vec![1, 2, 4],
        constraints: Constraints {
            deadline: Some(0.03),
            max_cost: Some(48.0),
        },
        backend,
        ..Default::default()
    }
}

fn bench_opt(c: &mut Criterion) {
    let session = Session::new(jacobi_model(1_000_000, 20, 1e-8)).expect("compile");
    let req = request(Backend::Analytic);

    // Identity guard: the lazy frontier must be bit-identical to the
    // exhaustive reference (same contract as tests/opt.rs) before we
    // time anything, and the laziness itself is the headline — at most
    // half the lattice may be evaluated.
    let lazy = session.optimize(&req).expect("lazy search succeeds");
    let full = session
        .optimize_brute_force(&req)
        .expect("brute force succeeds");
    assert_eq!(full.oracle_evals, full.grid_size, "reference is exhaustive");
    assert!(!lazy.frontier.is_empty(), "frontier must be non-empty");
    assert_eq!(
        lazy.frontier.len(),
        full.frontier.len(),
        "lazy and brute-force frontiers differ in size"
    );
    for (a, b) in lazy.frontier.iter().zip(full.frontier.iter()) {
        assert_eq!(a.sp, b.sp, "frontier SP points diverge");
        assert_eq!(
            a.time.to_bits(),
            b.time.to_bits(),
            "frontier times diverge at nodes={} cpus={}",
            a.sp.nodes,
            a.sp.cpus_per_node
        );
        assert_eq!(
            a.cost.to_bits(),
            b.cost.to_bits(),
            "frontier costs diverge at nodes={} cpus={}",
            a.sp.nodes,
            a.sp.cpus_per_node
        );
    }
    assert!(
        2 * lazy.oracle_evals <= lazy.grid_size,
        "lazy search must evaluate at most half the lattice, \
         evaluated {} of {}",
        lazy.oracle_evals,
        lazy.grid_size
    );
    println!(
        "lazy optimize: {} of {} lattice points evaluated, {}-point frontier",
        lazy.oracle_evals,
        lazy.grid_size,
        lazy.frontier.len()
    );

    let mut group = c.benchmark_group("opt/jacobi_96pt_lattice");
    group.sample_size(10);
    group.bench_function("lazy", |b| b.iter(|| session.optimize(&req).unwrap()));
    group.bench_function("brute_force", |b| {
        b.iter(|| session.optimize_brute_force(&req).unwrap())
    });
    group.finish();

    // Trajectory snapshot (BENCH_opt.json under PROPHET_BENCH_WRITE=1):
    // warm searches/sec through each path, plus the lattice coverage
    // ratio so the pruning win is visible in the curve, not only in
    // the wall-clock ratio.
    let mut trajectory = Trajectory::new("opt");
    trajectory.measure("lazy_optimize_searches_per_sec", 8, || {
        for _ in 0..8 {
            std::hint::black_box(session.optimize(&req).unwrap());
        }
    });
    trajectory.measure("brute_force_searches_per_sec", 8, || {
        for _ in 0..8 {
            std::hint::black_box(session.optimize_brute_force(&req).unwrap());
        }
    });
    trajectory.record(
        "lattice_fraction_evaluated",
        lazy.oracle_evals as f64 / lazy.grid_size as f64,
    );
    trajectory.write_if_requested();
}

criterion_group!(benches, bench_opt);
criterion_main!(benches);
