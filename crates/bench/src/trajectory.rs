//! Perf-trajectory recording: machine-normalized throughput points
//! written as `BENCH_<area>.json` at the repo root, so successive PRs
//! leave a speed curve behind instead of only CI ratio assertions.
//!
//! Every file carries a **calibration score** — FNV-1a hashing
//! throughput measured on the same machine in the same run — and each
//! point's rate both raw (`per_sec`) and divided by that score
//! (`normalized`). The normalized number cancels (roughly) the
//! machine's single-core speed, so points recorded on different
//! hardware land on one comparable curve.
//!
//! Writing is opt-in so CI smoke runs with tiny budgets never publish
//! garbage numbers. Regenerate locally with:
//!
//! ```sh
//! PROPHET_BENCH_WRITE=1 cargo bench -p prophet-bench --bench bench_serve
//! PROPHET_BENCH_WRITE=1 cargo bench -p prophet-bench --bench bench_router
//! ```

use std::path::PathBuf;
use std::time::Instant;

/// Trajectory file schema version.
pub const SCHEMA: u32 = 1;

/// The environment variable gating file writes.
pub const WRITE_ENV: &str = "PROPHET_BENCH_WRITE";

/// Calibration: FNV-1a over a fixed pseudo-random buffer, in MiB/s —
/// a pure-ALU, cache-resident proxy for single-core speed.
pub fn calibration_mib_per_sec() -> f64 {
    const REPS: usize = 192;
    let buf: Vec<u8> = (0u32..64 * 1024)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect();
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    let start = Instant::now();
    for _ in 0..REPS {
        for &byte in &buf {
            acc ^= u64::from(byte);
            acc = acc.wrapping_mul(0x100_0000_01b3);
        }
        acc = std::hint::black_box(acc);
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (REPS * buf.len()) as f64 / (1024.0 * 1024.0) / elapsed
}

/// One area's trajectory: named throughput points, normalized by a
/// calibration score measured at write time.
#[derive(Debug)]
pub struct Trajectory {
    area: String,
    points: Vec<(String, f64)>,
}

impl Trajectory {
    /// An empty trajectory for `area` (`BENCH_<area>.json`).
    pub fn new(area: impl Into<String>) -> Self {
        Self {
            area: area.into(),
            points: Vec::new(),
        }
    }

    /// Record a point's raw rate, in operations per second.
    pub fn record(&mut self, name: impl Into<String>, per_sec: f64) {
        self.points.push((name.into(), per_sec));
    }

    /// Time `work` performing `count` operations and record the rate;
    /// returns the measured operations per second.
    pub fn measure(&mut self, name: &str, count: u64, work: impl FnOnce()) -> f64 {
        let start = Instant::now();
        work();
        let per_sec = count as f64 / start.elapsed().as_secs_f64().max(1e-9);
        self.record(name, per_sec);
        per_sec
    }

    /// The serialized trajectory document.
    pub fn render(&self, calibration: f64) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {SCHEMA},\n"));
        out.push_str(&format!("  \"area\": \"{}\",\n", self.area));
        out.push_str(&format!(
            "  \"calibration_fnv1a_mib_per_sec\": {calibration:.2},\n"
        ));
        out.push_str("  \"points\": [\n");
        for (i, (name, per_sec)) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{name}\", \"per_sec\": {per_sec:.2}, \"normalized\": {:.6}}}{comma}\n",
                per_sec / calibration.max(1e-9)
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write `BENCH_<area>.json` at the repo root when
    /// [`WRITE_ENV`]`=1`; returns the written path, `None` when gated
    /// off. Panics on I/O failure — a requested write must not vanish.
    pub fn write_if_requested(&self) -> Option<PathBuf> {
        if std::env::var(WRITE_ENV).ok().as_deref() != Some("1") {
            return None;
        }
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{}.json", self.area));
        std::fs::write(&path, self.render(calibration_mib_per_sec()))
            .unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn calibration_is_positive_and_finite() {
        let score = calibration_mib_per_sec();
        assert!(score.is_finite() && score > 0.0, "score = {score}");
    }

    #[test]
    fn renders_valid_point_lines() {
        let mut t = Trajectory::new("demo");
        t.record("alpha", 1234.5);
        let n = t.measure("beta", 100, || std::thread::sleep(Duration::from_millis(2)));
        assert!(n > 0.0 && n < 100_000.0, "rate = {n}");
        let doc = t.render(100.0);
        assert!(doc.contains("\"area\": \"demo\""), "{doc}");
        assert!(
            doc.contains("\"name\": \"alpha\", \"per_sec\": 1234.50"),
            "{doc}"
        );
        assert!(doc.contains("\"normalized\": 12.345000"), "{doc}");
        // Two points: exactly one comma-terminated, the last one bare.
        assert_eq!(doc.matches("},\n").count(), 1, "{doc}");
        assert_eq!(doc.matches("}\n").count(), 2, "{doc}");
    }

    #[test]
    fn writing_is_gated_off_by_default() {
        assert_ne!(
            std::env::var(WRITE_ENV).ok().as_deref(),
            Some("1"),
            "tests must not run with the write gate open"
        );
        assert_eq!(Trajectory::new("gated").write_if_requested(), None);
    }
}
