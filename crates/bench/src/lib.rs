//! Shared helpers for the benchmark harness: synthetic model generators
//! sized by element count, used by the transformation/checker/traverser
//! scaling experiments (E2, E6, A2 in DESIGN.md), plus the
//! [`trajectory`] recorder behind the committed `BENCH_*.json`
//! perf-trajectory files.

pub mod trajectory;

use prophet_uml::{Model, ModelBuilder, VarType};

/// A linear chain of `n` `<<action+>>` elements with cost functions —
/// the transformation-scaling workload (experiment E2).
pub fn chain_model(n: usize) -> Model {
    let mut b = ModelBuilder::new("chain");
    b.global("GV", VarType::Int, Some("0"));
    b.function("FStep", &["k"], "0.001 + 0.0001 * k");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let mut prev = i;
    for k in 0..n {
        let a = b.action(main, &format!("A{k}"), &format!("FStep({k})"));
        b.flow(main, prev, a);
        prev = a;
    }
    let f = b.final_node(main, "end");
    b.flow(main, prev, f);
    b.build()
}

/// A model with hierarchical composites (depth × width), stressing the
/// traverser and the nested-block emission.
pub fn nested_model(depth: usize, width: usize) -> Model {
    let mut b = ModelBuilder::new("nested");
    let mut current = b.main_diagram();
    for level in 0..depth {
        // `width` actions chained, then one composite leading deeper.
        let entry = b.initial(current, &format!("init{level}"));
        let mut prev = entry;
        for k in 0..width {
            let a = b.action(current, &format!("L{level}N{k}"), "0.001");
            b.flow(current, prev, a);
            prev = a;
        }
        if level + 1 < depth {
            let sub = b.diagram(&format!("level{}", level + 1));
            let comp = b.call_activity(current, &format!("C{level}"), sub);
            b.flow(current, prev, comp);
            let f = b.final_node(current, &format!("fin{level}"));
            b.flow(current, comp, f);
            current = sub;
        } else {
            let f = b.final_node(current, &format!("fin{level}"));
            b.flow(current, prev, f);
        }
    }
    b.build()
}

/// A model with decisions every `period` elements (if/else-if emission
/// stress).
pub fn branchy_model(n: usize, period: usize) -> Model {
    let mut b = ModelBuilder::new("branchy");
    b.global("GV", VarType::Int, Some("1"));
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let mut prev = i;
    for k in 0..n {
        if k % period == period - 1 {
            let d = b.decision(main, &format!("D{k}"));
            let x = b.action(main, &format!("X{k}"), "0.001");
            let y = b.action(main, &format!("Y{k}"), "0.002");
            let m = b.merge(main, &format!("M{k}"));
            b.flow(main, prev, d);
            b.guarded_flow(main, d, x, "GV == 1");
            b.guarded_flow(main, d, y, "else");
            b.flow(main, x, m);
            b.flow(main, y, m);
            prev = m;
        } else {
            let a = b.action(main, &format!("A{k}"), "0.001");
            b.flow(main, prev, a);
            prev = a;
        }
    }
    let f = b.final_node(main, "end");
    b.flow(main, prev, f);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_expected_sizes() {
        assert_eq!(chain_model(100).performance_elements().len(), 100);
        let nested = nested_model(4, 5);
        assert_eq!(nested.diagrams.len(), 4);
        let branchy = branchy_model(20, 5);
        assert!(branchy.performance_elements().len() >= 20);
    }

    #[test]
    fn generated_models_transform() {
        for m in [chain_model(50), nested_model(3, 4), branchy_model(30, 6)] {
            prophet_core::transform::to_cpp(&m).unwrap();
            prophet_core::transform::to_program(&m).unwrap();
        }
    }
}
