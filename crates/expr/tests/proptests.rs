//! Property-based tests for the cost-function language: print/parse
//! roundtrips, interpreter/compiler agreement, and panic-freedom.

use prophet_expr::{parse_expression, BinOp, CompiledExpr, Env, Expr, Slots, UnOp, Value};
use proptest::prelude::*;

fn var_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "P".to_string(),
        "GV".to_string(),
        "pid".to_string(),
        "tid".to_string(),
        "n".to_string(),
    ])
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
        BinOp::And,
        BinOp::Or,
    ])
}

/// Expressions restricted to total operations (no /, %, sqrt/log domains)
/// so evaluation never legitimately errors.
fn total_expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100i32..100).prop_map(|n| Expr::Num(n as f64)),
        var_strategy().prop_map(Expr::Var),
        any::<bool>().prop_map(Expr::Bool),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (binop_strategy(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Neg, Box::new(e))),
            inner
                .clone()
                .prop_map(|e| Expr::Unary(UnOp::Not, Box::new(e))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| Expr::Cond(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call("min".into(), vec![a, b])),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Call("max".into(), vec![a, b])),
        ]
    })
}

fn env_with_vars(p: f64, gv: f64, pid: f64, tid: f64, n: f64) -> Env {
    let mut env = Env::new();
    env.set_num("P", p);
    env.set_num("GV", gv);
    env.set_num("pid", pid);
    env.set_num("tid", tid);
    env.set_num("n", n);
    env
}

/// The compiler maps booleans to 0/1 doubles; compare through that lens.
fn as_cpp_double(v: Value) -> f64 {
    match v {
        Value::Num(n) => n,
        Value::Bool(b) => {
            if b {
                1.0
            } else {
                0.0
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn display_parse_roundtrip(e in total_expr_strategy()) {
        // Negative literals print as `-1` and reparse as Neg(1), so tree
        // equality is too strict; instead require printing to be a fixpoint
        // and evaluation to agree.
        let printed = e.to_string();
        let reparsed = parse_expression(&printed)
            .unwrap_or_else(|err| panic!("reparse of `{printed}` failed: {err}"));
        prop_assert_eq!(reparsed.to_string(), printed.clone(), "printing not idempotent");
        let mut env1 = env_with_vars(4.0, 1.0, 2.0, 1.0, 3.0);
        let mut env2 = env_with_vars(4.0, 1.0, 2.0, 1.0, 3.0);
        let a = e.eval(&mut env1).map(as_cpp_double);
        let b = reparsed.eval(&mut env2).map(as_cpp_double);
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert!(a == b || (a.is_nan() && b.is_nan()), "eval mismatch for {}", printed);
        }
    }

    #[test]
    fn interpreter_and_compiler_agree(
        e in total_expr_strategy(),
        p in 1.0f64..64.0,
        gv in -2.0f64..2.0,
    ) {
        let mut env = env_with_vars(p, gv, 3.0, 1.0, 10.0);
        let interpreted = e.eval(&mut env);
        let mut slots = Slots::new();
        let compiled = CompiledExpr::compile(&e, &env, &mut slots).unwrap();
        let frame = slots.frame_from_env(&env);
        let compiled_val = compiled.eval(&frame);
        match (interpreted, compiled_val) {
            (Ok(iv), Ok(cv)) => {
                let iv = as_cpp_double(iv);
                // NaN == NaN for our purposes (0^negative etc. excluded by
                // construction, but keep the check robust).
                prop_assert!(iv == cv || (iv.is_nan() && cv.is_nan()),
                    "interpreted {iv} != compiled {cv} for {e}");
            }
            // The interpreter rejects bool/num mixes that the compiler
            // accepts under C semantics; only that direction may differ.
            (Err(_), _) => {}
            (Ok(_), Err(err)) => return Err(TestCaseError::fail(format!("compiler-only error: {err}"))),
        }
    }

    #[test]
    fn eval_never_panics(e in total_expr_strategy()) {
        let mut env = env_with_vars(4.0, 1.0, 0.0, 0.0, 5.0);
        let _ = e.eval(&mut env);
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,80}") {
        let _ = parse_expression(&s);
        let _ = prophet_expr::parse_statements(&s);
    }

    #[test]
    fn cpp_emission_parses_back(e in total_expr_strategy()) {
        // C++ text for pow-free expressions is also valid source for our
        // parser; semantic equality via evaluation on a fixed env.
        let cpp = prophet_expr::cpp::expr_to_cpp(&e);
        if !cpp.contains("std::") && !cpp.contains("true") && !cpp.contains("false") {
            let back = parse_expression(&cpp)
                .unwrap_or_else(|err| panic!("reparse of `{cpp}` failed: {err}"));
            let mut env = env_with_vars(4.0, 1.0, 2.0, 1.0, 3.0);
            let a = e.eval(&mut env).map(as_cpp_double);
            let b = back.eval(&mut env).map(as_cpp_double);
            if let (Ok(a), Ok(b)) = (a, b) {
                prop_assert!(a == b || (a.is_nan() && b.is_nan()));
            }
        }
    }
}
