//! Lexer for the cost-function language.

use crate::error::{ExprError, ExprResult};

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Numeric literal (integers and floats share one representation).
    Number(f64),
    /// Identifier or keyword (`if`, `else`, `while`, `var`, `true`, `false`
    /// are recognized by the parser, not the lexer).
    Ident(String),
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `^` (power; emitted as `std::pow` in C++)
    Caret,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `?`
    Question,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

/// A token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Hand-written lexer. Comments (`// …` to end of line and `/* … */`) are
/// skipped, matching the C++ fragments the original tool pasted through.
pub struct Tokenizer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tokenizer<'a> {
    /// Create a tokenizer over `src`.
    pub fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lex the entire input, appending a final [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> ExprResult<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) -> ExprResult<()> {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => self.pos += 1,
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.pos += 2;
                                break;
                            }
                            (Some(_), _) => self.pos += 1,
                            (None, _) => {
                                return Err(ExprError::Lex {
                                    message: "unterminated block comment".into(),
                                    offset: start,
                                })
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> ExprResult<Token> {
        self.skip_trivia()?;
        let offset = self.pos;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let single = |k: TokenKind| Token { kind: k, offset };
        macro_rules! two {
            ($second:expr, $two:expr, $one:expr) => {{
                self.pos += 1;
                if self.peek() == Some($second) {
                    self.pos += 1;
                    Ok(single($two))
                } else {
                    Ok(single($one))
                }
            }};
        }
        match c {
            b'0'..=b'9' | b'.' => self.lex_number(offset),
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while matches!(
                    self.peek(),
                    Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
                ) {
                    self.pos += 1;
                }
                Ok(Token {
                    kind: TokenKind::Ident(self.src[offset..self.pos].to_string()),
                    offset,
                })
            }
            b'+' => {
                self.pos += 1;
                Ok(single(TokenKind::Plus))
            }
            b'-' => {
                self.pos += 1;
                Ok(single(TokenKind::Minus))
            }
            b'*' => {
                self.pos += 1;
                Ok(single(TokenKind::Star))
            }
            b'/' => {
                self.pos += 1;
                Ok(single(TokenKind::Slash))
            }
            b'%' => {
                self.pos += 1;
                Ok(single(TokenKind::Percent))
            }
            b'^' => {
                self.pos += 1;
                Ok(single(TokenKind::Caret))
            }
            b'(' => {
                self.pos += 1;
                Ok(single(TokenKind::LParen))
            }
            b')' => {
                self.pos += 1;
                Ok(single(TokenKind::RParen))
            }
            b'{' => {
                self.pos += 1;
                Ok(single(TokenKind::LBrace))
            }
            b'}' => {
                self.pos += 1;
                Ok(single(TokenKind::RBrace))
            }
            b',' => {
                self.pos += 1;
                Ok(single(TokenKind::Comma))
            }
            b';' => {
                self.pos += 1;
                Ok(single(TokenKind::Semi))
            }
            b'?' => {
                self.pos += 1;
                Ok(single(TokenKind::Question))
            }
            b':' => {
                self.pos += 1;
                Ok(single(TokenKind::Colon))
            }
            b'=' => two!(b'=', TokenKind::Eq, TokenKind::Assign),
            b'!' => two!(b'=', TokenKind::Ne, TokenKind::Not),
            b'<' => two!(b'=', TokenKind::Le, TokenKind::Lt),
            b'>' => two!(b'=', TokenKind::Ge, TokenKind::Gt),
            b'&' => {
                if self.peek2() == Some(b'&') {
                    self.pos += 2;
                    Ok(single(TokenKind::AndAnd))
                } else {
                    Err(ExprError::Lex {
                        message: "expected `&&`".into(),
                        offset,
                    })
                }
            }
            b'|' => {
                if self.peek2() == Some(b'|') {
                    self.pos += 2;
                    Ok(single(TokenKind::OrOr))
                } else {
                    Err(ExprError::Lex {
                        message: "expected `||`".into(),
                        offset,
                    })
                }
            }
            other => Err(ExprError::Lex {
                message: format!("unexpected character `{}`", other as char),
                offset,
            }),
        }
    }

    fn lex_number(&mut self, offset: usize) -> ExprResult<Token> {
        let mut saw_digit = false;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            saw_digit = true;
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                saw_digit = true;
                self.pos += 1;
            }
        }
        if !saw_digit {
            return Err(ExprError::Lex {
                message: "lone `.` is not a number".into(),
                offset,
            });
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `2e` followed by ident).
                self.pos = save;
            }
        }
        let text = &self.src[offset..self.pos];
        let value: f64 = text.parse().map_err(|_| ExprError::Lex {
            message: format!("bad number `{text}`"),
            offset,
        })?;
        Ok(Token {
            kind: TokenKind::Number(value),
            offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        Tokenizer::new(s)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Number(42.0), TokenKind::Eof]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Number(3.5), TokenKind::Eof]);
        assert_eq!(
            kinds("1e3"),
            vec![TokenKind::Number(1000.0), TokenKind::Eof]
        );
        assert_eq!(
            kinds("2.5e-2"),
            vec![TokenKind::Number(0.025), TokenKind::Eof]
        );
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5), TokenKind::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("a <= b && c != d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::AndAnd,
                TokenKind::Ident("c".into()),
                TokenKind::Ne,
                TokenKind::Ident("d".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 // line\n + /* block */ 2"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Plus,
                TokenKind::Number(2.0),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment() {
        let e = Tokenizer::new("1 /* oops").tokenize().unwrap_err();
        assert!(e.message().contains("unterminated"));
    }

    #[test]
    fn bad_char_reports_offset() {
        let e = Tokenizer::new("a @ b").tokenize().unwrap_err();
        match e {
            ExprError::Lex { offset, .. } => assert_eq!(offset, 2),
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn single_ampersand_rejected() {
        assert!(Tokenizer::new("a & b").tokenize().is_err());
    }

    #[test]
    fn exponent_backtrack() {
        // `2e` then identifier `x` — `e` is not an exponent here.
        let ks = kinds("2e");
        assert_eq!(ks[0], TokenKind::Number(2.0));
        assert_eq!(ks[1], TokenKind::Ident("e".into()));
    }
}
