//! Pratt parser for expressions and a recursive-descent parser for the
//! statement (code-fragment) language.

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::error::{ExprError, ExprResult};
use crate::token::{Token, TokenKind, Tokenizer};

/// Parse a single expression; trailing input is an error.
pub fn parse_expression(src: &str) -> ExprResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.expression(0)?;
    p.expect_eof()?;
    Ok(e)
}

/// Parse a sequence of statements (a code fragment); trailing input is an
/// error. The empty string parses to an empty fragment.
pub fn parse_statements(src: &str) -> ExprResult<Vec<Stmt>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Token-stream parser. Exposed so callers can parse an expression and then
/// inspect the remaining tokens (used by the model checker for diagnostics).
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lex `src` and position at the first token.
    pub fn new(src: &str) -> ExprResult<Self> {
        Ok(Self {
            tokens: Tokenizer::new(src).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> ExprResult<()> {
        if self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(ExprError::Parse {
                message: format!("expected {what}, found {:?}", self.peek()),
                offset: self.offset(),
            })
        }
    }

    /// True when all input has been consumed.
    pub fn at_eof(&self) -> bool {
        *self.peek() == TokenKind::Eof
    }

    /// Error unless at end of input.
    pub fn expect_eof(&self) -> ExprResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(ExprError::Parse {
                message: format!("unexpected trailing input: {:?}", self.peek()),
                offset: self.offset(),
            })
        }
    }

    fn binop_of(kind: &TokenKind) -> Option<BinOp> {
        Some(match kind {
            TokenKind::Plus => BinOp::Add,
            TokenKind::Minus => BinOp::Sub,
            TokenKind::Star => BinOp::Mul,
            TokenKind::Slash => BinOp::Div,
            TokenKind::Percent => BinOp::Rem,
            TokenKind::Caret => BinOp::Pow,
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            TokenKind::AndAnd => BinOp::And,
            TokenKind::OrOr => BinOp::Or,
            _ => return None,
        })
    }

    /// Pratt expression parser. `min_bp` is the minimum binding power the
    /// caller accepts.
    pub fn expression(&mut self, min_bp: u8) -> ExprResult<Expr> {
        let mut lhs = self.prefix()?;
        loop {
            // `?:` — lowest precedence, right-associative.
            if *self.peek() == TokenKind::Question && min_bp == 0 {
                self.advance();
                let then = self.expression(0)?;
                self.expect(&TokenKind::Colon, "`:` of conditional")?;
                let els = self.expression(0)?;
                lhs = Expr::Cond(Box::new(lhs), Box::new(then), Box::new(els));
                continue;
            }
            let Some(op) = Self::binop_of(self.peek()) else {
                break;
            };
            let bp = op.precedence();
            if bp < min_bp {
                break;
            }
            self.advance();
            // Left-associative: parse the rhs at bp+1. (`^` is also treated
            // left-associatively; the C++ backend emits nested std::pow, so
            // associativity is explicit there anyway.)
            let rhs = self.expression(bp + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn prefix(&mut self) -> ExprResult<Expr> {
        let offset = self.offset();
        match self.advance() {
            TokenKind::Number(n) => Ok(Expr::Num(n)),
            TokenKind::Minus => Ok(Expr::Unary(UnOp::Neg, Box::new(self.expression(8)?))),
            TokenKind::Not => Ok(Expr::Unary(UnOp::Not, Box::new(self.expression(8)?))),
            TokenKind::LParen => {
                let e = self.expression(0)?;
                self.expect(&TokenKind::RParen, "closing `)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => match name.as_str() {
                "true" => Ok(Expr::Bool(true)),
                "false" => Ok(Expr::Bool(false)),
                _ => {
                    if *self.peek() == TokenKind::LParen {
                        self.advance();
                        let mut args = Vec::new();
                        if *self.peek() != TokenKind::RParen {
                            loop {
                                args.push(self.expression(0)?);
                                if *self.peek() == TokenKind::Comma {
                                    self.advance();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect(&TokenKind::RParen, "closing `)` of call")?;
                        Ok(Expr::Call(name, args))
                    } else {
                        Ok(Expr::Var(name))
                    }
                }
            },
            other => Err(ExprError::Parse {
                message: format!("unexpected token {other:?} at start of expression"),
                offset,
            }),
        }
    }

    /// Parse one statement of the fragment language.
    pub fn statement(&mut self) -> ExprResult<Stmt> {
        let offset = self.offset();
        match self.peek().clone() {
            TokenKind::Ident(name) if name == "if" => {
                self.advance();
                self.expect(&TokenKind::LParen, "`(` after `if`")?;
                let cond = self.expression(0)?;
                self.expect(&TokenKind::RParen, "`)` after condition")?;
                let then = self.block()?;
                let els = if matches!(self.peek(), TokenKind::Ident(k) if k == "else") {
                    self.advance();
                    if matches!(self.peek(), TokenKind::Ident(k) if k == "if") {
                        // `else if` sugar: wrap the nested if.
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            TokenKind::Ident(name) if name == "while" => {
                self.advance();
                self.expect(&TokenKind::LParen, "`(` after `while`")?;
                let cond = self.expression(0)?;
                self.expect(&TokenKind::RParen, "`)` after condition")?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            TokenKind::Ident(name) if name == "var" => {
                self.advance();
                let var = match self.advance() {
                    TokenKind::Ident(v) => v,
                    other => {
                        return Err(ExprError::Parse {
                            message: format!("expected variable name after `var`, found {other:?}"),
                            offset,
                        })
                    }
                };
                self.expect(&TokenKind::Assign, "`=` in declaration")?;
                let e = self.expression(0)?;
                self.expect(&TokenKind::Semi, "`;` after declaration")?;
                Ok(Stmt::Decl(var, e))
            }
            // Lookahead: `ident =` is an assignment, otherwise an
            // expression statement.
            TokenKind::Ident(name)
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Assign) =>
            {
                self.advance();
                self.advance();
                let e = self.expression(0)?;
                self.expect(&TokenKind::Semi, "`;` after assignment")?;
                Ok(Stmt::Assign(name, e))
            }
            _ => {
                let e = self.expression(0)?;
                self.expect(&TokenKind::Semi, "`;` after expression")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn block(&mut self) -> ExprResult<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut out = Vec::new();
        while *self.peek() != TokenKind::RBrace {
            if self.at_eof() {
                return Err(ExprError::Parse {
                    message: "unterminated block (missing `}`)".into(),
                    offset: self.offset(),
                });
            }
            out.push(self.statement()?);
        }
        self.advance();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(
            e,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Num(1.0)),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::Num(2.0)),
                    Box::new(Expr::Num(3.0))
                ))
            )
        );
    }

    #[test]
    fn left_associativity() {
        let e = parse_expression("10 - 3 - 2").unwrap();
        assert_eq!(e.to_string(), "10 - 3 - 2");
        // ((10-3)-2) = 5, not 10-(3-2)=9 — checked in eval tests too.
        match e {
            Expr::Binary(BinOp::Sub, lhs, _) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::Sub, _, _)));
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn conditional_right_assoc() {
        let e = parse_expression("a ? 1 : b ? 2 : 3").unwrap();
        match e {
            Expr::Cond(_, _, els) => assert!(matches!(*els, Expr::Cond(..))),
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn calls_with_args() {
        let e = parse_expression("max(a, min(b, 3))").unwrap();
        assert_eq!(e.to_string(), "max(a, min(b, 3))");
    }

    #[test]
    fn zero_arg_call_vs_var() {
        assert_eq!(
            parse_expression("F()").unwrap(),
            Expr::Call("F".into(), vec![])
        );
        assert_eq!(parse_expression("F").unwrap(), Expr::Var("F".into()));
    }

    #[test]
    fn bool_literals() {
        assert_eq!(parse_expression("true").unwrap(), Expr::Bool(true));
        assert_eq!(parse_expression("false").unwrap(), Expr::Bool(false));
    }

    #[test]
    fn trailing_input_rejected() {
        assert!(parse_expression("1 + 2 3").is_err());
        assert!(parse_expression("1 +").is_err());
        assert!(parse_expression("(1").is_err());
    }

    #[test]
    fn statement_forms() {
        let ss = parse_statements(
            "var t = 0; GV = 1; if (GV > 0) { t = t + 1; } else if (GV < 0) { t = 2; } while (t < 3) { t = t + 1; } F(t);",
        )
        .unwrap();
        assert_eq!(ss.len(), 5);
        assert!(matches!(ss[0], Stmt::Decl(..)));
        assert!(matches!(ss[1], Stmt::Assign(..)));
        assert!(matches!(ss[2], Stmt::If(..)));
        assert!(matches!(ss[3], Stmt::While(..)));
        assert!(matches!(ss[4], Stmt::Expr(..)));
    }

    #[test]
    fn else_if_desugars() {
        let ss =
            parse_statements("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }").unwrap();
        assert_eq!(ss.len(), 1);
        match &ss[0] {
            Stmt::If(_, _, els) => {
                assert_eq!(els.len(), 1);
                assert!(matches!(&els[0], Stmt::If(..)));
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn empty_fragment_ok() {
        assert!(parse_statements("").unwrap().is_empty());
        assert!(parse_statements("   // just a comment\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn missing_semicolon_reported() {
        let e = parse_statements("x = 1").unwrap_err();
        assert!(e.message().contains(";"), "{e}");
    }

    #[test]
    fn unterminated_block_reported() {
        let e = parse_statements("if (a) { x = 1;").unwrap_err();
        assert!(e.message().contains("}"), "{e}");
    }

    #[test]
    fn equality_vs_assignment_in_expr() {
        // `a == b` inside an expression statement parses as equality.
        let ss = parse_statements("a == 1;").unwrap();
        assert!(matches!(&ss[0], Stmt::Expr(Expr::Binary(BinOp::Eq, _, _))));
    }
}
