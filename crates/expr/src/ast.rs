//! Expression and statement trees for the cost-function language.

use std::fmt;

/// Binary operators, in C precedence families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (floating-point remainder, like C `fmod`)
    Rem,
    /// `^` — power. Not C syntax; emitted as `std::pow(a, b)` by the C++
    /// backend.
    Pow,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// Source-syntax spelling (also valid C++ except `Pow`).
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Pow => "^",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding power for printing with minimal parentheses
    /// (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Rem => 6,
            BinOp::Pow => 7,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Boolean literal (`true` / `false`).
    Bool(bool),
    /// Variable reference — a model variable (`GV`, `P`) or a system
    /// property the estimator injects (`pid`, `tid`, `uid`, `P`, `N`).
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Conditional `cond ? then : else`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Function call — builtin or model-defined cost function.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Number of nodes in this expression tree.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Bool(_) | Expr::Var(_) => 1,
            Expr::Unary(_, e) => 1 + e.node_count(),
            Expr::Binary(_, a, b) => 1 + a.node_count() + b.node_count(),
            Expr::Cond(c, t, f) => 1 + c.node_count() + t.node_count() + f.node_count(),
            Expr::Call(_, args) => 1 + args.iter().map(Expr::node_count).sum::<usize>(),
        }
    }

    /// Collect free variable names (not function names) into `out`,
    /// preserving first-occurrence order without duplicates.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Num(_) | Expr::Bool(_) => {}
            Expr::Unary(_, e) => e.free_vars(out),
            Expr::Binary(_, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Cond(c, t, f) => {
                c.free_vars(out);
                t.free_vars(out);
                f.free_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
        }
    }

    /// Collect called function names into `out` (first occurrence order).
    pub fn called_functions(&self, out: &mut Vec<String>) {
        match self {
            Expr::Call(name, args) => {
                if !out.iter().any(|x| x == name) {
                    out.push(name.clone());
                }
                for a in args {
                    a.called_functions(out);
                }
            }
            Expr::Unary(_, e) => e.called_functions(out),
            Expr::Binary(_, a, b) => {
                a.called_functions(out);
                b.called_functions(out);
            }
            Expr::Cond(c, t, f) => {
                c.called_functions(out);
                t.called_functions(out);
                f.called_functions(out);
            }
            _ => {}
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Unary(op, e) => {
                let sym = match op {
                    UnOp::Neg => "-",
                    UnOp::Not => "!",
                };
                write!(f, "{sym}")?;
                e.fmt_prec(f, 8)
            }
            Expr::Binary(op, a, b) => {
                let p = op.precedence();
                let need = p < parent;
                if need {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, p)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand parenthesized at p+1: our printer treats all
                // binaries as left-associative.
                b.fmt_prec(f, p + 1)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Cond(c, t, e) => {
                let need = parent > 0;
                if need {
                    write!(f, "(")?;
                }
                c.fmt_prec(f, 1)?;
                write!(f, " ? ")?;
                t.fmt_prec(f, 0)?;
                write!(f, " : ")?;
                e.fmt_prec(f, 0)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

/// A statement of the code-fragment language (Figure 7(b) of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `var x = expr;` — declare a (fragment-local) variable.
    Decl(String, Expr),
    /// `x = expr;`
    Assign(String, Expr),
    /// Bare expression statement `expr;` (evaluated for effect/validation).
    Expr(Expr),
    /// `if (cond) { … } else { … }` — else branch optional.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { … }` — the evaluator imposes an iteration cap.
    While(Expr, Vec<Stmt>),
}

impl Stmt {
    /// Number of statement nodes (for metrics/size tests).
    pub fn node_count(&self) -> usize {
        match self {
            Stmt::Decl(..) | Stmt::Assign(..) | Stmt::Expr(..) => 1,
            Stmt::If(_, t, e) => {
                1 + t.iter().map(Stmt::node_count).sum::<usize>()
                    + e.iter().map(Stmt::node_count).sum::<usize>()
            }
            Stmt::While(_, b) => 1 + b.iter().map(Stmt::node_count).sum::<usize>(),
        }
    }

    /// Variables assigned anywhere in this statement (incl. declarations).
    pub fn assigned_vars(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Decl(n, _) | Stmt::Assign(n, _) => {
                if !out.iter().any(|x| x == n) {
                    out.push(n.clone());
                }
            }
            Stmt::Expr(_) => {}
            Stmt::If(_, t, e) => {
                for s in t.iter().chain(e) {
                    s.assigned_vars(out);
                }
            }
            Stmt::While(_, b) => {
                for s in b {
                    s.assigned_vars(out);
                }
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Decl(n, e) => write!(f, "var {n} = {e};"),
            Stmt::Assign(n, e) => write!(f, "{n} = {e};"),
            Stmt::Expr(e) => write!(f, "{e};"),
            Stmt::If(c, t, e) => {
                write!(f, "if ({c}) {{ ")?;
                for s in t {
                    write!(f, "{s} ")?;
                }
                write!(f, "}}")?;
                if !e.is_empty() {
                    write!(f, " else {{ ")?;
                    for s in e {
                        write!(f, "{s} ")?;
                    }
                    write!(f, "}}")?;
                }
                Ok(())
            }
            Stmt::While(c, b) => {
                write!(f, "while ({c}) {{ ")?;
                for s in b {
                    write!(f, "{s} ")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_statements};

    #[test]
    fn display_minimal_parens() {
        let e = parse_expression("(1 + 2) * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + 2) * 3");
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "1 + 2 * 3");
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for src in [
            "a + b * c - d / e",
            "f(x, y + 1) ? 2 : g()",
            "-x ^ 2",
            "!(a && b) || c",
            "a - (b - c)",
            "min(1, max(2, 3))",
        ] {
            let e1 = parse_expression(src).unwrap();
            let e2 = parse_expression(&e1.to_string()).unwrap();
            assert_eq!(e1, e2, "src = {src}");
        }
    }

    #[test]
    fn free_vars_and_calls() {
        let e = parse_expression("FA1(P) + GV * pid - FA1(tid)").unwrap();
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["P", "GV", "pid", "tid"]);
        let mut fns = Vec::new();
        e.called_functions(&mut fns);
        assert_eq!(fns, vec!["FA1"]);
    }

    #[test]
    fn node_counts() {
        assert_eq!(parse_expression("1 + 2").unwrap().node_count(), 3);
        let ss = parse_statements("x = 1; if (x > 0) { y = 2; } else { y = 3; }").unwrap();
        assert_eq!(ss.iter().map(Stmt::node_count).sum::<usize>(), 4);
    }

    #[test]
    fn assigned_vars() {
        let ss = parse_statements("GV = 1; if (GV > 0) { P = 4; }").unwrap();
        let mut vars = Vec::new();
        for s in &ss {
            s.assigned_vars(&mut vars);
        }
        assert_eq!(vars, vec!["GV", "P"]);
    }
}
