//! Slot-resolved precompiled expressions (ablation A1 in DESIGN.md).
//!
//! The tree-walking evaluator in [`crate::eval`] looks variables up in a
//! hash map on every reference. During simulation the same cost function is
//! evaluated millions of times with the same *shape* of environment, so
//! this module resolves every variable to a dense slot index once
//! ([`Slots`]) and compiles the expression into a closure tree operating on
//! a flat `&[f64]` frame. `bench_expr` compares the two strategies.
//!
//! Restrictions relative to the interpreter (checked at compile time):
//! user-function calls are inlined (recursion is rejected), and all values
//! are numeric — boolean subexpressions are represented as 0.0/1.0 with C
//! truthiness, exactly matching the generated C++.

use crate::ast::{BinOp, Expr, UnOp};
use crate::env::Env;
use crate::error::{ExprError, ExprResult};
use std::collections::HashMap;

/// A mapping from variable names to dense frame slots.
#[derive(Debug, Clone, Default)]
pub struct Slots {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl Slots {
    /// Empty slot table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its slot.
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    /// Slot of `name` if already interned.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Slot names in slot order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Build a frame from `env`, using 0.0 for unset variables.
    pub fn frame_from_env(&self, env: &Env) -> Vec<f64> {
        self.names
            .iter()
            .map(|n| env.get_var(n).and_then(|v| v.as_num().ok()).unwrap_or(0.0))
            .collect()
    }
}

enum Op {
    Const(f64),
    Load(usize),
    Unary(UnOp, Box<Op>),
    Binary(BinOp, Box<Op>, Box<Op>),
    Cond(Box<Op>, Box<Op>, Box<Op>),
    Builtin(fn(&[f64]) -> ExprResult<f64>, Vec<Op>),
}

/// A compiled expression: evaluate with [`CompiledExpr::eval`] against a
/// frame laid out by the associated [`Slots`].
pub struct CompiledExpr {
    root: Op,
    /// Number of slots the frame must have.
    pub frame_len: usize,
}

impl CompiledExpr {
    /// Compile `expr`, interning variables into `slots` and inlining any
    /// user functions defined in `env`.
    pub fn compile(expr: &Expr, env: &Env, slots: &mut Slots) -> ExprResult<Self> {
        let mut inlining: Vec<String> = Vec::new();
        let root = lower(expr, env, slots, &mut inlining, &HashMap::new())?;
        Ok(Self {
            root,
            frame_len: slots.len(),
        })
    }

    /// Evaluate against `frame` (length must be ≥ `frame_len`).
    pub fn eval(&self, frame: &[f64]) -> ExprResult<f64> {
        debug_assert!(frame.len() >= self.frame_len);
        eval_op(&self.root, frame)
    }
}

fn lower(
    e: &Expr,
    env: &Env,
    slots: &mut Slots,
    inlining: &mut Vec<String>,
    substitutions: &HashMap<String, Op>,
) -> ExprResult<Op> {
    Ok(match e {
        Expr::Num(n) => Op::Const(*n),
        Expr::Bool(b) => Op::Const(if *b { 1.0 } else { 0.0 }),
        Expr::Var(name) => {
            if let Some(op) = substitutions.get(name) {
                clone_op(op)
            } else {
                Op::Load(slots.intern(name))
            }
        }
        Expr::Unary(op, inner) => Op::Unary(
            *op,
            Box::new(lower(inner, env, slots, inlining, substitutions)?),
        ),
        Expr::Binary(op, a, b) => Op::Binary(
            *op,
            Box::new(lower(a, env, slots, inlining, substitutions)?),
            Box::new(lower(b, env, slots, inlining, substitutions)?),
        ),
        Expr::Cond(c, t, f) => Op::Cond(
            Box::new(lower(c, env, slots, inlining, substitutions)?),
            Box::new(lower(t, env, slots, inlining, substitutions)?),
            Box::new(lower(f, env, slots, inlining, substitutions)?),
        ),
        Expr::Call(name, args) => {
            if let Some((arity, f)) = Env::builtin(name) {
                if args.len() != arity {
                    return Err(ExprError::eval(format!(
                        "builtin `{name}` expects {arity} argument(s), got {}",
                        args.len()
                    )));
                }
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(lower(a, env, slots, inlining, substitutions)?);
                }
                Op::Builtin(f, ops)
            } else {
                let def = env.get_function(name).ok_or_else(|| {
                    ExprError::eval(format!("undefined function `{name}` (cannot compile)"))
                })?;
                if inlining.iter().any(|n| n == name) {
                    return Err(ExprError::eval(format!(
                        "recursive cost function `{name}` cannot be compiled"
                    )));
                }
                if args.len() != def.params.len() {
                    return Err(ExprError::eval(format!(
                        "function `{name}` expects {} argument(s), got {}",
                        def.params.len(),
                        args.len()
                    )));
                }
                // Inline: lower each argument, substitute for parameters in
                // the body.
                let mut subst = HashMap::new();
                for (p, a) in def.params.iter().zip(args) {
                    subst.insert(p.clone(), lower(a, env, slots, inlining, substitutions)?);
                }
                inlining.push(name.clone());
                let body = def.body.clone();
                let lowered = lower(&body, env, slots, inlining, &subst)?;
                inlining.pop();
                lowered
            }
        }
    })
}

fn clone_op(op: &Op) -> Op {
    match op {
        Op::Const(n) => Op::Const(*n),
        Op::Load(i) => Op::Load(*i),
        Op::Unary(o, a) => Op::Unary(*o, Box::new(clone_op(a))),
        Op::Binary(o, a, b) => Op::Binary(*o, Box::new(clone_op(a)), Box::new(clone_op(b))),
        Op::Cond(c, t, f) => Op::Cond(
            Box::new(clone_op(c)),
            Box::new(clone_op(t)),
            Box::new(clone_op(f)),
        ),
        Op::Builtin(f, args) => Op::Builtin(*f, args.iter().map(clone_op).collect()),
    }
}

fn eval_op(op: &Op, frame: &[f64]) -> ExprResult<f64> {
    Ok(match op {
        Op::Const(n) => *n,
        Op::Load(i) => frame[*i],
        Op::Unary(UnOp::Neg, a) => -eval_op(a, frame)?,
        Op::Unary(UnOp::Not, a) => {
            if eval_op(a, frame)? != 0.0 {
                0.0
            } else {
                1.0
            }
        }
        Op::Binary(op2, a, b) => {
            let x = eval_op(a, frame)?;
            match op2 {
                BinOp::And => {
                    if x == 0.0 {
                        return Ok(0.0);
                    }
                    return Ok(if eval_op(b, frame)? != 0.0 { 1.0 } else { 0.0 });
                }
                BinOp::Or => {
                    if x != 0.0 {
                        return Ok(1.0);
                    }
                    return Ok(if eval_op(b, frame)? != 0.0 { 1.0 } else { 0.0 });
                }
                _ => {}
            }
            let y = eval_op(b, frame)?;
            match op2 {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return Err(ExprError::eval("division by zero"));
                    }
                    x / y
                }
                BinOp::Rem => {
                    if y == 0.0 {
                        return Err(ExprError::eval("remainder by zero"));
                    }
                    x % y
                }
                BinOp::Pow => x.powf(y),
                BinOp::Eq => (x == y) as u8 as f64,
                BinOp::Ne => (x != y) as u8 as f64,
                BinOp::Lt => (x < y) as u8 as f64,
                BinOp::Le => (x <= y) as u8 as f64,
                BinOp::Gt => (x > y) as u8 as f64,
                BinOp::Ge => (x >= y) as u8 as f64,
                BinOp::And | BinOp::Or => unreachable!(),
            }
        }
        Op::Cond(c, t, f) => {
            if eval_op(c, frame)? != 0.0 {
                eval_op(t, frame)?
            } else {
                eval_op(f, frame)?
            }
        }
        Op::Builtin(f, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_op(a, frame)?);
            }
            f(&vals)?
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{FunctionDef, Value};
    use crate::parser::parse_expression;

    #[test]
    fn compiled_matches_interpreter() {
        let mut env = Env::new();
        env.define_function(FunctionDef::parse("G", &["n"], "n + 1").unwrap());
        env.set_num("P", 8.0);
        env.set_num("pid", 3.0);
        let e = parse_expression("0.5 * G(P) + (pid > 1 ? log2(P) : 0) - min(P, 4)").unwrap();

        let interpreted = e.eval(&mut env).unwrap().as_num().unwrap();

        let mut slots = Slots::new();
        let c = CompiledExpr::compile(&e, &env, &mut slots).unwrap();
        let frame = slots.frame_from_env(&env);
        let compiled = c.eval(&frame).unwrap();

        assert!((interpreted - compiled).abs() < 1e-12);
    }

    #[test]
    fn function_inlining() {
        let mut env = Env::new();
        env.define_function(FunctionDef::parse("F", &["x"], "x * x").unwrap());
        let e = parse_expression("F(3) + F(4)").unwrap();
        let mut slots = Slots::new();
        let c = CompiledExpr::compile(&e, &env, &mut slots).unwrap();
        assert_eq!(slots.len(), 0); // fully constant after inlining
        assert_eq!(c.eval(&[]).unwrap(), 25.0);
    }

    #[test]
    fn nested_composition_inlines() {
        let mut env = Env::new();
        env.define_function(FunctionDef::parse("G", &["n"], "n + 1").unwrap());
        env.define_function(FunctionDef::parse("F", &["n"], "G(n) * G(n + 1)").unwrap());
        let e = parse_expression("F(y)").unwrap();
        let mut slots = Slots::new();
        let c = CompiledExpr::compile(&e, &env, &mut slots).unwrap();
        let y = slots.get("y").unwrap();
        let mut frame = vec![0.0; slots.len()];
        frame[y] = 2.0;
        assert_eq!(c.eval(&frame).unwrap(), 12.0);
    }

    #[test]
    fn recursion_rejected_at_compile_time() {
        let mut env = Env::new();
        env.define_function(FunctionDef::parse("R", &[], "R()").unwrap());
        let e = parse_expression("R()").unwrap();
        let mut slots = Slots::new();
        let err = match CompiledExpr::compile(&e, &env, &mut slots) {
            Err(err) => err,
            Ok(_) => panic!("recursive function compiled"),
        };
        assert!(err.message().contains("recursive"), "{err}");
    }

    #[test]
    fn frame_from_env_defaults_missing_to_zero() {
        let mut env = Env::new();
        env.set_var("a", Value::Num(5.0));
        let mut slots = Slots::new();
        slots.intern("a");
        slots.intern("b");
        assert_eq!(slots.frame_from_env(&env), vec![5.0, 0.0]);
    }

    #[test]
    fn c_truthiness_in_compiled_logic() {
        let env = Env::new();
        let e = parse_expression("(2 && 3) + (0 || 7)").unwrap();
        let mut slots = Slots::new();
        let c = CompiledExpr::compile(&e, &env, &mut slots).unwrap();
        // (true=1) + (7!=0 → 1) = 2
        assert_eq!(c.eval(&[]).unwrap(), 2.0);
    }

    #[test]
    fn slots_dedupe() {
        let mut slots = Slots::new();
        assert_eq!(slots.intern("x"), 0);
        assert_eq!(slots.intern("y"), 1);
        assert_eq!(slots.intern("x"), 0);
        assert_eq!(slots.len(), 2);
        assert_eq!(slots.names(), &["x".to_string(), "y".to_string()]);
    }
}
