//! C++ emission for expressions, statements and cost-function definitions.
//!
//! This is the expression-level half of the paper's UML→C++ transformation:
//! the PMP generator (prophet-codegen) calls into this module to render
//! cost functions such as
//!
//! ```cpp
//! double FA1(){ return 0.04 + 0.01 * P; };
//! ```
//!
//! matching the shape of Figure 8(a), lines 31–54, and to render associated
//! code fragments (Figure 8(b), lines 72–75).

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::env::FunctionDef;

/// Render an expression as C++ source.
///
/// Differences from the `Display` form of [`Expr`]: the power operator becomes
/// `std::pow(a, b)` and boolean literals keep their C++ spelling.
pub fn expr_to_cpp(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

fn write_expr(out: &mut String, e: &Expr, parent: u8) {
    match e {
        Expr::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Expr::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Expr::Var(v) => out.push_str(v),
        Expr::Unary(op, inner) => {
            out.push_str(match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            });
            write_expr(out, inner, 8);
        }
        Expr::Binary(BinOp::Pow, a, b) => {
            out.push_str("std::pow(");
            write_expr(out, a, 0);
            out.push_str(", ");
            write_expr(out, b, 0);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            let p = op.precedence();
            let need = p < parent;
            if need {
                out.push('(');
            }
            write_expr(out, a, p);
            out.push(' ');
            out.push_str(op.symbol());
            out.push(' ');
            write_expr(out, b, p + 1);
            if need {
                out.push(')');
            }
        }
        Expr::Cond(c, t, f) => {
            let need = parent > 0;
            if need {
                out.push('(');
            }
            write_expr(out, c, 1);
            out.push_str(" ? ");
            write_expr(out, t, 0);
            out.push_str(" : ");
            write_expr(out, f, 0);
            if need {
                out.push(')');
            }
        }
        Expr::Call(name, args) => {
            // Builtins map to the <cmath> names used by CSIM-era C++.
            let cpp_name = match name.as_str() {
                "abs" => "std::fabs",
                "floor" => "std::floor",
                "ceil" => "std::ceil",
                "round" => "std::round",
                "sqrt" => "std::sqrt",
                "exp" => "std::exp",
                "log" => "std::log",
                "log2" => "std::log2",
                "log10" => "std::log10",
                "sin" => "std::sin",
                "cos" => "std::cos",
                "tanh" => "std::tanh",
                "min" => "std::min",
                "max" => "std::max",
                "pow" => "std::pow",
                "fmod" => "std::fmod",
                other => other,
            };
            out.push_str(cpp_name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
    }
}

/// Render a cost-function definition as a C++ function, in the one-line
/// style of Figure 8(a): `double FA1(){ return ...; };`
///
/// Parameters are typed `double` — the paper passes `pid` etc. as plain
/// numeric parameters (`double FSA2(int pid)` appears in the figure; using
/// `double` uniformly keeps the interpreted and generated semantics
/// identical).
pub fn function_to_cpp(def: &FunctionDef) -> String {
    let params = def
        .params
        .iter()
        .map(|p| format!("double {p}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "double {}({}){{ return {}; }};",
        def.name,
        params,
        expr_to_cpp(&def.body)
    )
}

/// Render a statement at the given indent depth (two spaces per level).
pub fn stmt_to_cpp(s: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    write_stmt(&mut out, s, indent);
    out
}

/// Render a whole fragment (sequence of statements).
pub fn fragment_to_cpp(stmts: &[Stmt], indent: usize) -> String {
    let mut out = String::new();
    for s in stmts {
        write_stmt(&mut out, s, indent);
    }
    out
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, s: &Stmt, indent: usize) {
    match s {
        Stmt::Decl(n, e) => {
            pad(out, indent);
            out.push_str(&format!("double {n} = {};\n", expr_to_cpp(e)));
        }
        Stmt::Assign(n, e) => {
            pad(out, indent);
            out.push_str(&format!("{n} = {};\n", expr_to_cpp(e)));
        }
        Stmt::Expr(e) => {
            pad(out, indent);
            out.push_str(&format!("{};\n", expr_to_cpp(e)));
        }
        Stmt::If(c, t, els) => {
            pad(out, indent);
            out.push_str(&format!("if ({}) {{\n", expr_to_cpp(c)));
            for s in t {
                write_stmt(out, s, indent + 1);
            }
            pad(out, indent);
            out.push('}');
            if els.is_empty() {
                out.push('\n');
            } else if els.len() == 1 {
                if let Stmt::If(..) = &els[0] {
                    // `else if` chain — matches the paper's Figure 8(b)
                    // if-else-if rendering of UML decision nodes.
                    out.push_str(" else ");
                    let mut chain = String::new();
                    write_stmt(&mut chain, &els[0], indent);
                    out.push_str(chain.trim_start());
                } else {
                    out.push_str(" else {\n");
                    write_stmt(out, &els[0], indent + 1);
                    pad(out, indent);
                    out.push_str("}\n");
                }
            } else {
                out.push_str(" else {\n");
                for s in els {
                    write_stmt(out, s, indent + 1);
                }
                pad(out, indent);
                out.push_str("}\n");
            }
        }
        Stmt::While(c, body) => {
            pad(out, indent);
            out.push_str(&format!("while ({}) {{\n", expr_to_cpp(c)));
            for s in body {
                write_stmt(out, s, indent + 1);
            }
            pad(out, indent);
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_statements};

    #[test]
    fn pow_becomes_std_pow() {
        let e = parse_expression("2 ^ n + 1").unwrap();
        assert_eq!(expr_to_cpp(&e), "std::pow(2, n) + 1");
    }

    #[test]
    fn builtins_map_to_cmath() {
        let e = parse_expression("log2(P) + min(a, b)").unwrap();
        assert_eq!(expr_to_cpp(&e), "std::log2(P) + std::min(a, b)");
    }

    #[test]
    fn user_calls_pass_through() {
        let e = parse_expression("FA1(P)").unwrap();
        assert_eq!(expr_to_cpp(&e), "FA1(P)");
    }

    #[test]
    fn figure8_style_function() {
        let def = FunctionDef::parse("FA1", &[], "0.04 + 0.01 * P").unwrap();
        assert_eq!(
            function_to_cpp(&def),
            "double FA1(){ return 0.04 + 0.01 * P; };"
        );
    }

    #[test]
    fn parameterized_function() {
        let def = FunctionDef::parse("FSA2", &["pid"], "0.1 * pid").unwrap();
        assert_eq!(
            function_to_cpp(&def),
            "double FSA2(double pid){ return 0.1 * pid; };"
        );
    }

    #[test]
    fn fragment_rendering() {
        let ss = parse_statements("GV = 1; P = 4;").unwrap();
        assert_eq!(fragment_to_cpp(&ss, 1), "  GV = 1;\n  P = 4;\n");
    }

    #[test]
    fn if_else_if_chain() {
        let ss =
            parse_statements("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }").unwrap();
        let cpp = stmt_to_cpp(&ss[0], 0);
        assert_eq!(
            cpp,
            "if (a) {\n  x = 1;\n} else if (b) {\n  x = 2;\n} else {\n  x = 3;\n}\n"
        );
    }

    #[test]
    fn while_and_decl() {
        let ss = parse_statements("var i = 0; while (i < 3) { i = i + 1; }").unwrap();
        let cpp = fragment_to_cpp(&ss, 0);
        assert!(
            cpp.starts_with("double i = 0;\nwhile (i < 3) {\n  i = i + 1;\n}\n"),
            "{cpp}"
        );
    }

    #[test]
    fn parens_preserved_where_needed() {
        let e = parse_expression("(a + b) * c").unwrap();
        assert_eq!(expr_to_cpp(&e), "(a + b) * c");
        let e = parse_expression("a - (b - c)").unwrap();
        assert_eq!(expr_to_cpp(&e), "a - (b - c)");
    }
}
