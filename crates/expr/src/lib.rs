//! # prophet-expr
//!
//! The cost-function and code-fragment language of the Performance Prophet
//! reproduction (Pllana et al., ICPP-W 2008).
//!
//! In the paper, every performance modeling element may carry:
//!
//! * a **cost function** — e.g. `TK6 = FK6(...)` for Livermore kernel 6, or
//!   the `FA1 .. FSA2` functions of the Figure 7/8 sample model. Cost
//!   functions model the execution time of a code block; they may take
//!   model variables and system properties (`P`, `pid`, `tid`, `uid`, …)
//!   as parameters and may *compose other functions defined in the model*;
//! * an associated **code fragment** — e.g. Figure 7(b) associates with
//!   element `A1` a fragment that assigns the globals `GV` and `P`.
//!
//! The original system carried these as C++ source strings pasted into the
//! generated PMP. Because this reproduction also *executes* models directly
//! (the Performance Estimator interprets them against the simulation
//! engine), the language is implemented for real:
//!
//! * [`token`] / [`parser`] — lexer and Pratt parser for a C-like
//!   expression grammar (arithmetic, comparisons, logicals, `?:`, calls),
//! * [`ast`] — expression and statement trees,
//! * [`mod@env`] — evaluation environment (variables, user functions,
//!   deterministic builtins),
//! * [`eval`] — tree-walking evaluator with recursion/iteration limits,
//! * [`compile`] — slot-resolved precompiled form (ablation A1 in
//!   DESIGN.md),
//! * [`cpp`] — C++ emission used by the PMP generator, so the emitted
//!   model text matches the paper's Figure 8 listing shape.
//!
//! ## Quickstart
//!
//! ```
//! use prophet_expr::{parse_expression, Env, Value};
//!
//! let e = parse_expression("0.04 + 0.01 * log2(P)").unwrap();
//! let mut env = Env::new();
//! env.set_var("P", Value::Num(8.0));
//! assert!((e.eval(&mut env).unwrap().as_num().unwrap() - 0.07).abs() < 1e-12);
//! ```

pub mod ast;
pub mod compile;
pub mod cpp;
pub mod env;
pub mod error;
pub mod eval;
pub mod parser;
pub mod token;

pub use ast::{BinOp, Expr, Stmt, UnOp};
pub use compile::{CompiledExpr, Slots};
pub use env::{Env, FunctionDef, Value};
pub use error::{ExprError, ExprResult};
pub use eval::exec_fragment;
pub use parser::{parse_expression, parse_statements, Parser};
pub use token::{Token, TokenKind, Tokenizer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_cost_function_composition() {
        // A cost function may be composed from other model functions
        // (Section 4 of the paper).
        let mut env = Env::new();
        env.define_function(FunctionDef::parse("FBase", &[], "0.5").unwrap());
        env.define_function(FunctionDef::parse("FA1", &["n"], "FBase() * n + 1").unwrap());
        let e = parse_expression("FA1(4)").unwrap();
        assert_eq!(e.eval(&mut env).unwrap(), Value::Num(3.0));
    }

    #[test]
    fn end_to_end_code_fragment() {
        // Figure 7(b): the fragment associated with A1 assigns GV and P.
        let stmts = parse_statements("GV = 1; P = 4;").unwrap();
        let mut env = Env::new();
        env.set_var("GV", Value::Num(0.0));
        env.set_var("P", Value::Num(0.0));
        for s in &stmts {
            s.exec(&mut env).unwrap();
        }
        assert_eq!(env.get_var("GV"), Some(Value::Num(1.0)));
        assert_eq!(env.get_var("P"), Some(Value::Num(4.0)));
    }
}
