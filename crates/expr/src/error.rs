//! Errors for lexing, parsing and evaluation of the cost-function language.

use std::fmt;

/// Result alias for this crate.
pub type ExprResult<T> = Result<T, ExprError>;

/// A lexing, parsing or evaluation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// Lexer error at a byte offset within the source.
    Lex {
        /// Description of the problem.
        message: String,
        /// Byte offset into the source string.
        offset: usize,
    },
    /// Parser error at a byte offset within the source.
    Parse {
        /// Description of the problem.
        message: String,
        /// Byte offset into the source string.
        offset: usize,
    },
    /// Runtime evaluation error (undefined variable, type mismatch, …).
    Eval {
        /// Description of the problem.
        message: String,
    },
}

impl ExprError {
    pub(crate) fn eval(message: impl Into<String>) -> Self {
        ExprError::Eval {
            message: message.into(),
        }
    }

    /// The error message, independent of kind.
    pub fn message(&self) -> &str {
        match self {
            ExprError::Lex { message, .. }
            | ExprError::Parse { message, .. }
            | ExprError::Eval { message } => message,
        }
    }
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Lex { message, offset } => {
                write!(f, "lex error at offset {offset}: {message}")
            }
            ExprError::Parse { message, offset } => {
                write!(f, "parse error at offset {offset}: {message}")
            }
            ExprError::Eval { message } => write!(f, "evaluation error: {message}"),
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_kinds() {
        assert!(ExprError::Lex {
            message: "bad char".into(),
            offset: 3
        }
        .to_string()
        .contains("offset 3"));
        assert!(ExprError::eval("undefined variable `x`")
            .to_string()
            .contains("undefined"));
    }
}
