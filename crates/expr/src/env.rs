//! Evaluation environment: values, variables, user functions, builtins.

use crate::ast::Expr;
use crate::error::{ExprError, ExprResult};
use crate::parser::parse_expression;
use std::collections::HashMap;

/// A runtime value of the cost-function language.
///
/// The paper's models use `int`/`double` variables and boolean branch
/// guards; one numeric type (f64) plus booleans covers both without the
/// implicit-conversion pitfalls of C.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Numeric value (models both `int` and `double`).
    Num(f64),
    /// Boolean value (guards).
    Bool(bool),
}

impl Value {
    /// Numeric view; errors on booleans.
    pub fn as_num(self) -> ExprResult<f64> {
        match self {
            Value::Num(n) => Ok(n),
            Value::Bool(_) => Err(ExprError::eval("expected a number, found a boolean")),
        }
    }

    /// Boolean view. Numbers coerce C-style: non-zero is true. This matches
    /// the paper's C++ target semantics for guards like `GV`.
    pub fn truthy(self) -> bool {
        match self {
            Value::Bool(b) => b,
            Value::Num(n) => n != 0.0,
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// A model-defined function (cost function or helper), e.g. `FA1` of the
/// paper's sample model.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Function name (`FA1`, `FK6`, …).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body expression (the function's return value).
    pub body: Expr,
}

impl FunctionDef {
    /// Create a definition from an already-parsed body.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Expr) -> Self {
        Self {
            name: name.into(),
            params,
            body,
        }
    }

    /// Parse `body` as the function's return expression.
    pub fn parse(name: &str, params: &[&str], body: &str) -> ExprResult<Self> {
        Ok(Self {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            body: parse_expression(body)?,
        })
    }
}

/// Signature of a builtin: fixed arity table is checked by the evaluator.
pub(crate) type Builtin = fn(&[f64]) -> ExprResult<f64>;

/// The evaluation environment: variable bindings, user-defined functions,
/// and the deterministic builtin table.
///
/// System properties that the paper passes to `execute()` — `uid`, `pid`,
/// `tid`, and machine parameters like `P` (number of processors) — are
/// plain variables set by the estimator before evaluating a cost function.
#[derive(Debug, Clone)]
pub struct Env {
    vars: HashMap<String, Value>,
    functions: HashMap<String, FunctionDef>,
    /// Evaluation guards (shared so nested scopes inherit them).
    pub(crate) max_call_depth: usize,
    pub(crate) max_loop_iters: usize,
}

impl Default for Env {
    fn default() -> Self {
        Self::new()
    }
}

impl Env {
    /// Empty environment with default guards (call depth 64,
    /// 1,000,000 loop iterations).
    pub fn new() -> Self {
        Self {
            vars: HashMap::new(),
            functions: HashMap::new(),
            max_call_depth: 64,
            max_loop_iters: 1_000_000,
        }
    }

    /// Set (or overwrite) a variable.
    pub fn set_var(&mut self, name: impl Into<String>, value: Value) {
        self.vars.insert(name.into(), value);
    }

    /// Convenience: set a numeric variable.
    pub fn set_num(&mut self, name: impl Into<String>, value: f64) {
        self.set_var(name, Value::Num(value));
    }

    /// Read a variable.
    pub fn get_var(&self, name: &str) -> Option<Value> {
        self.vars.get(name).copied()
    }

    /// True if the variable exists.
    pub fn has_var(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Remove a variable (used to pop fragment-local declarations).
    pub fn remove_var(&mut self, name: &str) -> Option<Value> {
        self.vars.remove(name)
    }

    /// Define (or replace) a model function.
    pub fn define_function(&mut self, def: FunctionDef) {
        self.functions.insert(def.name.clone(), def);
    }

    /// Look up a model function.
    pub fn get_function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.get(name)
    }

    /// Iterate over defined functions (unordered).
    pub fn functions(&self) -> impl Iterator<Item = &FunctionDef> {
        self.functions.values()
    }

    /// Number of defined variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Look up a builtin by name, returning `(arity, fn)`.
    pub(crate) fn builtin(name: &str) -> Option<(usize, Builtin)> {
        // All builtins are pure and deterministic; anything stochastic
        // lives in the simulation engine's random streams instead, so that
        // model evaluation is reproducible (DESIGN.md §5).
        let b: (usize, Builtin) = match name {
            "abs" => (1, |a| Ok(a[0].abs())),
            "floor" => (1, |a| Ok(a[0].floor())),
            "ceil" => (1, |a| Ok(a[0].ceil())),
            "round" => (1, |a| Ok(a[0].round())),
            "sqrt" => (1, |a| {
                if a[0] < 0.0 {
                    Err(ExprError::eval(format!("sqrt of negative number {}", a[0])))
                } else {
                    Ok(a[0].sqrt())
                }
            }),
            "exp" => (1, |a| Ok(a[0].exp())),
            "log" => (1, |a| guard_log(a[0], f64::ln)),
            "log2" => (1, |a| guard_log(a[0], f64::log2)),
            "log10" => (1, |a| guard_log(a[0], f64::log10)),
            "sin" => (1, |a| Ok(a[0].sin())),
            "cos" => (1, |a| Ok(a[0].cos())),
            "tanh" => (1, |a| Ok(a[0].tanh())),
            "min" => (2, |a| Ok(a[0].min(a[1]))),
            "max" => (2, |a| Ok(a[0].max(a[1]))),
            "pow" => (2, |a| Ok(a[0].powf(a[1]))),
            "fmod" => (2, |a| {
                if a[1] == 0.0 {
                    Err(ExprError::eval("fmod by zero"))
                } else {
                    Ok(a[0] % a[1])
                }
            }),
            _ => return None,
        };
        Some(b)
    }

    /// Names of all builtins (for diagnostics and the checker).
    pub fn builtin_names() -> &'static [&'static str] {
        &[
            "abs", "floor", "ceil", "round", "sqrt", "exp", "log", "log2", "log10", "sin", "cos",
            "tanh", "min", "max", "pow", "fmod",
        ]
    }
}

fn guard_log(x: f64, f: fn(f64) -> f64) -> ExprResult<f64> {
    if x <= 0.0 {
        Err(ExprError::eval(format!(
            "logarithm of non-positive number {x}"
        )))
    } else {
        Ok(f(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Num(2.0).as_num().unwrap(), 2.0);
        assert!(Value::Bool(true).as_num().is_err());
        assert!(Value::Num(1.0).truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(Value::Bool(true).truthy());
    }

    #[test]
    fn env_vars() {
        let mut env = Env::new();
        env.set_num("P", 16.0);
        assert_eq!(env.get_var("P"), Some(Value::Num(16.0)));
        assert!(env.has_var("P"));
        env.remove_var("P");
        assert!(!env.has_var("P"));
    }

    #[test]
    fn builtins_present_and_consistent() {
        for name in Env::builtin_names() {
            assert!(Env::builtin(name).is_some(), "missing builtin {name}");
        }
        assert!(Env::builtin("nope").is_none());
    }

    #[test]
    fn builtin_guards() {
        let (_, sqrt) = Env::builtin("sqrt").unwrap();
        assert!(sqrt(&[-1.0]).is_err());
        let (_, log) = Env::builtin("log").unwrap();
        assert!(log(&[0.0]).is_err());
        let (_, fmod) = Env::builtin("fmod").unwrap();
        assert!(fmod(&[1.0, 0.0]).is_err());
        assert_eq!(fmod(&[7.0, 4.0]).unwrap(), 3.0);
    }

    #[test]
    fn function_def_parse() {
        let f = FunctionDef::parse("FA1", &["x"], "x * 2 + 1").unwrap();
        assert_eq!(f.params, vec!["x"]);
        assert_eq!(f.body.to_string(), "x * 2 + 1");
    }
}
