//! Tree-walking evaluator for expressions and statements.
//!
//! Guards: user-function call depth is limited by [`Env::new`]'s
//! `max_call_depth` (cost functions may compose each other — Section 4 —
//! but accidental infinite recursion must fail cleanly), and `while` loops
//! are limited by `max_loop_iters`.

use crate::ast::{BinOp, Expr, Stmt, UnOp};
use crate::env::{Env, Value};
use crate::error::{ExprError, ExprResult};

impl Expr {
    /// Evaluate this expression in `env`.
    pub fn eval(&self, env: &mut Env) -> ExprResult<Value> {
        eval_expr(self, env, 0)
    }
}

impl Stmt {
    /// Execute this statement against `env`. Declarations (`var`) bind into
    /// `env` directly; the caller decides the lifetime of fragment locals
    /// (the estimator pops them after the fragment runs).
    pub fn exec(&self, env: &mut Env) -> ExprResult<()> {
        exec_stmt(self, env, 0)
    }
}

/// Execute a whole fragment in order.
pub fn exec_fragment(stmts: &[Stmt], env: &mut Env) -> ExprResult<()> {
    for s in stmts {
        exec_stmt(s, env, 0)?;
    }
    Ok(())
}

fn eval_expr(e: &Expr, env: &mut Env, depth: usize) -> ExprResult<Value> {
    if depth > env.max_call_depth {
        return Err(ExprError::eval(format!(
            "call depth exceeded {} (recursive cost function?)",
            env.max_call_depth
        )));
    }
    match e {
        Expr::Num(n) => Ok(Value::Num(*n)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::Var(name) => env
            .get_var(name)
            .ok_or_else(|| ExprError::eval(format!("undefined variable `{name}`"))),
        Expr::Unary(op, inner) => {
            let v = eval_expr(inner, env, depth)?;
            match op {
                UnOp::Neg => Ok(Value::Num(-v.as_num()?)),
                UnOp::Not => Ok(Value::Bool(!v.truthy())),
            }
        }
        Expr::Binary(op, a, b) => {
            // Short-circuit logicals first.
            match op {
                BinOp::And => {
                    let va = eval_expr(a, env, depth)?;
                    if !va.truthy() {
                        return Ok(Value::Bool(false));
                    }
                    return Ok(Value::Bool(eval_expr(b, env, depth)?.truthy()));
                }
                BinOp::Or => {
                    let va = eval_expr(a, env, depth)?;
                    if va.truthy() {
                        return Ok(Value::Bool(true));
                    }
                    return Ok(Value::Bool(eval_expr(b, env, depth)?.truthy()));
                }
                _ => {}
            }
            let va = eval_expr(a, env, depth)?;
            let vb = eval_expr(b, env, depth)?;
            // Equality works on like kinds; ordering and arithmetic are
            // numeric.
            match op {
                BinOp::Eq | BinOp::Ne => {
                    let eq = match (va, vb) {
                        (Value::Num(x), Value::Num(y)) => x == y,
                        (Value::Bool(x), Value::Bool(y)) => x == y,
                        _ => return Err(ExprError::eval("cannot compare a number with a boolean")),
                    };
                    Ok(Value::Bool(if *op == BinOp::Eq { eq } else { !eq }))
                }
                _ => {
                    let x = va.as_num()?;
                    let y = vb.as_num()?;
                    match op {
                        BinOp::Add => Ok(Value::Num(x + y)),
                        BinOp::Sub => Ok(Value::Num(x - y)),
                        BinOp::Mul => Ok(Value::Num(x * y)),
                        BinOp::Div => {
                            if y == 0.0 {
                                Err(ExprError::eval("division by zero"))
                            } else {
                                Ok(Value::Num(x / y))
                            }
                        }
                        BinOp::Rem => {
                            if y == 0.0 {
                                Err(ExprError::eval("remainder by zero"))
                            } else {
                                Ok(Value::Num(x % y))
                            }
                        }
                        BinOp::Pow => Ok(Value::Num(x.powf(y))),
                        BinOp::Lt => Ok(Value::Bool(x < y)),
                        BinOp::Le => Ok(Value::Bool(x <= y)),
                        BinOp::Gt => Ok(Value::Bool(x > y)),
                        BinOp::Ge => Ok(Value::Bool(x >= y)),
                        BinOp::And | BinOp::Or | BinOp::Eq | BinOp::Ne => unreachable!(),
                    }
                }
            }
        }
        Expr::Cond(c, t, f) => {
            if eval_expr(c, env, depth)?.truthy() {
                eval_expr(t, env, depth)
            } else {
                eval_expr(f, env, depth)
            }
        }
        Expr::Call(name, args) => {
            // Builtins first (they cannot be shadowed — keeps emitted C++
            // semantics aligned, where these map to <cmath>).
            if let Some((arity, f)) = Env::builtin(name) {
                if args.len() != arity {
                    return Err(ExprError::eval(format!(
                        "builtin `{name}` expects {arity} argument(s), got {}",
                        args.len()
                    )));
                }
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(eval_expr(a, env, depth)?.as_num()?);
                }
                return Ok(Value::Num(f(&vals)?));
            }
            let def = env
                .get_function(name)
                .cloned()
                .ok_or_else(|| ExprError::eval(format!("undefined function `{name}`")))?;
            if args.len() != def.params.len() {
                return Err(ExprError::eval(format!(
                    "function `{name}` expects {} argument(s), got {}",
                    def.params.len(),
                    args.len()
                )));
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, env, depth)?);
            }
            // Bind parameters, saving shadowed outer values for restore.
            let mut saved: Vec<(String, Option<Value>)> = Vec::with_capacity(def.params.len());
            for (p, v) in def.params.iter().zip(vals) {
                saved.push((p.clone(), env.get_var(p)));
                env.set_var(p.clone(), v);
            }
            let result = eval_expr(&def.body, env, depth + 1);
            for (p, old) in saved {
                match old {
                    Some(v) => env.set_var(p, v),
                    None => {
                        env.remove_var(&p);
                    }
                }
            }
            result
        }
    }
}

fn exec_stmt(s: &Stmt, env: &mut Env, depth: usize) -> ExprResult<()> {
    match s {
        Stmt::Decl(name, e) | Stmt::Assign(name, e) => {
            let v = eval_expr(e, env, depth)?;
            env.set_var(name.clone(), v);
            Ok(())
        }
        Stmt::Expr(e) => {
            eval_expr(e, env, depth)?;
            Ok(())
        }
        Stmt::If(c, then, els) => {
            let branch = if eval_expr(c, env, depth)?.truthy() {
                then
            } else {
                els
            };
            for s in branch {
                exec_stmt(s, env, depth)?;
            }
            Ok(())
        }
        Stmt::While(c, body) => {
            let mut iters = 0usize;
            while eval_expr(c, env, depth)?.truthy() {
                iters += 1;
                if iters > env.max_loop_iters {
                    return Err(ExprError::eval(format!(
                        "while loop exceeded {} iterations",
                        env.max_loop_iters
                    )));
                }
                for s in body {
                    exec_stmt(s, env, depth)?;
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::FunctionDef;
    use crate::parser::{parse_expression, parse_statements};

    fn num(src: &str, env: &mut Env) -> f64 {
        parse_expression(src)
            .unwrap()
            .eval(env)
            .unwrap()
            .as_num()
            .unwrap()
    }

    #[test]
    fn arithmetic() {
        let mut env = Env::new();
        assert_eq!(num("1 + 2 * 3", &mut env), 7.0);
        assert_eq!(num("10 - 3 - 2", &mut env), 5.0);
        assert_eq!(num("7 % 4", &mut env), 3.0);
        assert_eq!(num("2 ^ 10", &mut env), 1024.0);
        assert_eq!(num("-2 ^ 2", &mut env), 4.0); // (-2)^2: unary binds tighter
    }

    #[test]
    fn comparisons_and_logic() {
        let mut env = Env::new();
        let e = parse_expression("1 < 2 && 2 <= 2 && 3 > 2 && 3 >= 3 && 1 == 1 && 1 != 2").unwrap();
        assert_eq!(e.eval(&mut env).unwrap(), Value::Bool(true));
        let e = parse_expression("!(1 < 2) || false").unwrap();
        assert_eq!(e.eval(&mut env).unwrap(), Value::Bool(false));
    }

    #[test]
    fn short_circuit_avoids_errors() {
        let mut env = Env::new();
        // Division by zero on the rhs must not be evaluated.
        let e = parse_expression("false && 1 / 0 > 0").unwrap();
        assert_eq!(e.eval(&mut env).unwrap(), Value::Bool(false));
        let e = parse_expression("true || 1 / 0 > 0").unwrap();
        assert_eq!(e.eval(&mut env).unwrap(), Value::Bool(true));
    }

    #[test]
    fn conditional() {
        let mut env = Env::new();
        env.set_num("P", 4.0);
        assert_eq!(num("P > 2 ? 10 : 20", &mut env), 10.0);
        assert_eq!(num("P > 8 ? 10 : 20", &mut env), 20.0);
    }

    #[test]
    fn numeric_truthiness_matches_c() {
        // The paper's guards branch on an int GV; C semantics: non-zero is
        // true.
        let mut env = Env::new();
        env.set_num("GV", 1.0);
        assert_eq!(num("GV ? 1 : 0", &mut env), 1.0);
        env.set_num("GV", 0.0);
        assert_eq!(num("GV ? 1 : 0", &mut env), 0.0);
    }

    #[test]
    fn undefined_variable_reported() {
        let mut env = Env::new();
        let e = parse_expression("missing + 1")
            .unwrap()
            .eval(&mut env)
            .unwrap_err();
        assert!(e.message().contains("missing"), "{e}");
    }

    #[test]
    fn division_by_zero_reported() {
        let mut env = Env::new();
        assert!(parse_expression("1 / 0").unwrap().eval(&mut env).is_err());
        assert!(parse_expression("1 % 0").unwrap().eval(&mut env).is_err());
    }

    #[test]
    fn user_functions_bind_and_restore_params() {
        let mut env = Env::new();
        env.set_num("x", 100.0);
        env.define_function(FunctionDef::parse("F", &["x"], "x * 2").unwrap());
        assert_eq!(num("F(3)", &mut env), 6.0);
        // The outer `x` must be restored after the call.
        assert_eq!(env.get_var("x"), Some(Value::Num(100.0)));
    }

    #[test]
    fn function_composition() {
        let mut env = Env::new();
        env.define_function(FunctionDef::parse("G", &["n"], "n + 1").unwrap());
        env.define_function(FunctionDef::parse("F", &["n"], "G(n) * G(n + 1)").unwrap());
        assert_eq!(num("F(2)", &mut env), 12.0); // (2+1)*(3+1)
    }

    #[test]
    fn recursion_depth_guard() {
        let mut env = Env::new();
        env.define_function(FunctionDef::parse("Loop", &[], "Loop()").unwrap());
        let e = parse_expression("Loop()")
            .unwrap()
            .eval(&mut env)
            .unwrap_err();
        assert!(e.message().contains("call depth"), "{e}");
    }

    #[test]
    fn builtin_arity_checked() {
        let mut env = Env::new();
        let e = parse_expression("min(1)")
            .unwrap()
            .eval(&mut env)
            .unwrap_err();
        assert!(e.message().contains("expects 2"), "{e}");
    }

    #[test]
    fn builtins_evaluate() {
        let mut env = Env::new();
        assert_eq!(num("log2(8)", &mut env), 3.0);
        assert_eq!(num("max(min(5, 3), 2)", &mut env), 3.0);
        assert_eq!(num("pow(2, 8)", &mut env), 256.0);
        assert_eq!(num("ceil(1.2) + floor(1.8)", &mut env), 3.0);
    }

    #[test]
    fn fragment_if_while() {
        let mut env = Env::new();
        let ss = parse_statements("var s = 0; var i = 0; while (i < 5) { s = s + i; i = i + 1; }")
            .unwrap();
        exec_fragment(&ss, &mut env).unwrap();
        assert_eq!(env.get_var("s"), Some(Value::Num(10.0)));
    }

    #[test]
    fn loop_iteration_guard() {
        let mut env = Env::new();
        env.max_loop_iters = 10;
        let ss = parse_statements("var i = 0; while (true) { i = i + 1; }").unwrap();
        let e = exec_fragment(&ss, &mut env).unwrap_err();
        assert!(e.message().contains("iterations"), "{e}");
    }

    #[test]
    fn mixed_kind_equality_rejected() {
        let mut env = Env::new();
        let e = parse_expression("true == 1")
            .unwrap()
            .eval(&mut env)
            .unwrap_err();
        assert!(e.message().contains("compare"), "{e}");
    }
}
