//! The router's request handling: route, forward, retry, aggregate.
//!
//! | endpoint | routed how |
//! |---|---|
//! | `POST /v1/check` \| `/v1/estimate` \| `/v1/sweep` \| `/v1/optimize` | to the shard owning the body's `(model, MCF)` digest |
//! | `GET /v1/models` | round-robin over healthy shards |
//! | `GET /v1/metrics` | fan-out: per-shard sections + fleet totals |
//! | `GET /v1/shards` | the router's own view: health + routing counters |
//! | `POST /v1/shards` | token-checked elastic membership: join/leave with handoff |
//! | `POST /v1/shutdown` | token-checked, broadcast to every shard, then drains the router |
//!
//! **Elastic membership** (`POST /v1/shards`, body
//! `{"add": ["h:p", ...], "remove": ["h:p", ...]}`) rebuilds the ring
//! under an epoch-stamped snapshot swap: readers route on an immutable
//! [`FleetView`] loaded from an atomic pointer — no locks on the hot
//! path — while the single writer validates the change, warms every
//! moved key's *new* owner (`POST /v1/warm` on the shard: a disk hit
//! under a shared store, a compile-prime otherwise), installs the new
//! view, and only then evicts the moved keys from their surviving old
//! owners. Consistent hashing bounds the churn: only ~K/N of the keys
//! change owner on a single join or leave, and never between
//! survivors.
//!
//! Digest routing is what makes scale-out *compile-once* scale-out: the
//! router resolves the model exactly like a shard would
//! ([`resolve_model`]/[`resolve_mcf`] are the shard's own functions)
//! and hashes the same [`ArtifactKey`] the shard pools sessions by, so
//! every repeat of a model — inline XML or by name — lands on the one
//! shard that already compiled it.
//!
//! Failover is the ring's successor order: a transport failure marks
//! the shard down and moves to the next shard, so a killed shard costs
//! clients a retry inside the router, never an error. `5xx` answers
//! also fail over (the next shard may be healthier), but the shard is
//! not marked down — it answered, so its transport works. `4xx`
//! answers are the client's problem and are forwarded as-is.

use crate::ring::{route_key, Ring};
use crate::shard::Shard;
use prophet_core::ArtifactKey;
use prophet_serve::api::{bearer_authorized, resolve_mcf, resolve_model};
use prophet_serve::http::{Request, Response};
use prophet_serve::json::{self, Json};
use prophet_serve::metrics::Metrics;
use prophet_serve::Handler;
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Routing counters, all relaxed atomics (same discipline as the serve
/// metrics: observability never takes a lock on the hot path).
#[derive(Debug, Default)]
pub struct RouterCounters {
    /// Requests answered by a shard.
    pub forwards: AtomicU64,
    /// Extra attempts past the first shard (failovers).
    pub retries: AtomicU64,
    /// Requests no shard could answer (502s).
    pub no_shard: AtomicU64,
    /// Round-robin cursor for un-keyed forwards (`GET /v1/models`).
    rr: AtomicUsize,
}

/// An immutable fleet snapshot: the membership, its ring, and the
/// epoch that stamped it. Workers route whole requests against one
/// view, so ring indices stay coherent even while a reconfiguration
/// installs the next epoch.
#[derive(Debug)]
pub struct FleetView {
    /// Monotone reconfiguration counter; the boot fleet is epoch 0.
    pub epoch: u64,
    shards: Vec<Arc<Shard>>,
    ring: Ring,
}

impl FleetView {
    fn new(epoch: u64, shards: Vec<Arc<Shard>>) -> Self {
        let labels: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();
        Self {
            epoch,
            shards,
            ring: Ring::new(&labels),
        }
    }

    /// The member shards, in ring-label order.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The shard index owning a content key under this view's ring.
    pub fn owner_of(&self, key: ArtifactKey) -> usize {
        self.ring.route(route_key(key))
    }
}

/// How many routed `(model, MCF)` keys the router remembers prime
/// recipes for. The handoff pass can only warm keys it knows about;
/// past the cap, new keys route fine but rebalance cold.
const RECIPE_CAPACITY: usize = 1024;

/// Everything the router's workers share.
#[derive(Debug)]
pub struct RouterState {
    /// The live [`FleetView`]. The hot path loads this pointer and
    /// routes on the snapshot — no locks; writers install a new view
    /// under the `views` mutex.
    view: AtomicPtr<FleetView>,
    /// Writer serialization *and* the ownership of every view ever
    /// installed, the live one included. Retired views are never freed
    /// while the state lives, so a reader's borrowed snapshot cannot
    /// dangle; membership changes are operator-rare, so retention
    /// stays bounded in practice.
    // The boxes are the point (not clippy's redundant indirection):
    // `view` holds a raw pointer into an element, so every view needs
    // an address that survives the Vec growing.
    #[allow(clippy::vec_box)]
    views: Mutex<Vec<Box<FleetView>>>,
    /// The router's own per-endpoint request metrics.
    pub metrics: Metrics,
    /// Routing counters.
    pub counters: RouterCounters,
    token: Option<String>,
    probe_interval: Duration,
    io_timeout: Duration,
    /// Routed key → the request members that can re-create it
    /// (`model`/`model_name`/`mcf`), i.e. the body the handoff pass
    /// POSTs to `/v1/warm` on a key's new owner.
    recipes: Mutex<HashMap<ArtifactKey, String>>,
}

impl RouterState {
    /// Router state over the boot shard fleet (epoch 0).
    pub fn new(
        shards: Vec<std::net::SocketAddr>,
        token: Option<String>,
        probe_interval: Duration,
        io_timeout: Duration,
    ) -> Self {
        let shards: Vec<Arc<Shard>> = shards
            .into_iter()
            .map(|addr| Arc::new(Shard::new(addr, io_timeout)))
            .collect();
        let first = Box::new(FleetView::new(0, shards));
        let view = AtomicPtr::new(Box::as_ref(&first) as *const FleetView as *mut FleetView);
        Self {
            view,
            views: Mutex::new(vec![first]),
            metrics: Metrics::default(),
            counters: RouterCounters::default(),
            token,
            probe_interval,
            io_timeout,
            recipes: Mutex::new(HashMap::new()),
        }
    }

    /// The live fleet snapshot. Lock-free: one atomic load.
    pub fn view(&self) -> &FleetView {
        // Safety: the pointee is owned by `self.views`, which only
        // ever grows; it is freed when `self` drops, strictly after
        // this `&self` borrow ends.
        unsafe { &*self.view.load(Ordering::Acquire) }
    }

    /// The current shard fleet (for the prober and tests).
    pub fn shards(&self) -> &[Arc<Shard>] {
        self.view().shards()
    }

    /// How often the prober sweeps the fleet.
    pub fn probe_interval(&self) -> Duration {
        self.probe_interval
    }

    /// The shard index owning a content key — exposed so tests can
    /// assert pinning without replicating the hash.
    pub fn owner_of(&self, key: ArtifactKey) -> usize {
        self.view().owner_of(key)
    }

    /// Try shards of `view` in `order` until one answers without a
    /// server-side failure. Transport errors mark the shard down; the
    /// winning shard is marked up (an answer is better evidence than
    /// any probe). The caller's view pins the indices: a concurrent
    /// reconfiguration installs a *new* snapshot and never mutates
    /// this one.
    fn try_in_order(&self, view: &FleetView, order: &[usize], req: &Request) -> Response {
        // Healthy shards first (in ring order), down shards as a last
        // resort — a mark-down is a hint, not a verdict, and trying a
        // down shard last is what makes "every shard marked down" still
        // recoverable without waiting out a probe cycle.
        let (up, down): (Vec<usize>, Vec<usize>) = order
            .iter()
            .partition(|&&shard| view.shards[shard].health().is_healthy());
        let body = (!req.body.is_empty()).then_some(req.body.as_str());
        // Propagate the client's trace ID to the shard, so one grep
        // over fleet journals follows a request end to end.
        let trace: [(&str, &str); 1] = [(prophet_serve::http::TRACE_HEADER, req.trace.as_str())];
        let mut attempts = 0u64;
        for &index in up.iter().chain(down.iter()) {
            attempts += 1;
            let shard = &view.shards[index];
            match shard.send(&req.method, &req.path, body, &trace) {
                Ok(answer) if answer.status < 500 => {
                    shard.health().mark_up();
                    self.counters.forwards.fetch_add(1, Ordering::Relaxed);
                    if attempts > 1 {
                        self.counters
                            .retries
                            .fetch_add(attempts - 1, Ordering::Relaxed);
                    }
                    return Response::json(answer.status, answer.body);
                }
                // The shard answered, so its transport is fine — but a
                // 5xx is worth one try elsewhere before giving up.
                Ok(_server_error) => {}
                Err(_) => shard.health().mark_down(self.probe_interval),
            }
        }
        self.counters.no_shard.fetch_add(1, Ordering::Relaxed);
        error_response(502, format!("no shard could answer ({attempts} attempted)"))
    }

    /// Forward a model-keyed request to the shard owning its digest.
    fn forward_by_key(&self, req: &Request) -> Response {
        let body = match json::parse(&req.body) {
            Ok(body @ Json::Object(_)) => body,
            Ok(other) => {
                return error_response(
                    400,
                    format!("request body must be a JSON object, got {other}"),
                )
            }
            Err(e) => return error_response(400, e.to_string()),
        };
        // Resolve exactly as the shard will: same functions, same
        // digests — a body a shard would reject never leaves the
        // router, and a body a shard would accept routes to the shard
        // whose session pool already holds it.
        let model = match resolve_model(&body) {
            Ok(model) => model,
            Err(response) => return response,
        };
        let mcf = match resolve_mcf(&body) {
            Ok(mcf) => mcf,
            Err(response) => return response,
        };
        let key = ArtifactKey::of(&model, &mcf);
        self.remember_recipe(key, &body);
        let view = self.view();
        self.try_in_order(view, &view.ring.successors(route_key(key)), req)
    }

    /// Record the prime recipe for a routed key: the body members that
    /// re-create its session (`model`/`model_name`/`mcf`), so a later
    /// rebalance can warm the key's new owner.
    fn remember_recipe(&self, key: ArtifactKey, body: &Json) {
        let members: Vec<(&str, Json)> = ["model", "model_name", "mcf"]
            .into_iter()
            .filter_map(|name| body.get(name).map(|v| (name, v.clone())))
            .collect();
        let recipe = Json::object(members).encode();
        let mut recipes = self.recipes.lock().expect("recipe map lock");
        if recipes.len() >= RECIPE_CAPACITY && !recipes.contains_key(&key) {
            return; // full: new keys still route, they just rebalance cold
        }
        recipes.insert(key, recipe);
    }

    /// Forward an un-keyed request (`GET /v1/models`) round-robin.
    fn forward_any(&self, req: &Request) -> Response {
        let view = self.view();
        let n = view.shards.len();
        let start = self.counters.rr.fetch_add(1, Ordering::Relaxed) % n;
        let order: Vec<usize> = (0..n).map(|offset| (start + offset) % n).collect();
        self.try_in_order(view, &order, req)
    }

    /// `GET /v1/metrics`: the router's own counters, every shard's
    /// metrics document, and fleet-wide totals summed across shards.
    /// `?format=prometheus` renders the whole fleet as one exposition
    /// with per-shard labels instead.
    fn aggregate_metrics(&self, req: &Request) -> Response {
        match req.query_param("format") {
            Some("prometheus") => return self.fleet_prometheus(),
            None | Some("json") => {}
            Some(other) => {
                return error_response(
                    400,
                    format!("unknown metrics format `{other}`; use `json` or `prometheus`"),
                )
            }
        }
        let view = self.view();
        let mut shard_sections = Vec::with_capacity(view.shards.len());
        let mut fleet = FleetTotals::default();
        for shard in &view.shards {
            let mut section = shard_entry(shard.as_ref());
            match shard.send("GET", "/v1/metrics", None, &[]) {
                Ok(answer) if answer.status == 200 => match json::parse(&answer.body) {
                    Ok(metrics) => {
                        fleet.absorb(&metrics);
                        section.push(("metrics".to_string(), metrics));
                    }
                    Err(e) => section.push((
                        "error".to_string(),
                        Json::from(format!("unparsable metrics: {e}")),
                    )),
                },
                Ok(answer) => section.push((
                    "error".to_string(),
                    Json::from(format!("metrics answered {}", answer.status)),
                )),
                Err(e) => section.push(("error".to_string(), Json::from(e))),
            }
            shard_sections.push(Json::Object(section));
        }
        Response::json(
            200,
            Json::object([
                (
                    "router",
                    Json::object([
                        ("endpoints", self.metrics.to_json()),
                        ("routing", self.routing_json()),
                    ]),
                ),
                ("shards", Json::Array(shard_sections)),
                ("fleet", fleet.to_json()),
            ])
            .encode(),
        )
    }

    /// The `routing` counter section.
    fn routing_json(&self) -> Json {
        let view = self.view();
        let healthy = view
            .shards
            .iter()
            .filter(|s| s.health().is_healthy())
            .count();
        Json::object([
            ("epoch", Json::from(view.epoch)),
            ("shards", Json::from(view.shards.len())),
            ("healthy", Json::from(healthy)),
            (
                "forwards",
                Json::from(self.counters.forwards.load(Ordering::Relaxed)),
            ),
            (
                "retries",
                Json::from(self.counters.retries.load(Ordering::Relaxed)),
            ),
            (
                "no_shard",
                Json::from(self.counters.no_shard.load(Ordering::Relaxed)),
            ),
        ])
    }

    /// `GET /v1/metrics?format=prometheus`: the fleet in one
    /// exposition — the router's routing counters and endpoint
    /// metrics, per-shard health gauges, and every reachable shard's
    /// endpoint counters and latency/phase histograms re-exposed under
    /// a `shard="addr"` label. Families are emitted once with all
    /// their shard series grouped under a single `# TYPE` line.
    fn fleet_prometheus(&self) -> Response {
        use prophet_serve::metrics::ENDPOINT_NAMES;
        use prophet_serve::prometheus::{histogram_from_json, Exposition};
        let view = self.view();
        // Fan out first, so family emission below can group series.
        let docs: Vec<(String, Option<Json>)> = view
            .shards
            .iter()
            .map(|shard| {
                let doc = shard
                    .send("GET", "/v1/metrics", None, &[])
                    .ok()
                    .filter(|answer| answer.status == 200)
                    .and_then(|answer| json::parse(&answer.body).ok());
                (shard.addr().to_string(), doc)
            })
            .collect();
        let mut e = Exposition::new();
        e.family("prophet_router_requests_total", "counter");
        for (i, name) in ENDPOINT_NAMES.iter().enumerate() {
            e.sample(
                "prophet_router_requests_total",
                &[("endpoint", name)],
                self.metrics.by_index(i).requests(),
            );
        }
        e.family("prophet_router_request_duration_seconds", "histogram");
        for (i, name) in ENDPOINT_NAMES.iter().enumerate() {
            e.histogram_snapshot(
                "prophet_router_request_duration_seconds",
                &[("endpoint", name)],
                &self.metrics.by_index(i).latency_snapshot(),
            );
        }
        for (name, value) in [
            (
                "prophet_router_forwards_total",
                self.counters.forwards.load(Ordering::Relaxed),
            ),
            (
                "prophet_router_retries_total",
                self.counters.retries.load(Ordering::Relaxed),
            ),
            (
                "prophet_router_no_shard_total",
                self.counters.no_shard.load(Ordering::Relaxed),
            ),
        ] {
            e.family(name, "counter");
            e.sample(name, &[], value);
        }
        e.family("prophet_router_shard_healthy", "gauge");
        for shard in &view.shards {
            let addr = shard.addr().to_string();
            e.sample(
                "prophet_router_shard_healthy",
                &[("shard", &addr)],
                u64::from(shard.health().is_healthy()),
            );
        }
        e.family("prophet_router_shard_consecutive_failures", "gauge");
        for shard in &view.shards {
            let addr = shard.addr().to_string();
            e.sample(
                "prophet_router_shard_consecutive_failures",
                &[("shard", &addr)],
                shard.health().consecutive_failures(),
            );
        }
        e.family("prophet_router_shard_last_probe_ms_ago", "gauge");
        for shard in &view.shards {
            let addr = shard.addr().to_string();
            if let Some(ms) = shard.health().last_probe_ms_ago() {
                e.sample(
                    "prophet_router_shard_last_probe_ms_ago",
                    &[("shard", &addr)],
                    ms,
                );
            }
        }
        // Per-shard re-exposition: the same families the shards serve,
        // with the shard's address as an extra label.
        e.family("prophet_requests_total", "counter");
        for_each_endpoint(&docs, |addr, name, section| {
            e.sample(
                "prophet_requests_total",
                &[("shard", addr), ("endpoint", name)],
                counter(section, &["requests"]),
            );
        });
        e.family("prophet_request_errors_total", "counter");
        for_each_endpoint(&docs, |addr, name, section| {
            e.sample(
                "prophet_request_errors_total",
                &[("shard", addr), ("endpoint", name)],
                counter(section, &["errors"]),
            );
        });
        e.family("prophet_request_duration_seconds", "histogram");
        for_each_endpoint(&docs, |addr, name, section| {
            if let Some((bounds, counts, total)) =
                section.get("latency").and_then(histogram_from_json)
            {
                e.histogram(
                    "prophet_request_duration_seconds",
                    &[("shard", addr), ("endpoint", name)],
                    &bounds,
                    &counts,
                    total,
                );
            }
        });
        e.family("prophet_phase_duration_seconds", "histogram");
        for (addr, doc) in &docs {
            let Some(Json::Object(phases)) = doc.as_ref().and_then(|d| d.get("phases")) else {
                continue;
            };
            for (phase, section) in phases {
                if let Some((bounds, counts, total)) = histogram_from_json(section) {
                    e.histogram(
                        "prophet_phase_duration_seconds",
                        &[("shard", addr), ("phase", phase)],
                        &bounds,
                        &counts,
                        total,
                    );
                }
            }
        }
        Response::prometheus(e.finish())
    }

    /// `GET /v1/shards`: the router's live view of its fleet.
    fn shards_json(&self) -> Response {
        let shards: Vec<Json> = self
            .view()
            .shards
            .iter()
            .map(|shard| Json::Object(shard_entry(shard.as_ref())))
            .collect();
        Response::json(
            200,
            Json::object([
                ("shards", Json::Array(shards)),
                ("routing", self.routing_json()),
            ])
            .encode(),
        )
    }

    /// Broadcast `POST /v1/shutdown` to every shard, forwarding the
    /// client's `Authorization` header (the fleet shares one operator
    /// token), and report each shard's acknowledgement.
    fn broadcast_shutdown(&self, req: &Request) -> Response {
        let auth = req.header("authorization");
        let headers: Vec<(&str, &str)> = auth
            .map(|value| vec![("authorization", value)])
            .unwrap_or_default();
        let acks: Vec<Json> = self
            .view()
            .shards
            .iter()
            .map(|shard| {
                let addr = Json::from(shard.addr().to_string());
                match shard.send("POST", "/v1/shutdown", Some("{}"), &headers) {
                    Ok(answer) => Json::object([
                        ("addr", addr),
                        ("ok", Json::from(answer.status == 200)),
                        ("status", Json::from(u64::from(answer.status))),
                    ]),
                    Err(e) => Json::object([
                        ("addr", addr),
                        ("ok", Json::from(false)),
                        ("error", Json::from(e)),
                    ]),
                }
            })
            .collect();
        Response::json(
            200,
            Json::object([("ok", Json::from(true)), ("shards", Json::Array(acks))]).encode(),
        )
    }

    /// `POST /v1/shards` (`{"add": ["h:p", ...], "remove": [...]}`):
    /// elastic fleet membership with rebalance handoff.
    ///
    /// Under the single writer lock: validate the change (409 on
    /// duplicate joins, unknown leaves, add∩remove overlap, or an
    /// emptied fleet), build the next view reusing the survivors'
    /// shard handles (their connection pools and health state carry
    /// over), warm every moved key's new owner, install the view with
    /// one atomic pointer store (epoch + 1), and only then evict the
    /// moved keys from surviving old owners. In-flight requests keep
    /// routing on the old snapshot throughout; requests started after
    /// the store route on the new one.
    fn reconfigure(&self, req: &Request) -> Response {
        let body = match json::parse(&req.body) {
            Ok(body @ Json::Object(_)) => body,
            Ok(other) => {
                return error_response(
                    400,
                    format!("request body must be a JSON object, got {other}"),
                )
            }
            Err(e) => return error_response(400, e.to_string()),
        };
        let (add, remove) = match (string_list(&body, "add"), string_list(&body, "remove")) {
            (Ok(add), Ok(remove)) => (add, remove),
            (Err(r), _) | (_, Err(r)) => return r,
        };
        if add.is_empty() && remove.is_empty() {
            return error_response(400, "nothing to do: both `add` and `remove` are empty");
        }
        let mut added: Vec<(String, std::net::SocketAddr)> = Vec::with_capacity(add.len());
        for label in &add {
            match label.parse() {
                Ok(addr) => added.push((label.clone(), addr)),
                Err(_) => {
                    return error_response(400, format!("bad shard address `{label}`"));
                }
            }
        }

        // One writer at a time; the lock also owns the view history.
        let mut views = self.views.lock().expect("fleet view history lock");
        // Safety: same argument as `Self::view` — and under the lock
        // this is the newest view, the one the change applies to.
        let current: &FleetView = unsafe { &*self.view.load(Ordering::Acquire) };
        let labels: Vec<String> = current
            .shards
            .iter()
            .map(|s| s.addr().to_string())
            .collect();
        for label in &add {
            if remove.contains(label) {
                return error_response(409, format!("`{label}` is in both add and remove"));
            }
            if labels.contains(label) {
                return error_response(409, format!("shard `{label}` is already in the fleet"));
            }
            if add.iter().filter(|l| *l == label).count() > 1 {
                return error_response(409, format!("shard `{label}` added twice"));
            }
        }
        for label in &remove {
            if !labels.contains(label) {
                return error_response(409, format!("shard `{label}` is not in the fleet"));
            }
        }
        let mut next_shards: Vec<Arc<Shard>> = current
            .shards
            .iter()
            .filter(|s| !remove.contains(&s.addr().to_string()))
            .cloned()
            .collect();
        if next_shards.is_empty() && added.is_empty() {
            return error_response(409, "refusing to remove the last shard");
        }
        next_shards.extend(
            added
                .iter()
                .map(|(_, addr)| Arc::new(Shard::new(*addr, self.io_timeout))),
        );
        let next = Box::new(FleetView::new(current.epoch + 1, next_shards));

        // The handoff set: every remembered key whose owner changes.
        let moved: Vec<(ArtifactKey, String, usize, usize)> = {
            let recipes = self.recipes.lock().expect("recipe map lock");
            recipes
                .iter()
                .filter_map(|(key, recipe)| {
                    let before = current.owner_of(*key);
                    let after = next.owner_of(*key);
                    let before_label = current.shards[before].addr().to_string();
                    let after_label = next.shards[after].addr().to_string();
                    (before_label != after_label).then(|| (*key, recipe.clone(), before, after))
                })
                .collect()
        };
        let auth = self.token.as_ref().map(|t| format!("Bearer {t}"));
        let headers: Vec<(&str, &str)> = auth
            .as_deref()
            .map(|value| vec![("authorization", value)])
            .unwrap_or_default();
        // Warm each moved key's new owner *before* the swap: by the
        // time traffic routes there, the session is pooled (a disk hit
        // under a shared store, one compile-prime otherwise).
        let mut primed = 0u64;
        for (_, recipe, _, after) in &moved {
            if matches!(
                next.shards[*after].send("POST", "/v1/warm", Some(recipe), &headers),
                Ok(answer) if answer.status == 200
            ) {
                primed += 1;
            }
        }

        // Install: readers see the whole new view or the whole old one.
        let ptr = Box::as_ref(&next) as *const FleetView as *mut FleetView;
        let epoch = next.epoch;
        let shard_count = next.shards.len();
        // Group evictions by surviving old owner before `next` moves
        // into the history (removed shards keep their whole pool;
        // nothing to evict there — their idle connections are closed
        // after the swap instead).
        let mut evict_by_owner: HashMap<String, Vec<ArtifactKey>> = HashMap::new();
        for (key, _, before, _) in &moved {
            let owner = current.shards[*before].addr().to_string();
            if next.shards.iter().any(|s| s.addr().to_string() == owner) {
                evict_by_owner.entry(owner).or_default().push(*key);
            }
        }
        views.push(next);
        self.view.store(ptr, Ordering::Release);
        let view = self.view();

        // Old owners drop their moved entries only now, after the
        // swap: they kept answering for those keys until no new
        // request could route to them.
        let mut evicted = 0u64;
        for (owner, keys) in &evict_by_owner {
            let Some(shard) = view.shards.iter().find(|s| &s.addr().to_string() == owner) else {
                continue;
            };
            let items: Vec<Json> = keys
                .iter()
                .map(|key| {
                    Json::object([
                        ("model", Json::from(format!("{:016x}", key.model))),
                        ("mcf", Json::from(format!("{:016x}", key.mcf))),
                    ])
                })
                .collect();
            let body = Json::object([("keys", Json::Array(items))]).encode();
            if let Ok(answer) = shard.send("POST", "/v1/evict", Some(&body), &headers) {
                if answer.status == 200 {
                    evicted += json::parse(&answer.body)
                        .ok()
                        .and_then(|b| b.get("evicted").and_then(Json::as_f64))
                        .map(|v| v.max(0.0) as u64)
                        .unwrap_or(0);
                }
            }
        }
        // Removed shards' handles live on in the view history, so shed
        // their idle keep-alive connections now — each one pins a
        // worker on the remote serve process until its idle timeout,
        // and a later re-join would dial a fresh pool anyway.
        for shard in &current.shards {
            if remove.contains(&shard.addr().to_string()) {
                shard.disconnect();
            }
        }
        Response::json(
            200,
            Json::object([
                ("ok", Json::from(true)),
                ("epoch", Json::from(epoch)),
                ("shards", Json::from(shard_count)),
                ("added", Json::from(add.len())),
                ("removed", Json::from(remove.len())),
                ("moved", Json::from(moved.len())),
                ("primed", Json::from(primed)),
                ("evicted", Json::from(evicted)),
            ])
            .encode(),
        )
    }
}

/// An optional string-array member (`add`/`remove`); absent means
/// empty.
fn string_list(body: &Json, key: &str) -> Result<Vec<String>, Response> {
    let Some(v) = body.get(key) else {
        return Ok(Vec::new());
    };
    let items = v.as_array().ok_or_else(|| {
        error_response(
            400,
            format!("`{key}` must be an array of host:port strings"),
        )
    })?;
    items
        .iter()
        .map(|item| {
            item.as_str().map(str::to_string).ok_or_else(|| {
                error_response(400, format!("`{key}` entries must be host:port strings"))
            })
        })
        .collect()
}

/// Fleet-wide sums over the shard metrics documents.
#[derive(Debug, Default)]
struct FleetTotals {
    requests: u64,
    errors: u64,
    session_compiles: u64,
    session_reuses: u64,
    store_disk_hits: u64,
    store_writes: u64,
}

/// A counter out of a nested metrics document, as `u64`.
fn counter(json: &Json, path: &[&str]) -> u64 {
    let mut node = json;
    for segment in path {
        match node.get(segment) {
            Some(next) => node = next,
            None => return 0,
        }
    }
    node.as_f64().map(|v| v.max(0.0) as u64).unwrap_or(0)
}

impl FleetTotals {
    fn absorb(&mut self, metrics: &Json) {
        if let Some(Json::Object(endpoints)) = metrics.get("endpoints") {
            for (name, _) in endpoints {
                self.requests += counter(metrics, &["endpoints", name.as_str(), "requests"]);
                self.errors += counter(metrics, &["endpoints", name.as_str(), "errors"]);
            }
        }
        self.session_compiles += counter(metrics, &["session_pool", "compiles"]);
        self.session_reuses += counter(metrics, &["session_pool", "reuses"]);
        self.store_disk_hits += counter(metrics, &["store", "disk_hits"]);
        self.store_writes += counter(metrics, &["store", "writes"]);
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("requests", Json::from(self.requests)),
            ("errors", Json::from(self.errors)),
            ("session_compiles", Json::from(self.session_compiles)),
            ("session_reuses", Json::from(self.session_reuses)),
            ("store_disk_hits", Json::from(self.store_disk_hits)),
            ("store_writes", Json::from(self.store_writes)),
        ])
    }
}

/// One shard's health entry, shared by `GET /v1/shards` and the
/// per-shard sections of the aggregated metrics document.
fn shard_entry(shard: &Shard) -> Vec<(String, Json)> {
    let health = shard.health();
    vec![
        ("addr".to_string(), Json::from(shard.addr().to_string())),
        ("healthy".to_string(), Json::from(health.is_healthy())),
        ("downs".to_string(), Json::from(health.downs())),
        ("probes".to_string(), Json::from(health.probes())),
        (
            "last_probe_ms_ago".to_string(),
            health.last_probe_ms_ago().map_or(Json::Null, Json::from),
        ),
        (
            "consecutive_failures".to_string(),
            Json::from(health.consecutive_failures()),
        ),
    ]
}

/// Visit every `(shard addr, endpoint name, endpoint section)` of the
/// fetched shard metrics documents, skipping unreachable shards.
fn for_each_endpoint<'a>(
    docs: &'a [(String, Option<Json>)],
    mut visit: impl FnMut(&'a str, &'a str, &'a Json),
) {
    for (addr, doc) in docs {
        let Some(Json::Object(endpoints)) = doc.as_ref().and_then(|d| d.get("endpoints")) else {
            continue;
        };
        for (name, section) in endpoints {
            visit(addr, name, section);
        }
    }
}

/// An error response: status + `{"error": message}` body (the same
/// shape the shards answer with, so clients see one error format).
fn error_response(status: u16, message: impl Into<String>) -> Response {
    Response::json(
        status,
        Json::object([("error", Json::from(message.into()))]).encode(),
    )
}

impl Handler for RouterState {
    fn handle(&self, req: &Request) -> (Response, bool) {
        let response = match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/v1/check" | "/v1/estimate" | "/v1/sweep" | "/v1/optimize") => {
                self.forward_by_key(req)
            }
            ("GET", "/v1/models") => self.forward_any(req),
            ("GET", "/v1/metrics") => self.aggregate_metrics(req),
            ("GET", "/v1/shards") => self.shards_json(),
            ("POST", "/v1/shards") => {
                if let Some(expected) = &self.token {
                    if !bearer_authorized(req, expected) {
                        return (
                            error_response(
                                401,
                                "fleet reconfiguration requires a valid bearer token",
                            ),
                            false,
                        );
                    }
                }
                self.reconfigure(req)
            }
            ("POST", "/v1/shutdown") => {
                if let Some(expected) = &self.token {
                    if !bearer_authorized(req, expected) {
                        return (
                            error_response(401, "shutdown requires a valid bearer token"),
                            false,
                        );
                    }
                }
                return (self.broadcast_shutdown(req), true);
            }
            (
                _,
                "/v1/check" | "/v1/estimate" | "/v1/sweep" | "/v1/optimize" | "/v1/models"
                | "/v1/metrics" | "/v1/shards" | "/v1/shutdown",
            ) => error_response(405, format!("{} not allowed here", req.method)),
            _ => error_response(404, format!("no such endpoint `{}`", req.path)),
        };
        (response, false)
    }

    fn record(&self, endpoint: Option<(&str, &str)>, latency: Duration, error: bool) {
        let counters = match endpoint {
            Some((method, path)) => self.metrics.endpoint(method, path),
            None => &self.metrics.other,
        };
        counters.record(latency, error);
    }
}
