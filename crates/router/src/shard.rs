//! One backend shard: its address, health state, and a pool of
//! keep-alive connections to it.
//!
//! The pool is a simple stack under a mutex: a worker pops a pooled
//! [`Connection`] (or makes a fresh one), runs its request, and pushes
//! the connection back on success. Since the router's worker count
//! bounds concurrency, the pool never grows past the worker count —
//! sustained load runs over a handful of long-lived sockets instead of
//! a connect per request.

use crate::health::HealthState;
use prophet_serve::client::{Connection, RawResponse};
use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Duration;

/// A backend `prophet serve` shard as the router sees it.
#[derive(Debug)]
pub struct Shard {
    addr: SocketAddr,
    health: HealthState,
    pool: Mutex<Vec<Connection>>,
    io_timeout: Duration,
}

impl Shard {
    /// A shard handle; connections are dialed lazily on first use.
    pub fn new(addr: SocketAddr, io_timeout: Duration) -> Self {
        Self {
            addr,
            health: HealthState::default(),
            pool: Mutex::new(Vec::new()),
            io_timeout,
        }
    }

    /// The shard's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shard's health state.
    pub fn health(&self) -> &HealthState {
        &self.health
    }

    /// Forward one request over a pooled keep-alive connection. The
    /// connection returns to the pool on success and is dropped on
    /// failure (its socket state is suspect).
    ///
    /// # Errors
    /// Transport failures (connect/send/receive), as a message string.
    pub fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> Result<RawResponse, String> {
        let mut conn = self
            .pool
            .lock()
            .expect("shard connection pool lock")
            .pop()
            .unwrap_or_else(|| {
                let mut fresh = Connection::new(self.addr);
                fresh.set_io_timeout(Some(self.io_timeout));
                fresh
            });
        let result = conn.send(method, path, body, headers);
        if result.is_ok() {
            self.pool
                .lock()
                .expect("shard connection pool lock")
                .push(conn);
        }
        result
    }

    /// Close every idle pooled connection. Called when the shard
    /// leaves the fleet: its handle stays alive in the view history,
    /// so without this the keep-alive sockets would sit open — holding
    /// one remote serve worker each — until the shard's idle timeout.
    /// Checked-out connections are unaffected (in-flight requests on
    /// an old view finish normally).
    pub fn disconnect(&self) {
        self.pool
            .lock()
            .expect("shard connection pool lock")
            .clear();
    }

    /// One cheap liveness check on a throwaway connection (the pooled
    /// sockets stay dedicated to real traffic).
    pub fn probe(&self) -> bool {
        self.health.count_probe();
        let Ok(mut conn) = Connection::connect(self.addr) else {
            return false;
        };
        conn.set_io_timeout(Some(self.io_timeout));
        matches!(conn.send("GET", "/v1/models", None, &[]), Ok(r) if r.status == 200)
    }
}
