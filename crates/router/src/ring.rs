//! The consistent-hash ring, re-exported from `prophet_core::ring`.
//!
//! The ring itself lives in `prophet-core` so the serve layer can use
//! the identical placement for per-shard store partitioning
//! (`serve --partition`) without a circular dependency on this crate.
//! Router callers keep importing it from here — the routing semantics
//! and the rebalance guarantees are the router's contract, so the
//! rebalance property tests live here too.

pub use prophet_core::ring::{route_key, Ring, VNODES};

#[cfg(test)]
mod rebalance_tests {
    use super::*;
    use proptest::prelude::*;

    /// How many digests we sample the key space with. Large enough
    /// that the expected movement (K/N) dominates variance at N=16.
    const K: usize = 2048;

    fn fleet_labels(n: usize, seed: u64) -> Vec<String> {
        // Port numbers derived from the seed so fleets differ run to
        // run, while staying valid "host:port" shapes.
        (0..n)
            .map(|i| {
                format!(
                    "10.0.{}.{}:{}",
                    seed % 250,
                    i,
                    7000 + ((seed / 250 + i as u64) % 2000)
                )
            })
            .collect()
    }

    fn sampled_keys() -> Vec<u64> {
        (0..K as u64)
            .map(|k| k.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .collect()
    }

    /// Rebalance movement when one shard joins or leaves a random
    /// fleet: at most `2·K/N` of K sampled digests change owner, and a
    /// key never moves between two *surviving* shards — the only legal
    /// moves are to the joining shard or off the leaving one.
    fn check_single_change(labels: &[String], changed: &str, grown: &[String]) {
        let before = Ring::new(labels);
        let after = Ring::new(grown);
        let n = grown.len().max(labels.len());
        let bound = 2 * K / n;
        let mut moved = 0usize;
        for key in sampled_keys() {
            let owner_before = &labels[before.route(key)];
            let owner_after = &grown[after.route(key)];
            if owner_before != owner_after {
                moved += 1;
                assert!(
                    owner_before == changed || owner_after == changed,
                    "key {key:#x} moved {owner_before} -> {owner_after}, \
                     but only `{changed}` joined/left"
                );
            }
        }
        assert!(
            moved <= bound,
            "{moved}/{K} keys moved; consistent hashing bounds movement \
             by 2·K/N = {bound} for N = {n}"
        );
    }

    proptest! {
        #[test]
        fn join_moves_at_most_2k_over_n_and_only_to_the_joiner(
            n in 2usize..=16,
            seed in any::<u64>(),
        ) {
            let labels = fleet_labels(n, seed);
            let mut grown = labels.clone();
            let joiner = format!("10.9.9.9:{}", 6000 + (seed % 1000));
            grown.push(joiner.clone());
            check_single_change(&labels, &joiner, &grown);
        }

        #[test]
        fn leave_moves_at_most_2k_over_n_and_only_off_the_leaver(
            n in 2usize..=16,
            seed in any::<u64>(),
            victim in any::<usize>(),
        ) {
            let labels = fleet_labels(n, seed);
            let mut shrunk = labels.clone();
            let leaver = shrunk.remove(victim % n);
            // Same invariant, read in the shrinking direction: the
            // "before" fleet is the larger one.
            check_single_change(&labels, &leaver, &shrunk);
        }
    }
}
