//! Shard health: mark-down on failure, probed recovery with backoff.
//!
//! A shard is marked down the moment a forward fails at the transport
//! (connect refused, send/receive error) — the *request* that noticed
//! already retried on the next ring successor, and the mark keeps later
//! requests from re-paying the connect timeout. A background prober
//! (`prober_loop` on the router state) then checks every shard each
//! probe interval: healthy shards cheaply (one `GET /v1/models`), down
//! shards on an exponential backoff, and marks them up the moment a
//! probe succeeds — so a restarted shard rejoins the ring within a few
//! probe intervals without any operator action.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Cap on the backoff exponent: probe a down shard at least every
/// `probe_interval * 2^MAX_BACKOFF_EXP`.
const MAX_BACKOFF_EXP: u32 = 5;

/// Health bookkeeping for one shard.
#[derive(Debug)]
pub struct HealthState {
    healthy: AtomicBool,
    /// Healthy→down transitions (mark-downs that changed state).
    downs: AtomicU64,
    /// Probes issued against this shard.
    probes: AtomicU64,
    /// When the last probe was issued, as millis since `born`
    /// (`u64::MAX` = never probed).
    last_probe_ms: AtomicU64,
    /// The epoch `last_probe_ms` counts from.
    born: Instant,
    backoff: Mutex<Backoff>,
}

#[derive(Debug)]
struct Backoff {
    /// Consecutive failures since the last success.
    failures: u32,
    /// Don't probe a down shard before this instant.
    next_probe: Instant,
}

impl Default for HealthState {
    fn default() -> Self {
        Self {
            healthy: AtomicBool::new(true),
            downs: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            last_probe_ms: AtomicU64::new(u64::MAX),
            born: Instant::now(),
            backoff: Mutex::new(Backoff {
                failures: 0,
                next_probe: Instant::now(),
            }),
        }
    }
}

impl HealthState {
    /// Whether the shard is currently believed alive.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Healthy→down transitions so far.
    pub fn downs(&self) -> u64 {
        self.downs.load(Ordering::Relaxed)
    }

    /// Probes issued so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// Record a transport failure: mark down and push the next probe
    /// out exponentially (capped), so a dead shard costs a probe every
    /// few intervals instead of every interval.
    pub fn mark_down(&self, probe_interval: Duration) {
        if self.healthy.swap(false, Ordering::SeqCst) {
            self.downs.fetch_add(1, Ordering::Relaxed);
        }
        let mut backoff = self.backoff.lock().expect("health backoff lock");
        backoff.failures = backoff.failures.saturating_add(1);
        let exp = backoff.failures.min(MAX_BACKOFF_EXP);
        backoff.next_probe = Instant::now() + probe_interval * 2u32.pow(exp);
    }

    /// Record a success (a probe or a real forwarded answer): the shard
    /// is alive, reset the backoff.
    pub fn mark_up(&self) {
        // Cheap fast path: forwards call this on every success.
        if self.healthy.load(Ordering::SeqCst) {
            return;
        }
        self.healthy.store(true, Ordering::SeqCst);
        let mut backoff = self.backoff.lock().expect("health backoff lock");
        backoff.failures = 0;
        backoff.next_probe = Instant::now();
    }

    /// Whether the prober should check this shard now: always for a
    /// healthy shard (detect silent death before a client does), only
    /// past the backoff deadline for a down one.
    pub fn probe_due(&self, now: Instant) -> bool {
        if self.is_healthy() {
            return true;
        }
        now >= self.backoff.lock().expect("health backoff lock").next_probe
    }

    /// Count one issued probe, stamping its time.
    pub fn count_probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.last_probe_ms
            .store(self.elapsed_ms(), Ordering::Relaxed);
    }

    /// Milliseconds since the most recent probe of this shard, `None`
    /// before the first probe. An operator reading `/v1/shards` uses
    /// this to tell "believed healthy, verified moments ago" from
    /// "believed healthy, but the prober has stalled".
    pub fn last_probe_ms_ago(&self) -> Option<u64> {
        let at = self.last_probe_ms.load(Ordering::Relaxed);
        if at == u64::MAX {
            return None;
        }
        Some(self.elapsed_ms().saturating_sub(at))
    }

    /// Consecutive transport failures since the last success. Read off
    /// the metrics path only, so the mutex is fine.
    pub fn consecutive_failures(&self) -> u64 {
        u64::from(self.backoff.lock().expect("health backoff lock").failures)
    }

    /// Millis since `born`, saturating shy of the never-probed sentinel.
    fn elapsed_ms(&self) -> u64 {
        let ms = self.born.elapsed().as_millis();
        u64::try_from(ms).unwrap_or(u64::MAX - 1).min(u64::MAX - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_down_then_up_roundtrips() {
        let h = HealthState::default();
        assert!(h.is_healthy());
        h.mark_down(Duration::from_millis(10));
        assert!(!h.is_healthy());
        assert_eq!(h.downs(), 1);
        // Repeated mark-downs don't double-count the transition.
        h.mark_down(Duration::from_millis(10));
        assert_eq!(h.downs(), 1);
        h.mark_up();
        assert!(h.is_healthy());
        h.mark_down(Duration::from_millis(10));
        assert_eq!(h.downs(), 2);
    }

    #[test]
    fn down_shards_back_off_their_probes() {
        let h = HealthState::default();
        let interval = Duration::from_millis(50);
        h.mark_down(interval);
        // Immediately after a failure the next probe is in the future.
        assert!(!h.probe_due(Instant::now()));
        // ... but due once the backoff elapses.
        assert!(h.probe_due(Instant::now() + interval * 4));
        // More failures push it out further (exponentially, capped).
        for _ in 0..10 {
            h.mark_down(interval);
        }
        assert!(!h.probe_due(Instant::now() + interval * 4));
        assert!(h.probe_due(Instant::now() + interval * 64));
    }

    #[test]
    fn healthy_shards_are_always_due() {
        let h = HealthState::default();
        assert!(h.probe_due(Instant::now()));
    }

    #[test]
    fn probe_age_and_consecutive_failures_are_observable() {
        let h = HealthState::default();
        assert_eq!(h.last_probe_ms_ago(), None, "never probed yet");
        assert_eq!(h.consecutive_failures(), 0);
        h.count_probe();
        assert!(h.last_probe_ms_ago().is_some());
        h.mark_down(Duration::from_millis(10));
        h.mark_down(Duration::from_millis(10));
        assert_eq!(h.consecutive_failures(), 2);
        h.mark_up();
        assert_eq!(h.consecutive_failures(), 0, "success resets the streak");
    }
}
