//! # prophet-router
//!
//! Digest-routed **scale-out** for the prediction service: one HTTP
//! front door that spreads `(model, MCF)` content keys across N
//! `prophet serve` shards, so the fleet's compile-once behavior scales
//! horizontally without any shard coordinating with another.
//!
//! ```text
//!             clients
//!                │
//!         prophet router          (this crate)
//!      resolve model/MCF → ArtifactKey → ring
//!        ╱        │        ╲
//!   shard A    shard B    shard C     (prophet serve)
//!      ╲          │        ╱
//!        shared --store DIR           (optional warm-start)
//! ```
//!
//! * [`ring`] — the consistent-hash ring: stable shard placement by
//!   address label, with a deterministic failover order,
//! * [`shard`] — per-shard keep-alive connection pools,
//! * [`health`] — mark-down on failure, probed recovery with backoff,
//! * [`api`] — the [`RouterState`] handler: digest forwarding,
//!   retry-on-next-shard, aggregated `/v1/metrics`, fleet shutdown.
//!
//! The router serves on the exact server core the shards use
//! ([`prophet_serve::serve_with`]): same accept loop, worker pool,
//! keep-alive handling and graceful drain — it is "just" a different
//! [`Handler`](prophet_serve::Handler).
//!
//! **Why routing by content digest matters:** each shard pools compiled
//! sessions by the `(model, MCF)` digest pair. A round-robin balancer
//! would compile every model on every shard (N× the compile work, N×
//! the memory); the digest ring sends every repeat of a model to the
//! shard that already holds it, so the fleet as a whole still compiles
//! each model once. With a shared `--store` directory, even that one
//! compile is amortized across restarts *and replacements*: a cold
//! shard warm-starts from its siblings' write-backs.

pub mod api;
pub mod health;
pub mod ring;
pub mod shard;

pub use api::RouterState;
pub use ring::{route_key, Ring};

use prophet_serve::{serve_with, ServerConfig, ServerHandle};
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default interval between health-probe sweeps.
pub const DEFAULT_PROBE_INTERVAL: Duration = Duration::from_millis(500);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Listen address, e.g. `127.0.0.1:7070` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` selects the available parallelism.
    pub workers: usize,
    /// The backend shard addresses. Order does not matter (the ring
    /// hashes addresses, not positions), but every router in front of
    /// the same fleet must list the same addresses.
    pub shards: Vec<SocketAddr>,
    /// Operator bearer token: guards the router's `POST /v1/shutdown`
    /// and is forwarded to the shards on the broadcast.
    pub token: Option<String>,
    /// Interval between health-probe sweeps over the fleet.
    pub probe_interval: Duration,
    /// Socket timeout for both client connections and shard forwards.
    pub io_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".to_string(),
            workers: 0,
            shards: Vec::new(),
            token: None,
            probe_interval: DEFAULT_PROBE_INTERVAL,
            io_timeout: prophet_serve::server::DEFAULT_IO_TIMEOUT,
        }
    }
}

/// Bind and start the router: the shared server core over a
/// [`RouterState`], plus the background health prober (which stops
/// with the server's shutdown signal).
///
/// # Errors
/// Rejects an empty shard list; propagates the bind failure.
pub fn start(config: &RouterConfig) -> io::Result<ServerHandle<RouterState>> {
    if config.shards.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "router needs at least one --shards address",
        ));
    }
    let state = Arc::new(RouterState::new(
        config.shards.clone(),
        config.token.clone(),
        config.probe_interval,
        config.io_timeout,
    ));
    let handle = serve_with(
        &ServerConfig {
            addr: config.addr.clone(),
            workers: config.workers,
            io_timeout: config.io_timeout,
            store: None,
            token: None, // the router's handler enforces its own token
            partition: None,
        },
        Arc::clone(&state),
    )?;
    let shutdown = handle.shutdown_signal();
    std::thread::spawn(move || prober_loop(&state, &shutdown));
    Ok(handle)
}

/// Poll slice while waiting out a probe interval, so the prober notices
/// shutdown promptly (mirrors the server core's idle polling).
const PROBE_POLL: Duration = Duration::from_millis(25);

/// The health prober: sweep the fleet every probe interval — healthy
/// shards every sweep, down shards on their backoff — until the server
/// drains.
fn prober_loop(state: &RouterState, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        let next_sweep = Instant::now() + state.probe_interval();
        let now = Instant::now();
        for shard in state.shards() {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if !shard.health().probe_due(now) {
                continue;
            }
            if shard.probe() {
                shard.health().mark_up();
            } else {
                shard.health().mark_down(state.probe_interval());
            }
        }
        while Instant::now() < next_sweep {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(PROBE_POLL);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_serve::client;
    use prophet_serve::json::Json;
    use prophet_serve::server;

    /// A running shard on an ephemeral port.
    fn shard() -> ServerHandle {
        server::serve(&server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..Default::default()
        })
        .expect("bind shard")
    }

    /// A router over the given shards, probing fast for test speed.
    fn router(shards: Vec<SocketAddr>) -> ServerHandle<RouterState> {
        start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            shards,
            probe_interval: Duration::from_millis(50),
            ..Default::default()
        })
        .expect("bind router")
    }

    fn estimate_body(name: &str) -> Json {
        Json::object([
            ("model_name", Json::from(name)),
            ("nodes", Json::from(2usize)),
        ])
    }

    #[test]
    fn refuses_to_start_without_shards() {
        let err = start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            ..Default::default()
        })
        .expect_err("no shards must not bind");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn repeats_of_a_model_pin_to_one_shard() {
        let (a, b) = (shard(), shard());
        let router = router(vec![a.addr(), b.addr()]);
        for round in 0..3 {
            let r = client::post(router.addr(), "/v1/estimate", &estimate_body("sample")).unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(
                r.body
                    .get("session")
                    .unwrap()
                    .get("reused")
                    .unwrap()
                    .as_bool(),
                Some(round > 0),
                "round {round}: repeats must land on the shard that compiled"
            );
        }
        // Exactly one shard compiled; the fleet total is one compile.
        let metrics = client::get(router.addr(), "/v1/metrics").unwrap().body;
        let fleet = metrics.get("fleet").unwrap();
        assert_eq!(
            fleet.get("session_compiles").unwrap().as_f64(),
            Some(1.0),
            "{metrics}"
        );
        assert_eq!(fleet.get("session_reuses").unwrap().as_f64(), Some(2.0));
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn optimize_routes_to_the_shard_that_compiled() {
        let (a, b) = (shard(), shard());
        let router = router(vec![a.addr(), b.addr()]);
        let r = client::post(router.addr(), "/v1/estimate", &estimate_body("jacobi")).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        // An inverse query on the same model lands on the warm shard:
        // digest routing + the pool mean zero extra compiles.
        let body = Json::object([
            ("model_name", Json::from("jacobi")),
            (
                "nodes",
                Json::Array((1..=16usize).map(Json::from).collect()),
            ),
            (
                "cpus",
                Json::Array(vec![Json::from(1usize), Json::from(2usize)]),
            ),
        ]);
        let r = client::post(router.addr(), "/v1/optimize", &body).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(
            r.body
                .get("session")
                .unwrap()
                .get("reused")
                .unwrap()
                .as_bool(),
            Some(true),
            "optimize must reuse the estimate's compiled session"
        );
        assert!(
            !r.body
                .get("frontier")
                .unwrap()
                .as_array()
                .unwrap()
                .is_empty(),
            "{}",
            r.body
        );
        let metrics = client::get(router.addr(), "/v1/metrics").unwrap().body;
        let fleet = metrics.get("fleet").unwrap();
        assert_eq!(fleet.get("session_compiles").unwrap().as_f64(), Some(1.0));
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    /// The router runs the same request parser as the shards
    /// (`serve_with` shares the serve core), so request-smuggling
    /// frames — `Transfer-Encoding`, conflicting `Content-Length`
    /// duplicates, `+`-prefixed lengths — bounce with 400 *at the
    /// router*, before anything is forwarded.
    #[test]
    fn smuggling_frames_bounce_on_the_routed_path() {
        use std::io::{Read, Write};
        let a = shard();
        let router = router(vec![a.addr()]);
        let frames: [&[u8]; 3] = [
            b"POST /v1/check HTTP/1.1\r\nhost: t\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n",
            b"POST /v1/check HTTP/1.1\r\nhost: t\r\ncontent-length: 2\r\ncontent-length: 3\r\n\r\n{}",
            b"POST /v1/check HTTP/1.1\r\nhost: t\r\ncontent-length: +2\r\n\r\n{}",
        ];
        for frame in frames {
            let mut s = std::net::TcpStream::connect(router.addr()).unwrap();
            s.write_all(frame).unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            assert!(
                resp.starts_with("HTTP/1.1 400"),
                "frame {:?} got {resp}",
                String::from_utf8_lossy(frame)
            );
        }
        // The router keeps routing afterwards.
        assert_eq!(
            client::get(router.addr(), "/v1/models").unwrap().status,
            200
        );
        router.shutdown();
        a.shutdown();
    }

    #[test]
    fn killed_shard_fails_over_without_client_errors() {
        let (a, b) = (shard(), shard());
        let (addr_a, addr_b) = (a.addr(), b.addr());
        // Probe so rarely that failover must come from the request
        // path's retry, never from the prober winning the race.
        let router = start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            shards: vec![addr_a, addr_b],
            probe_interval: Duration::from_secs(300),
            ..Default::default()
        })
        .expect("bind router");
        // Wait out the prober's initial sweep so it cannot run after
        // the kill below.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let shards = client::get(router.addr(), "/v1/shards").unwrap().body;
            let swept = shards
                .get("shards")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .all(|s| s.get("probes").unwrap().as_f64() >= Some(1.0));
            if swept {
                break;
            }
            assert!(Instant::now() < deadline, "initial sweep never ran");
            std::thread::sleep(Duration::from_millis(10));
        }
        // Find which shard owns "sample", then kill exactly that one.
        let owner = router.state().owner_of(prophet_core::ArtifactKey::of(
            &prophet_serve::api::demo_model("sample").unwrap(),
            &Default::default(),
        ));
        let (owned, other) = if owner == 0 { (a, b) } else { (b, a) };
        let r = client::post(router.addr(), "/v1/estimate", &estimate_body("sample")).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        owned.shutdown();
        // The very next request must still succeed: transport failure →
        // mark-down → retry on the ring successor.
        for _ in 0..3 {
            let r = client::post(router.addr(), "/v1/estimate", &estimate_body("sample")).unwrap();
            assert_eq!(r.status, 200, "failover must hide the kill: {}", r.body);
        }
        let shards = client::get(router.addr(), "/v1/shards").unwrap().body;
        let routing = shards.get("routing").unwrap();
        assert!(
            routing.get("retries").unwrap().as_f64().unwrap() >= 1.0,
            "{shards}"
        );
        assert_eq!(routing.get("healthy").unwrap().as_f64(), Some(1.0));
        router.shutdown();
        other.shutdown();
    }

    #[test]
    fn all_shards_down_answers_502_and_recovery_is_probed() {
        let a = shard();
        let addr_a = a.addr();
        let router = router(vec![addr_a]);
        a.shutdown();
        let r = client::post(router.addr(), "/v1/estimate", &estimate_body("sample")).unwrap();
        assert_eq!(r.status, 502, "{}", r.body);
        assert!(r.body.get("error").is_some());
        // Bring a shard back on the same address: the prober marks it
        // up within a few 50 ms sweeps, without any client traffic.
        let revived = server::serve(&server::ServerConfig {
            addr: addr_a.to_string(),
            workers: 1,
            ..Default::default()
        })
        .expect("rebind shard address");
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let shards = client::get(router.addr(), "/v1/shards").unwrap().body;
            let healthy = shards.get("routing").unwrap().get("healthy").unwrap();
            if healthy.as_f64() == Some(1.0) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "prober never marked up: {shards}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        let r = client::post(router.addr(), "/v1/estimate", &estimate_body("sample")).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        router.shutdown();
        revived.shutdown();
    }

    #[test]
    fn invalid_bodies_bounce_at_the_router() {
        let a = shard();
        let router = router(vec![a.addr()]);
        for (body, status) in [
            ("not json", 400),
            ("[]", 400),
            ("{}", 400),
            (r#"{"model_name":"nope"}"#, 404),
            (r#"{"model":"<model><broken"}"#, 422),
        ] {
            let raw = client::Connection::connect(router.addr())
                .unwrap()
                .send("POST", "/v1/estimate", Some(body), &[])
                .unwrap();
            assert_eq!(raw.status, status, "{body} -> {}", raw.body);
        }
        // None of those reached the shard: its estimate endpoint (which
        // health probes never touch) stayed at zero requests.
        let metrics = client::get(router.addr(), "/v1/metrics").unwrap().body;
        let estimate_hits = metrics.get("shards").unwrap().as_array().unwrap()[0]
            .get("metrics")
            .unwrap()
            .get("endpoints")
            .unwrap()
            .get("estimate")
            .unwrap()
            .get("requests")
            .unwrap()
            .as_f64();
        assert_eq!(estimate_hits, Some(0.0), "{metrics}");
        router.shutdown();
        a.shutdown();
    }

    #[test]
    fn shutdown_broadcast_is_token_checked_and_drains_the_fleet() {
        let token = "fleet-s3cret";
        let a = server::serve(&server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            token: Some(token.to_string()),
            ..Default::default()
        })
        .expect("bind shard");
        let router = start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            shards: vec![a.addr()],
            token: Some(token.to_string()),
            probe_interval: Duration::from_millis(50),
            ..Default::default()
        })
        .expect("bind router");
        let bare = client::post(router.addr(), "/v1/shutdown", &Json::object::<&str>([])).unwrap();
        assert_eq!(bare.status, 401, "{}", bare.body);
        let ok = client::Connection::connect(router.addr())
            .unwrap()
            .send(
                "POST",
                "/v1/shutdown",
                Some("{}"),
                &[("authorization", "Bearer fleet-s3cret")],
            )
            .unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body);
        // The broadcast carried the token: the shard acknowledged.
        assert!(ok.body.contains("\"ok\":true"), "{}", ok.body);
        router.wait();
        a.wait(); // the shard drains too: the broadcast reached it
    }

    #[test]
    fn trace_ids_flow_through_to_the_owning_shard() {
        let a = shard();
        let router = router(vec![a.addr()]);
        let raw = client::Connection::connect(router.addr())
            .unwrap()
            .send(
                "POST",
                "/v1/estimate",
                Some(&estimate_body("sample").encode()),
                &[("x-prophet-trace", "t-router-1")],
            )
            .unwrap();
        assert_eq!(raw.status, 200, "{}", raw.body);
        assert_eq!(
            raw.trace.as_deref(),
            Some("t-router-1"),
            "the router must echo the client's trace ID"
        );
        // The shard saw the same trace: its journal carries the entry.
        let journal = client::get(a.addr(), "/v1/requests").unwrap().body;
        let rows = journal.get("requests").unwrap().as_array().unwrap();
        assert!(
            rows.iter()
                .any(|r| r.get("trace_id").unwrap().as_str() == Some("t-router-1")),
            "shard journal must hold the propagated trace: {journal}"
        );
        router.shutdown();
        a.shutdown();
    }

    #[test]
    fn fleet_prometheus_exposition_covers_every_shard() {
        let (a, b) = (shard(), shard());
        let router = router(vec![a.addr(), b.addr()]);
        let r = client::post(router.addr(), "/v1/estimate", &estimate_body("sample")).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        let raw = client::Connection::connect(router.addr())
            .unwrap()
            .send("GET", "/v1/metrics?format=prometheus", None, &[])
            .unwrap();
        assert_eq!(raw.status, 200, "{}", raw.body);
        for addr in [a.addr(), b.addr()] {
            assert!(
                raw.body.contains(&format!(
                    "prophet_router_shard_healthy{{shard=\"{addr}\"}} 1"
                )),
                "{}",
                raw.body
            );
            assert!(
                raw.body.contains(&format!(
                    "prophet_requests_total{{shard=\"{addr}\",endpoint=\"estimate\"}}"
                )),
                "{}",
                raw.body
            );
        }
        assert!(
            raw.body
                .contains("# TYPE prophet_request_duration_seconds histogram"),
            "{}",
            raw.body
        );
        assert!(
            raw.body
                .contains("prophet_router_requests_total{endpoint=\"estimate\"} 1"),
            "{}",
            raw.body
        );
        // Exactly one shard served the estimate; the fleet total is 1.
        let estimates: u64 = [a.addr(), b.addr()]
            .iter()
            .map(|&addr| {
                let line =
                    format!("prophet_requests_total{{shard=\"{addr}\",endpoint=\"estimate\"}} ");
                raw.body
                    .lines()
                    .find_map(|l| l.strip_prefix(line.as_str()))
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(estimates, 1, "{}", raw.body);
        // Unknown formats bounce with the shard's wording.
        let bad = client::Connection::connect(router.addr())
            .unwrap()
            .send("GET", "/v1/metrics?format=xml", None, &[])
            .unwrap();
        assert_eq!(bad.status, 400, "{}", bad.body);
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn shard_entries_report_probe_age_and_failure_streak() {
        let a = shard();
        let router = router(vec![a.addr()]);
        // Wait out the prober's first sweep so the age field is live.
        let deadline = Instant::now() + Duration::from_secs(10);
        let entry = loop {
            let shards = client::get(router.addr(), "/v1/shards").unwrap().body;
            let entry = shards.get("shards").unwrap().as_array().unwrap()[0].clone();
            if entry.get("probes").unwrap().as_f64() >= Some(1.0) {
                break entry;
            }
            assert!(Instant::now() < deadline, "prober never swept: {shards}");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(
            entry.get("last_probe_ms_ago").unwrap().as_f64().is_some(),
            "a probed shard reports its probe age: {entry}"
        );
        assert_eq!(
            entry.get("consecutive_failures").unwrap().as_f64(),
            Some(0.0),
            "{entry}"
        );
        router.shutdown();
        a.shutdown();
    }

    #[test]
    fn join_then_leave_moves_keys_with_warm_handoff() {
        let (a, b) = (shard(), shard());
        let router = router(vec![a.addr()]);
        let names = ["sample", "jacobi", "pipeline", "master_worker"];
        for name in names {
            let r = client::post(router.addr(), "/v1/estimate", &estimate_body(name)).unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
        }
        let fleet_compiles = |addr| {
            client::get(addr, "/v1/metrics")
                .unwrap()
                .body
                .get("fleet")
                .unwrap()
                .get("session_compiles")
                .unwrap()
                .as_f64()
                .unwrap()
        };
        assert_eq!(fleet_compiles(router.addr()), names.len() as f64);

        // Join b: the handoff warms every moved key on b before the
        // swap, then evicts it from a after.
        let join = Json::object([("add", Json::Array(vec![Json::from(b.addr().to_string())]))]);
        let r = client::post(router.addr(), "/v1/shards", &join).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.body.get("epoch").unwrap().as_f64(), Some(1.0));
        assert_eq!(r.body.get("shards").unwrap().as_f64(), Some(2.0));
        let moved = r.body.get("moved").unwrap().as_f64().unwrap();
        assert!(moved >= 1.0, "four keys over two shards must move some");
        assert_eq!(r.body.get("primed").unwrap().as_f64(), Some(moved));
        assert_eq!(r.body.get("evicted").unwrap().as_f64(), Some(moved));

        // Every repeat is a pool reuse: moved keys were pre-warmed on
        // the joiner, unmoved keys stayed warm on a.
        for name in names {
            let r = client::post(router.addr(), "/v1/estimate", &estimate_body(name)).unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(
                r.body
                    .get("session")
                    .unwrap()
                    .get("reused")
                    .unwrap()
                    .as_bool(),
                Some(true),
                "{name} must be warm right after the join"
            );
        }
        // Without a shared store each prime is one compile on the
        // joiner — and nothing else compiled.
        assert_eq!(fleet_compiles(router.addr()), names.len() as f64 + moved);

        // Leave a: everything it still owned moves to b, pre-warmed
        // again, so clients never see a cold (or failed) request.
        let leave = Json::object([(
            "remove",
            Json::Array(vec![Json::from(a.addr().to_string())]),
        )]);
        let r = client::post(router.addr(), "/v1/shards", &leave).unwrap();
        assert_eq!(r.status, 200, "{}", r.body);
        assert_eq!(r.body.get("epoch").unwrap().as_f64(), Some(2.0));
        for name in names {
            let r = client::post(router.addr(), "/v1/estimate", &estimate_body(name)).unwrap();
            assert_eq!(r.status, 200, "{}", r.body);
            assert_eq!(
                r.body
                    .get("session")
                    .unwrap()
                    .get("reused")
                    .unwrap()
                    .as_bool(),
                Some(true),
                "{name} must be warm right after the leave"
            );
        }
        router.shutdown();
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn reconfigure_is_validated_and_token_guarded() {
        let token = "fleet-s3cret";
        let a = server::serve(&server::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            token: Some(token.to_string()),
            ..Default::default()
        })
        .expect("bind shard");
        let router = start(&RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            shards: vec![a.addr()],
            token: Some(token.to_string()),
            probe_interval: Duration::from_millis(50),
            ..Default::default()
        })
        .expect("bind router");
        let a_label = a.addr().to_string();
        let join = Json::object([(
            "add",
            Json::Array(vec![Json::from("127.0.0.9:7099".to_string())]),
        )]);
        // No token: 401 before any validation.
        let bare = client::post(router.addr(), "/v1/shards", &join).unwrap();
        assert_eq!(bare.status, 401, "{}", bare.body);
        let send = |body: &Json| {
            client::Connection::connect(router.addr())
                .unwrap()
                .send(
                    "POST",
                    "/v1/shards",
                    Some(&body.encode()),
                    &[("authorization", "Bearer fleet-s3cret")],
                )
                .unwrap()
        };
        // 400: nothing to do, malformed address.
        assert_eq!(send(&Json::object::<&str>([])).status, 400);
        let bad = Json::object([("add", Json::Array(vec![Json::from("not-an-addr")]))]);
        assert_eq!(send(&bad).status, 400);
        // 409: duplicate join, double join, unknown leave, overlap,
        // emptied fleet.
        let dup = Json::object([("add", Json::Array(vec![Json::from(a_label.clone())]))]);
        assert_eq!(send(&dup).status, 409);
        let twice = Json::object([(
            "add",
            Json::Array(vec![
                Json::from("127.0.0.9:7099".to_string()),
                Json::from("127.0.0.9:7099".to_string()),
            ]),
        )]);
        assert_eq!(send(&twice).status, 409);
        let unknown = Json::object([(
            "remove",
            Json::Array(vec![Json::from("127.0.0.9:7099".to_string())]),
        )]);
        assert_eq!(send(&unknown).status, 409);
        let overlap = Json::object([
            (
                "add",
                Json::Array(vec![Json::from("127.0.0.9:7099".to_string())]),
            ),
            (
                "remove",
                Json::Array(vec![Json::from("127.0.0.9:7099".to_string())]),
            ),
        ]);
        assert_eq!(send(&overlap).status, 409);
        let empties = Json::object([("remove", Json::Array(vec![Json::from(a_label)]))]);
        assert_eq!(send(&empties).status, 409);
        // None of the rejects touched the fleet: still epoch 0, one
        // shard.
        let shards = client::get(router.addr(), "/v1/shards").unwrap().body;
        let routing = shards.get("routing").unwrap();
        assert_eq!(routing.get("epoch").unwrap().as_f64(), Some(0.0));
        assert_eq!(routing.get("shards").unwrap().as_f64(), Some(1.0));
        router.shutdown();
        a.shutdown();
    }

    #[test]
    fn models_and_unknown_routes_behave() {
        let a = shard();
        let router = router(vec![a.addr()]);
        let models = client::get(router.addr(), "/v1/models").unwrap();
        assert_eq!(models.status, 200);
        assert_eq!(
            models.body.get("models").unwrap().as_array().unwrap().len(),
            10
        );
        assert_eq!(client::get(router.addr(), "/nope").unwrap().status, 404);
        assert_eq!(
            client::get(router.addr(), "/v1/estimate").unwrap().status,
            405
        );
        router.shutdown();
        a.shutdown();
    }
}
