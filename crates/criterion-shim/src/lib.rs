//! Offline stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace
//! crate implements the API surface Prophet's benches use —
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement loop instead of criterion's statistics:
//! each benchmark is auto-calibrated to a small time budget, then the
//! mean iteration time (and derived throughput) is printed.
//!
//! Environment knobs:
//! * `PROPHET_BENCH_BUDGET_MS` — per-benchmark measurement budget
//!   (default 200 ms).

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value or the work behind it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration label used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark name, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Measures one routine: `iter` times the closure over a calibrated
/// number of iterations.
pub struct Bencher {
    iters_hint: u64,
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `routine`, running it enough times to fill the budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters_hint {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), self.iters_hint));
    }
}

fn budget() -> Duration {
    let ms = std::env::var("PROPHET_BENCH_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

fn run_measured(
    group: &str,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    mut call: impl FnMut(&mut Bencher),
) {
    // Calibrate: one iteration to size the loop to the budget.
    let mut probe = Bencher {
        iters_hint: 1,
        measured: None,
    };
    call(&mut probe);
    let (probe_time, _) = probe.measured.expect("bench routine never called iter()");
    let per_iter = probe_time.max(Duration::from_nanos(1));
    let iters = (budget().as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters_hint: iters,
        measured: None,
    };
    call(&mut bencher);
    let (elapsed, n) = bencher.measured.expect("bench routine never called iter()");
    let mean = elapsed.as_secs_f64() / n as f64;

    let rate = match throughput {
        Some(Throughput::Elements(e)) => format!("  {:>12.0} elem/s", e as f64 / mean),
        Some(Throughput::Bytes(b)) => format!("  {:>12.0} B/s", b as f64 / mean),
        None => String::new(),
    };
    println!(
        "{group}/{id:<32} {:>12.3} µs/iter  ({n} iters){rate}",
        mean * 1e6
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by budget.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Label the group's work per iteration for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure a routine.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_measured(&self.name, &id.into(), self.throughput, f);
        self
    }

    /// Measure a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_measured(&self.name, &id.into(), self.throughput, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Measure a stand-alone routine.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_measured("bench", &id.into(), None, f);
        self
    }
}

/// Collect benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures_and_reports() {
        std::env::set_var("PROPHET_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.throughput(Throughput::Elements(10));
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(runs > 0, "routine never ran");
    }
}
