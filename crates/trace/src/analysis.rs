//! Trace analysis: the data behind Teuta's *Charts* performance
//! visualization.

use crate::event::{EventKind, TraceFile};
use std::collections::HashMap;

/// Aggregated statistics for one performance modeling element.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementProfile {
    /// Element name.
    pub element: String,
    /// Number of completed executions across all processes.
    pub count: u64,
    /// Total inclusive time (sum over executions, all processes).
    pub total_time: f64,
    /// Mean inclusive time per execution.
    pub mean_time: f64,
    /// Maximum single execution time.
    pub max_time: f64,
}

/// One bar of a per-process Gantt chart.
#[derive(Debug, Clone, PartialEq)]
pub struct GanttSegment {
    /// Process id.
    pub pid: usize,
    /// Thread id.
    pub tid: usize,
    /// Element name.
    pub element: String,
    /// Segment start time.
    pub start: f64,
    /// Segment end time.
    pub end: f64,
}

/// A named chart series (x, y) — consumed by the visualization layer or
/// exported as CSV.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartSeries {
    /// Series name.
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl ChartSeries {
    /// CSV encoding (`x,y` rows with a `# name` header).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\nx,y\n", self.name);
        for (x, y) in &self.points {
            out.push_str(&format!("{x},{y}\n"));
        }
        out
    }
}

/// Analysis over a [`TraceFile`].
#[derive(Debug, Clone)]
pub struct TraceAnalysis {
    /// Per-element profiles, sorted by descending total time.
    pub profile: Vec<ElementProfile>,
    /// Gantt segments in start order.
    pub gantt: Vec<GanttSegment>,
    /// Per-process busy time (sum of segment lengths on tid 0 and others).
    pub busy_time: HashMap<usize, f64>,
    /// Run end time.
    pub end_time: f64,
    /// Unmatched enter events (element names) — nonempty indicates a
    /// malformed trace.
    pub unmatched: Vec<String>,
}

impl TraceAnalysis {
    /// Analyze a trace: match enter/exit pairs per `(pid, tid)` with a
    /// stack (elements nest like calls).
    pub fn analyze(tf: &TraceFile) -> Self {
        let mut stacks: HashMap<(usize, usize), Vec<(String, f64)>> = HashMap::new();
        let mut gantt = Vec::new();
        let mut totals: HashMap<String, (u64, f64, f64)> = HashMap::new();
        let mut busy: HashMap<usize, f64> = HashMap::new();
        let mut unmatched = Vec::new();

        for ev in &tf.events {
            match ev.kind {
                EventKind::Enter => {
                    stacks
                        .entry((ev.pid, ev.tid))
                        .or_default()
                        .push((ev.element.clone(), ev.time));
                }
                EventKind::Exit => {
                    let stack = stacks.entry((ev.pid, ev.tid)).or_default();
                    match stack.pop() {
                        Some((name, start)) if name == ev.element => {
                            let dur = ev.time - start;
                            gantt.push(GanttSegment {
                                pid: ev.pid,
                                tid: ev.tid,
                                element: name.clone(),
                                start,
                                end: ev.time,
                            });
                            let slot = totals.entry(name).or_insert((0, 0.0, 0.0));
                            slot.0 += 1;
                            slot.1 += dur;
                            slot.2 = slot.2.max(dur);
                            // Busy time counts only leaf time? Inclusive
                            // double-counts nesting; attribute to the
                            // innermost frame: only count if stack empty
                            // after pop (outermost) — we instead count
                            // leaf segments: if nothing was pushed since,
                            // this is a leaf. Simpler robust choice:
                            // accumulate leaf time = dur minus child time
                            // is complex; we count outermost segments for
                            // busy time.
                            if stack.is_empty() {
                                *busy.entry(ev.pid).or_default() += dur;
                            }
                        }
                        Some((name, start)) => {
                            unmatched.push(format!("exit `{}` while `{name}` open", ev.element));
                            stack.push((name, start));
                        }
                        None => unmatched.push(format!("exit `{}` with empty stack", ev.element)),
                    }
                }
                _ => {}
            }
        }
        for stack in stacks.values() {
            for (name, _) in stack {
                unmatched.push(format!("enter `{name}` never exited"));
            }
        }

        gantt.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.pid.cmp(&b.pid)));
        let mut profile: Vec<ElementProfile> = totals
            .into_iter()
            .map(|(element, (count, total, max))| ElementProfile {
                element,
                count,
                total_time: total,
                mean_time: total / count as f64,
                max_time: max,
            })
            .collect();
        profile.sort_by(|a, b| {
            b.total_time
                .total_cmp(&a.total_time)
                .then(a.element.cmp(&b.element))
        });

        Self {
            profile,
            gantt,
            busy_time: busy,
            end_time: tf.end_time,
            unmatched,
        }
    }

    /// Profile entry for one element.
    pub fn element(&self, name: &str) -> Option<&ElementProfile> {
        self.profile.iter().find(|p| p.element == name)
    }

    /// Mean CPU efficiency: busy time / (end × processes).
    pub fn efficiency(&self, processes: usize) -> f64 {
        if self.end_time <= 0.0 || processes == 0 {
            return 0.0;
        }
        let busy: f64 = self.busy_time.values().sum();
        busy / (self.end_time * processes as f64)
    }

    /// Communication summary: per-process send/recv counts (from the
    /// `MsgSend`/`MsgRecv` records) — the compute-vs-communicate view of
    /// the Charts component.
    pub fn comm_summary(&self, tf: &crate::event::TraceFile) -> Vec<(usize, u64, u64)> {
        let mut per: HashMap<usize, (u64, u64)> = HashMap::new();
        for ev in &tf.events {
            match ev.kind {
                EventKind::MsgSend => per.entry(ev.pid).or_default().0 += 1,
                EventKind::MsgRecv => per.entry(ev.pid).or_default().1 += 1,
                _ => {}
            }
        }
        let mut out: Vec<(usize, u64, u64)> =
            per.into_iter().map(|(pid, (s, r))| (pid, s, r)).collect();
        out.sort();
        out
    }

    /// Chart series: cumulative completed element executions over time.
    pub fn throughput_series(&self, name: &str) -> ChartSeries {
        let mut points = Vec::new();
        let mut count = 0.0;
        for seg in &self.gantt {
            if seg.element == name {
                count += 1.0;
                points.push((seg.end, count));
            }
        }
        ChartSeries {
            name: format!("completions:{name}"),
            points,
        }
    }
}

/// Speedup series from per-configuration run times: `(p, T1/Tp)`.
pub fn speedup_series(runs: &[(usize, f64)]) -> ChartSeries {
    let t1 = runs
        .iter()
        .find(|(p, _)| *p == 1)
        .map(|(_, t)| *t)
        .unwrap_or_else(|| runs.first().map(|(_, t)| *t).unwrap_or(1.0));
    ChartSeries {
        name: "speedup".into(),
        points: runs.iter().map(|(p, t)| (*p as f64, t1 / *t)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn ev(time: f64, pid: usize, element: &str, kind: EventKind) -> TraceEvent {
        TraceEvent {
            time,
            pid,
            tid: 0,
            element: element.into(),
            kind,
        }
    }

    fn nested_trace() -> TraceFile {
        let mut tf = TraceFile::new("t", 2);
        tf.push(ev(0.0, 0, "SA", EventKind::Enter));
        tf.push(ev(0.0, 0, "SA1", EventKind::Enter));
        tf.push(ev(1.0, 0, "SA1", EventKind::Exit));
        tf.push(ev(1.0, 0, "SA2", EventKind::Enter));
        tf.push(ev(3.0, 0, "SA2", EventKind::Exit));
        tf.push(ev(3.0, 0, "SA", EventKind::Exit));
        tf.push(ev(3.0, 1, "A2", EventKind::Enter));
        tf.push(ev(4.0, 1, "A2", EventKind::Exit));
        tf
    }

    #[test]
    fn profiles_and_nesting() {
        let a = TraceAnalysis::analyze(&nested_trace());
        assert!(a.unmatched.is_empty(), "{:?}", a.unmatched);
        let sa = a.element("SA").unwrap();
        assert_eq!(sa.count, 1);
        assert_eq!(sa.total_time, 3.0);
        let sa2 = a.element("SA2").unwrap();
        assert_eq!(sa2.total_time, 2.0);
        // Profile sorted by total time descending: SA first.
        assert_eq!(a.profile[0].element, "SA");
    }

    #[test]
    fn busy_counts_outermost_only() {
        let a = TraceAnalysis::analyze(&nested_trace());
        // pid0 busy 3.0 (SA), not 3+1+2.
        assert_eq!(a.busy_time[&0], 3.0);
        assert_eq!(a.busy_time[&1], 1.0);
    }

    #[test]
    fn efficiency() {
        let a = TraceAnalysis::analyze(&nested_trace());
        // end 4.0, 2 processes → (3+1)/(4*2) = 0.5
        assert!((a.efficiency(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gantt_sorted() {
        let a = TraceAnalysis::analyze(&nested_trace());
        assert_eq!(a.gantt.len(), 4);
        assert!(a.gantt.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn unmatched_detected() {
        let mut tf = TraceFile::new("bad", 1);
        tf.push(ev(0.0, 0, "A", EventKind::Enter));
        tf.push(ev(1.0, 0, "B", EventKind::Exit));
        let a = TraceAnalysis::analyze(&tf);
        assert_eq!(a.unmatched.len(), 2, "{:?}", a.unmatched); // bad exit + dangling enter
    }

    #[test]
    fn throughput_series_counts() {
        let mut tf = TraceFile::new("t", 1);
        for i in 0..3 {
            tf.push(ev(i as f64, 0, "K", EventKind::Enter));
            tf.push(ev(i as f64 + 0.5, 0, "K", EventKind::Exit));
        }
        let a = TraceAnalysis::analyze(&tf);
        let s = a.throughput_series("K");
        assert_eq!(s.points, vec![(0.5, 1.0), (1.5, 2.0), (2.5, 3.0)]);
        assert!(s.to_csv().contains("x,y"));
    }

    #[test]
    fn comm_summary_counts() {
        let mut tf = TraceFile::new("c", 2);
        tf.push(ev(0.0, 0, "s", EventKind::MsgSend));
        tf.push(ev(0.1, 1, "r", EventKind::MsgRecv));
        tf.push(ev(0.2, 0, "s", EventKind::MsgSend));
        let a = TraceAnalysis::analyze(&tf);
        assert_eq!(a.comm_summary(&tf), vec![(0, 2, 0), (1, 0, 1)]);
    }

    #[test]
    fn speedup() {
        let s = speedup_series(&[(1, 10.0), (2, 5.5), (4, 3.0)]);
        assert_eq!(s.points[0], (1.0, 1.0));
        assert!((s.points[1].1 - 10.0 / 5.5).abs() < 1e-12);
        assert!((s.points[2].1 - 10.0 / 3.0).abs() < 1e-12);
    }
}
