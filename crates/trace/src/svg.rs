//! SVG Gantt-chart rendering — a richer stand-in for Teuta's chart
//! window than the ASCII timeline.
//!
//! The output is self-contained SVG 1.1: one swim-lane per `(pid, tid)`
//! flow, one rectangle per trace segment, colored deterministically by
//! element name, with a time axis.

use crate::analysis::TraceAnalysis;
use std::collections::BTreeSet;

/// Options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Total chart width in pixels (excluding the label gutter).
    pub width: u32,
    /// Height of one swim lane in pixels.
    pub lane_height: u32,
    /// Label gutter width in pixels.
    pub gutter: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width: 800,
            lane_height: 22,
            gutter: 70,
        }
    }
}

/// Deterministic pastel color for an element name.
fn color_of(name: &str) -> String {
    // FNV-1a hash → hue; fixed saturation/lightness keeps text readable.
    let mut h: u32 = 0x811c9dc5;
    for b in name.as_bytes() {
        h ^= *b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    format!("hsl({}, 65%, 70%)", h % 360)
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Render the analyzed trace as an SVG Gantt chart.
pub fn render_svg(analysis: &TraceAnalysis, options: &SvgOptions) -> String {
    let end = if analysis.end_time > 0.0 {
        analysis.end_time
    } else {
        1.0
    };
    // Lanes in (pid, tid) order, from the segments present.
    let lanes: BTreeSet<(usize, usize)> = analysis.gantt.iter().map(|s| (s.pid, s.tid)).collect();
    let lanes: Vec<(usize, usize)> = lanes.into_iter().collect();
    let lane_of = |pid: usize, tid: usize| -> usize {
        lanes
            .iter()
            .position(|&l| l == (pid, tid))
            .expect("lane exists")
    };

    let opt = options;
    let chart_h = (lanes.len().max(1) as u32) * opt.lane_height;
    let total_w = opt.gutter + opt.width + 10;
    let total_h = chart_h + 40;
    let x_of = |t: f64| opt.gutter as f64 + t / end * opt.width as f64;

    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w}\" height=\"{total_h}\" font-family=\"monospace\" font-size=\"11\">\n"
    ));
    out.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");

    // Lane labels and separators.
    for (i, (pid, tid)) in lanes.iter().enumerate() {
        let y = i as u32 * opt.lane_height;
        out.push_str(&format!(
            "<text x=\"4\" y=\"{}\" fill=\"#333\">p{pid}.t{tid}</text>\n",
            y + opt.lane_height / 2 + 4
        ));
        out.push_str(&format!(
            "<line x1=\"{g}\" y1=\"{y}\" x2=\"{x2}\" y2=\"{y}\" stroke=\"#eee\"/>\n",
            g = opt.gutter,
            x2 = opt.gutter + opt.width
        ));
    }

    // Segments (sorted by start; children drawn over parents).
    for seg in &analysis.gantt {
        let lane = lane_of(seg.pid, seg.tid);
        let x = x_of(seg.start);
        let w = (x_of(seg.end) - x).max(1.0);
        let y = lane as u32 * opt.lane_height + 2;
        let h = opt.lane_height - 4;
        out.push_str(&format!(
            "<rect x=\"{x:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{h}\" fill=\"{}\" stroke=\"#666\" stroke-width=\"0.5\"><title>{} [{:.6}s – {:.6}s]</title></rect>\n",
            color_of(&seg.element),
            escape(&seg.element),
            seg.start,
            seg.end
        ));
        if w > 40.0 {
            out.push_str(&format!(
                "<text x=\"{:.1}\" y=\"{}\" fill=\"#222\">{}</text>\n",
                x + 3.0,
                y + h / 2 + 4,
                escape(&seg.element)
            ));
        }
    }

    // Time axis.
    let axis_y = chart_h + 14;
    out.push_str(&format!(
        "<line x1=\"{g}\" y1=\"{chart_h}\" x2=\"{x2}\" y2=\"{chart_h}\" stroke=\"#333\"/>\n",
        g = opt.gutter,
        x2 = opt.gutter + opt.width
    ));
    for i in 0..=4 {
        let t = end * i as f64 / 4.0;
        let x = x_of(t);
        out.push_str(&format!(
            "<line x1=\"{x:.1}\" y1=\"{chart_h}\" x2=\"{x:.1}\" y2=\"{}\" stroke=\"#333\"/>\n",
            chart_h + 4
        ));
        out.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{axis_y}\" fill=\"#333\">{t:.4}s</text>\n",
            x - 14.0
        ));
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent, TraceFile};

    fn trace() -> TraceAnalysis {
        let mut events = Vec::new();
        for (t0, t1, pid, el) in [
            (0.0, 1.0, 0usize, "Alpha"),
            (0.5, 2.0, 1usize, "Beta"),
            (1.0, 1.5, 0, "Gamma"),
        ] {
            events.push(TraceEvent {
                time: t0,
                pid,
                tid: 0,
                element: el.into(),
                kind: EventKind::Enter,
            });
            events.push(TraceEvent {
                time: t1,
                pid,
                tid: 0,
                element: el.into(),
                kind: EventKind::Exit,
            });
        }
        // Push in time order (the estimator emits monotone traces).
        events.sort_by(|a, b| a.time.total_cmp(&b.time));
        let mut tf = TraceFile::new("t", 2);
        for e in events {
            tf.push(e);
        }
        TraceAnalysis::analyze(&tf)
    }

    #[test]
    fn svg_structure() {
        let svg = render_svg(&trace(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(
            svg.matches("<rect").count(),
            1 + 3,
            "background + 3 segments"
        );
        assert!(svg.contains("p0.t0") && svg.contains("p1.t0"));
        assert!(svg.contains("<title>Alpha"));
    }

    #[test]
    fn colors_are_deterministic_and_distinct() {
        assert_eq!(color_of("A1"), color_of("A1"));
        assert_ne!(color_of("A1"), color_of("A2"));
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
    }

    #[test]
    fn empty_trace_renders_valid_svg() {
        let tf = TraceFile::new("empty", 1);
        let svg = render_svg(&TraceAnalysis::analyze(&tf), &SvgOptions::default());
        assert!(svg.starts_with("<svg") && svg.contains("</svg>"));
    }

    #[test]
    fn is_well_formed_xml() {
        // Our own XML parser should accept the SVG output.
        let svg = render_svg(&trace(), &SvgOptions::default());
        prophet_xml::parse_document(&svg).expect("SVG is well-formed XML");
    }
}
