//! Trace events and the TF container.

use prophet_xml::{Document, Element, WriteOptions, Writer, XmlError, XmlResult};

/// What a trace record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A performance modeling element began executing (its `execute()`
    /// was entered, in the paper's C++ terms).
    Enter,
    /// The element finished.
    Exit,
    /// A message was sent (MPI building blocks).
    MsgSend,
    /// A message was received.
    MsgRecv,
    /// A synthetic marker (barriers, phase boundaries).
    Marker,
}

impl EventKind {
    /// Stable text name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::MsgSend => "send",
            EventKind::MsgRecv => "recv",
            EventKind::Marker => "marker",
        }
    }

    /// Parse a text name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "enter" => EventKind::Enter,
            "exit" => EventKind::Exit,
            "send" => EventKind::MsgSend,
            "recv" => EventKind::MsgRecv,
            "marker" => EventKind::Marker,
            _ => return None,
        })
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time.
    pub time: f64,
    /// MPI process id.
    pub pid: usize,
    /// Thread id within the process (0 for the master thread).
    pub tid: usize,
    /// Performance modeling element name (`A1`, `Kernel6`, …).
    pub element: String,
    /// Record kind.
    pub kind: EventKind,
}

/// A complete trace: ordered records plus run metadata.
#[derive(Debug, Clone, Default)]
pub struct TraceFile {
    /// Model name the trace came from.
    pub model: String,
    /// End time of the simulated run.
    pub end_time: f64,
    /// Number of processes in the run.
    pub processes: usize,
    /// Records in emission order (non-decreasing time).
    pub events: Vec<TraceEvent>,
}

impl TraceFile {
    /// Empty trace for a model/run shape.
    pub fn new(model: impl Into<String>, processes: usize) -> Self {
        Self {
            model: model.into(),
            end_time: 0.0,
            processes,
            events: Vec::new(),
        }
    }

    /// Append a record (keeps `end_time` monotone).
    pub fn push(&mut self, ev: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|last| ev.time >= last.time),
            "trace time went backwards"
        );
        self.end_time = self.end_time.max(ev.time);
        self.events.push(ev);
    }

    /// Record count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no records were emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The line-oriented TF text format:
    /// `time pid tid kind element`, one record per line, with a header.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "# TF model={} processes={} end={}\n",
            self.model, self.processes, self.end_time
        );
        for e in &self.events {
            out.push_str(&format!(
                "{} {} {} {} {}\n",
                e.time,
                e.pid,
                e.tid,
                e.kind.name(),
                e.element
            ));
        }
        out
    }

    /// Parse the TF text format.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty trace file")?;
        if !header.starts_with("# TF ") {
            return Err("missing TF header".into());
        }
        let field = |key: &str| -> Result<&str, String> {
            header
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
                .ok_or_else(|| format!("header missing `{key}`"))
        };
        let mut tf = TraceFile::new(
            field("model")?,
            field("processes")?.parse().map_err(|_| "bad processes")?,
        );
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |what: &str| format!("line {}: {what}", i + 2);
            let time: f64 = parts
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse()
                .map_err(|_| err("bad time"))?;
            let pid: usize = parts
                .next()
                .ok_or_else(|| err("missing pid"))?
                .parse()
                .map_err(|_| err("bad pid"))?;
            let tid: usize = parts
                .next()
                .ok_or_else(|| err("missing tid"))?
                .parse()
                .map_err(|_| err("bad tid"))?;
            let kind = EventKind::parse(parts.next().ok_or_else(|| err("missing kind"))?)
                .ok_or_else(|| err("unknown kind"))?;
            let element = parts
                .next()
                .ok_or_else(|| err("missing element"))?
                .to_string();
            tf.push(TraceEvent {
                time,
                pid,
                tid,
                element,
                kind,
            });
        }
        Ok(tf)
    }

    /// CSV encoding (for external charting).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time,pid,tid,kind,element\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.time,
                e.pid,
                e.tid,
                e.kind.name(),
                e.element
            ));
        }
        out
    }

    /// XML encoding of the TF (streamed — traces can be large).
    pub fn to_xml(&self) -> String {
        let mut w = Writer::new(WriteOptions::default());
        w.raw("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        w.newline();
        w.start(
            "trace",
            &[
                ("model", self.model.as_str()),
                ("processes", &self.processes.to_string()),
                ("end", &format!("{}", self.end_time)),
            ],
        );
        for e in &self.events {
            w.leaf(
                "event",
                &[
                    ("t", &format!("{}", e.time)),
                    ("pid", &e.pid.to_string()),
                    ("tid", &e.tid.to_string()),
                    ("kind", e.kind.name()),
                    ("element", &e.element),
                ],
            );
        }
        w.end();
        w.finish()
    }

    /// Parse the XML encoding.
    pub fn from_xml(xml: &str) -> XmlResult<Self> {
        let doc: Document = prophet_xml::parse_document(xml)?;
        let root: &Element = &doc.root;
        if root.name != "trace" {
            return Err(XmlError::structural(format!(
                "expected <trace>, found <{}>",
                root.name
            )));
        }
        let mut tf = TraceFile::new(
            root.required_attr("model")?,
            root.required_attr("processes")?
                .parse()
                .map_err(|_| XmlError::structural("bad processes attribute"))?,
        );
        for e in root.children_named("event") {
            let kind = EventKind::parse(e.required_attr("kind")?)
                .ok_or_else(|| XmlError::structural("unknown event kind"))?;
            tf.push(TraceEvent {
                time: e
                    .required_attr("t")?
                    .parse()
                    .map_err(|_| XmlError::structural("bad event time"))?,
                pid: e
                    .required_attr("pid")?
                    .parse()
                    .map_err(|_| XmlError::structural("bad pid"))?,
                tid: e
                    .required_attr("tid")?
                    .parse()
                    .map_err(|_| XmlError::structural("bad tid"))?,
                element: e.required_attr("element")?.to_string(),
                kind,
            });
        }
        Ok(tf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceFile {
        let mut tf = TraceFile::new("demo", 2);
        tf.push(TraceEvent {
            time: 0.0,
            pid: 0,
            tid: 0,
            element: "A1".into(),
            kind: EventKind::Enter,
        });
        tf.push(TraceEvent {
            time: 0.5,
            pid: 1,
            tid: 0,
            element: "A1".into(),
            kind: EventKind::Enter,
        });
        tf.push(TraceEvent {
            time: 1.0,
            pid: 0,
            tid: 0,
            element: "A1".into(),
            kind: EventKind::Exit,
        });
        tf.push(TraceEvent {
            time: 1.25,
            pid: 0,
            tid: 0,
            element: "s0".into(),
            kind: EventKind::MsgSend,
        });
        tf.push(TraceEvent {
            time: 1.5,
            pid: 1,
            tid: 0,
            element: "A1".into(),
            kind: EventKind::Exit,
        });
        tf
    }

    #[test]
    fn push_tracks_end_time() {
        let tf = sample();
        assert_eq!(tf.end_time, 1.5);
        assert_eq!(tf.len(), 5);
        assert!(!tf.is_empty());
    }

    #[test]
    fn text_roundtrip() {
        let tf = sample();
        let text = tf.to_text();
        let back = TraceFile::from_text(&text).unwrap();
        assert_eq!(back.model, "demo");
        assert_eq!(back.processes, 2);
        assert_eq!(back.events, tf.events);
        assert_eq!(back.end_time, tf.end_time);
    }

    #[test]
    fn xml_roundtrip() {
        let tf = sample();
        let back = TraceFile::from_xml(&tf.to_xml()).unwrap();
        assert_eq!(back.events, tf.events);
        assert_eq!(back.model, tf.model);
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "time,pid,tid,kind,element");
        assert_eq!(lines.len(), 6);
        assert!(lines[4].ends_with("send,s0"));
    }

    #[test]
    fn text_parse_errors() {
        assert!(TraceFile::from_text("").is_err());
        assert!(TraceFile::from_text("not a header\n").is_err());
        let bad = "# TF model=m processes=1 end=0\nnot-a-time 0 0 enter A\n";
        let err = TraceFile::from_text(bad).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn kind_names_roundtrip() {
        for k in [
            EventKind::Enter,
            EventKind::Exit,
            EventKind::MsgSend,
            EventKind::MsgRecv,
            EventKind::Marker,
        ] {
            assert_eq!(EventKind::parse(k.name()), Some(k));
        }
        assert_eq!(EventKind::parse("bogus"), None);
    }
}
