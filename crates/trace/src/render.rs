//! ASCII timeline rendering — the textual stand-in for Teuta's Animator.

use crate::analysis::TraceAnalysis;

/// Render per-process timelines as fixed-width ASCII art.
///
/// Each process gets one row of `width` cells covering `[0, end_time]`;
/// a cell shows the first letter of the element executing there (the
/// outermost segment covering the cell midpoint), or `.` when idle.
pub fn render_timeline(analysis: &TraceAnalysis, processes: usize, width: usize) -> String {
    let width = width.max(10);
    let end = if analysis.end_time > 0.0 {
        analysis.end_time
    } else {
        1.0
    };
    let mut out = String::new();
    out.push_str(&format!(
        "timeline 0.0 .. {:.6}s ({} cells)\n",
        analysis.end_time, width
    ));
    for pid in 0..processes {
        let mut row = vec!['.'; width];
        for seg in analysis.gantt.iter().filter(|s| s.pid == pid && s.tid == 0) {
            let first = seg.element.chars().next().unwrap_or('#');
            let lo = ((seg.start / end) * width as f64).floor() as usize;
            let hi = (((seg.end / end) * width as f64).ceil() as usize).min(width);
            for cell in row.iter_mut().take(hi).skip(lo.min(width)) {
                // Inner segments overwrite outer ones — drawn later because
                // gantt is sorted by start and children start no earlier.
                *cell = first;
            }
        }
        out.push_str(&format!(
            "p{pid:<3} |{}|\n",
            row.into_iter().collect::<String>()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceEvent, TraceFile};

    #[test]
    fn renders_rows_per_process() {
        let mut tf = TraceFile::new("t", 2);
        tf.push(TraceEvent {
            time: 0.0,
            pid: 0,
            tid: 0,
            element: "Alpha".into(),
            kind: EventKind::Enter,
        });
        tf.push(TraceEvent {
            time: 5.0,
            pid: 0,
            tid: 0,
            element: "Alpha".into(),
            kind: EventKind::Exit,
        });
        tf.push(TraceEvent {
            time: 5.0,
            pid: 1,
            tid: 0,
            element: "Beta".into(),
            kind: EventKind::Enter,
        });
        tf.push(TraceEvent {
            time: 10.0,
            pid: 1,
            tid: 0,
            element: "Beta".into(),
            kind: EventKind::Exit,
        });
        let a = TraceAnalysis::analyze(&tf);
        let art = render_timeline(&a, 2, 20);
        let lines: Vec<_> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("p0"));
        // First half of p0's row is 'A', second half idle.
        assert!(lines[1].contains("AAAAAAAAAA.........."), "{art}");
        assert!(lines[2].contains("..........BBBBBBBBBB"), "{art}");
    }

    #[test]
    fn empty_trace_renders() {
        let tf = TraceFile::new("t", 1);
        let a = TraceAnalysis::analyze(&tf);
        let art = render_timeline(&a, 1, 10);
        assert!(art.contains("p0"));
        assert!(art.contains(".........."));
    }
}
