//! The model-checking rules (PP001–PP015).
//!
//! Each rule verifies one UML well-formedness or profile-conformance
//! property that the transformation algorithm (Figure 5) and the
//! Performance Estimator rely on.

use crate::mcf::Severity;
use prophet_expr::{parse_expression, parse_statements};
use prophet_uml::{Model, NodeKind, TagValue};
use std::collections::{HashMap, HashSet};

/// Variables the estimator injects into every evaluation environment:
/// system properties per the paper ("as parameters of cost functions may
/// be used the properties of system components (such as number of
/// processors, or the ID of process)").
pub const SYSTEM_VARS: &[&str] = &[
    "P", "pid", "tid", "uid", "N", "M", "nodes", "cpus", "threads",
];

/// One finding of a rule.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`PP006`), stamped by the driver.
    pub rule: String,
    /// Effective severity, stamped by the driver from the MCF.
    pub severity: Severity,
    /// Where: element or diagram name.
    pub location: String,
    /// What went wrong.
    pub message: String,
}

impl Diagnostic {
    fn new(location: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            rule: String::new(),
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
        }
    }

    /// True for error severity.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{} [{}] at `{}`: {}",
            sev, self.rule, self.location, self.message
        )
    }
}

/// A model-checking rule.
pub trait Rule: Sync {
    /// Stable id (`PP001`…).
    fn id(&self) -> &'static str;
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// Append diagnostics for violations in `model`.
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>);
}

/// Default severity of each rule (used when the MCF doesn't override).
pub fn default_severity(id: &str) -> Severity {
    match id {
        // Structural soundness and expression validity are hard errors.
        "PP001" | "PP003" | "PP004" | "PP005" | "PP006" | "PP007" | "PP008" | "PP010" | "PP011"
        | "PP014" => Severity::Error,
        // Style/suspicion-level findings.
        _ => Severity::Warning,
    }
}

/// All rules in id order.
pub fn all_rules() -> &'static [&'static dyn Rule] {
    &[
        &NamesAreIdentifiers,
        &PerfElementNamesUnique,
        &EntryPointExists,
        &EdgesReferenceDiagramNodes,
        &DecisionGuardsWellFormed,
        &CostExpressionsParse,
        &CodeFragmentsParse,
        &FunctionsWellFormed,
        &VariablesDeclared,
        &TagsConformToProfile,
        &ControlFlowAcyclic,
        &ForkJoinShape,
        &NodesReachable,
        &CompositeNestingAcyclic,
        &DecisionMergeDegree,
        &CollectivesNotRankGuarded,
    ]
}

fn is_identifier(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// PP001: performance-element names must be valid C identifiers — they
/// become C++ object names in the generated PMP (Figure 4: `Kernel6` →
/// `kernel6`).
struct NamesAreIdentifiers;
impl Rule for NamesAreIdentifiers {
    fn id(&self) -> &'static str {
        "PP001"
    }
    fn name(&self) -> &'static str {
        "element names are valid identifiers"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for el in model.elements() {
            if el.is_performance_element() && !is_identifier(&el.name) {
                out.push(Diagnostic::new(
                    &el.name,
                    format!("`{}` is not a valid identifier for C++ generation", el.name),
                ));
            }
        }
        for v in &model.variables {
            if !is_identifier(&v.name) {
                out.push(Diagnostic::new(
                    &v.name,
                    "variable name is not a valid identifier",
                ));
            }
        }
    }
}

/// PP002: performance-element names must be unique across the model —
/// they become C++ declarations in one scope (Figure 8(b) lines 64–68).
struct PerfElementNamesUnique;
impl Rule for PerfElementNamesUnique {
    fn id(&self) -> &'static str {
        "PP002"
    }
    fn name(&self) -> &'static str {
        "performance element names unique"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for &eid in &model.performance_elements() {
            *seen.entry(model.element(eid).name.as_str()).or_default() += 1;
        }
        for (name, count) in seen {
            if count > 1 {
                out.push(Diagnostic::new(
                    name,
                    format!("declared {count} times; C++ generation needs unique names"),
                ));
            }
        }
    }
}

/// Entry node of a diagram: its initial node, or the unique node with no
/// incoming edges (the paper's sub-diagram `SA` has no explicit initial).
pub fn entry_of(
    model: &Model,
    diagram: prophet_uml::DiagramId,
) -> Result<prophet_uml::ElementId, String> {
    let d = model.diagram(diagram);
    let initials: Vec<_> = d
        .nodes
        .iter()
        .copied()
        .filter(|&n| model.element(n).kind == NodeKind::Initial)
        .collect();
    match initials.len() {
        1 => return Ok(initials[0]),
        n if n > 1 => return Err(format!("diagram `{}` has {n} initial nodes", d.name)),
        _ => {}
    }
    let no_incoming: Vec<_> = d
        .nodes
        .iter()
        .copied()
        .filter(|&n| d.incoming(n).next().is_none())
        .collect();
    match no_incoming.len() {
        1 => Ok(no_incoming[0]),
        0 if d.nodes.is_empty() => Err(format!("diagram `{}` is empty", d.name)),
        0 => Err(format!(
            "diagram `{}` has no entry (every node has an incoming edge)",
            d.name
        )),
        _ => Err(format!(
            "diagram `{}` has an ambiguous entry: {} start candidates",
            d.name,
            no_incoming.len()
        )),
    }
}

/// PP003: every diagram has an unambiguous entry point.
struct EntryPointExists;
impl Rule for EntryPointExists {
    fn id(&self) -> &'static str {
        "PP003"
    }
    fn name(&self) -> &'static str {
        "diagram entry point exists and is unique"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for d in &model.diagrams {
            if d.nodes.is_empty() && d.id != model.main_diagram() {
                out.push(Diagnostic::new(&d.name, "diagram is empty"));
                continue;
            }
            if d.nodes.is_empty() {
                continue; // empty main diagram: separately a warning-free no-op
            }
            if let Err(msg) = entry_of(model, d.id) {
                out.push(Diagnostic::new(&d.name, msg));
            }
        }
    }
}

/// PP004: edges stay within their diagram and reference existing nodes.
struct EdgesReferenceDiagramNodes;
impl Rule for EdgesReferenceDiagramNodes {
    fn id(&self) -> &'static str {
        "PP004"
    }
    fn name(&self) -> &'static str {
        "edges reference nodes of their diagram"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for d in &model.diagrams {
            let members: HashSet<_> = d.nodes.iter().copied().collect();
            for e in &d.edges {
                for (end, id) in [("source", e.from), ("target", e.to)] {
                    if id.0 >= model.element_count() {
                        out.push(Diagnostic::new(
                            &d.name,
                            format!("edge {end} references nonexistent element {}", id.0),
                        ));
                    } else if !members.contains(&id) {
                        out.push(Diagnostic::new(
                            &d.name,
                            format!(
                                "edge {end} `{}` belongs to a different diagram",
                                model.element(id).name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// PP005: decision nodes have ≥ 2 outgoing edges, each guarded, with at
/// most one `else`; guards parse as expressions. Maps to the paper's
/// if-else-if generation (Figure 8(b) lines 77–87).
struct DecisionGuardsWellFormed;
impl Rule for DecisionGuardsWellFormed {
    fn id(&self) -> &'static str {
        "PP005"
    }
    fn name(&self) -> &'static str {
        "decision guards well-formed"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for d in &model.diagrams {
            for &nid in &d.nodes {
                let el = model.element(nid);
                if el.kind != NodeKind::Decision {
                    continue;
                }
                let outs: Vec<_> = d.outgoing(nid).collect();
                if outs.len() < 2 {
                    out.push(Diagnostic::new(
                        &el.name,
                        format!(
                            "decision node has {} outgoing edge(s), needs at least 2",
                            outs.len()
                        ),
                    ));
                }
                let mut else_count = 0;
                for e in &outs {
                    match e.guard.as_deref() {
                        None => out.push(Diagnostic::new(
                            &el.name,
                            format!(
                                "edge to `{}` out of a decision node has no guard",
                                model.element(e.to).name
                            ),
                        )),
                        Some("else") => else_count += 1,
                        Some(g) => {
                            if let Err(err) = parse_expression(g) {
                                out.push(Diagnostic::new(
                                    &el.name,
                                    format!("guard `{g}` does not parse: {err}"),
                                ));
                            }
                        }
                    }
                }
                if else_count > 1 {
                    out.push(Diagnostic::new(
                        &el.name,
                        "decision node has multiple `else` edges",
                    ));
                }
            }
        }
    }
}

/// Expression-valued tags that must parse.
const EXPR_TAGS: &[&str] = &[
    "cost",
    "iterations",
    "threads",
    "dest",
    "src",
    "root",
    "size",
    "count",
];

/// PP006: expression tags parse.
struct CostExpressionsParse;
impl Rule for CostExpressionsParse {
    fn id(&self) -> &'static str {
        "PP006"
    }
    fn name(&self) -> &'static str {
        "cost/communication expressions parse"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for el in model.elements() {
            let Some(st) = &el.stereotype else { continue };
            for (tag, value) in &st.values {
                if !EXPR_TAGS.contains(&tag.as_str()) {
                    continue;
                }
                if let TagValue::Expr(src) | TagValue::Str(src) = value {
                    if let Err(err) = parse_expression(src) {
                        out.push(Diagnostic::new(
                            &el.name,
                            format!("tag `{tag}` = `{src}` does not parse: {err}"),
                        ));
                    }
                }
            }
        }
    }
}

/// PP007: associated code fragments parse as statements (Figure 7(b)).
struct CodeFragmentsParse;
impl Rule for CodeFragmentsParse {
    fn id(&self) -> &'static str {
        "PP007"
    }
    fn name(&self) -> &'static str {
        "code fragments parse"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for el in model.elements() {
            if let Some(code) = el.code_fragment() {
                if let Err(err) = parse_statements(code) {
                    out.push(Diagnostic::new(
                        &el.name,
                        format!("associated code fragment does not parse: {err}"),
                    ));
                }
            }
        }
    }
}

/// PP008: cost functions are well-formed: unique names, identifier
/// params, bodies parse, no undefined function references.
struct FunctionsWellFormed;
impl Rule for FunctionsWellFormed {
    fn id(&self) -> &'static str {
        "PP008"
    }
    fn name(&self) -> &'static str {
        "cost functions well-formed"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        let mut names = HashSet::new();
        for f in &model.functions {
            if !is_identifier(&f.name) {
                out.push(Diagnostic::new(
                    &f.name,
                    "function name is not a valid identifier",
                ));
            }
            if !names.insert(f.name.as_str()) {
                out.push(Diagnostic::new(&f.name, "function defined more than once"));
            }
            let mut params = HashSet::new();
            for p in &f.params {
                if !params.insert(p.as_str()) {
                    out.push(Diagnostic::new(
                        &f.name,
                        format!("duplicate parameter `{p}`"),
                    ));
                }
            }
            match parse_expression(&f.body) {
                Err(err) => out.push(Diagnostic::new(
                    &f.name,
                    format!("body does not parse: {err}"),
                )),
                Ok(expr) => {
                    let mut called = Vec::new();
                    expr.called_functions(&mut called);
                    for c in called {
                        let defined = model.functions.iter().any(|g| g.name == c)
                            || prophet_expr::Env::builtin_names().contains(&c.as_str());
                        if !defined {
                            out.push(Diagnostic::new(
                                &f.name,
                                format!("calls undefined function `{c}`"),
                            ));
                        }
                    }
                }
            }
        }
    }
}

/// Collect names visible to expressions on elements: declared variables
/// plus system properties.
fn visible_vars(model: &Model) -> HashSet<String> {
    let mut vars: HashSet<String> = model.variables.iter().map(|v| v.name.clone()).collect();
    for s in SYSTEM_VARS {
        vars.insert((*s).to_string());
    }
    vars
}

/// PP009: free variables of guards, expression tags and function bodies
/// are declared (model variables, function params, or system properties).
struct VariablesDeclared;
impl Rule for VariablesDeclared {
    fn id(&self) -> &'static str {
        "PP009"
    }
    fn name(&self) -> &'static str {
        "variables declared before use"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        let vars = visible_vars(model);
        let check_expr = |src: &str, loc: &str, out: &mut Vec<Diagnostic>| {
            if let Ok(expr) = parse_expression(src) {
                let mut free = Vec::new();
                expr.free_vars(&mut free);
                for v in free {
                    if !vars.contains(&v) {
                        out.push(Diagnostic::new(
                            loc,
                            format!("`{src}` references undeclared variable `{v}`"),
                        ));
                    }
                }
            }
        };
        for el in model.elements() {
            if let Some(st) = &el.stereotype {
                for (tag, value) in &st.values {
                    if EXPR_TAGS.contains(&tag.as_str()) {
                        if let TagValue::Expr(src) | TagValue::Str(src) = value {
                            check_expr(src, &el.name, out);
                        }
                    }
                }
            }
        }
        for d in &model.diagrams {
            for e in &d.edges {
                if let Some(g) = &e.guard {
                    if g != "else" {
                        check_expr(g, &d.name, out);
                    }
                }
            }
        }
        for f in &model.functions {
            if let Ok(expr) = parse_expression(&f.body) {
                let mut free = Vec::new();
                expr.free_vars(&mut free);
                for v in free {
                    if !vars.contains(&v) && !f.params.contains(&v) {
                        out.push(Diagnostic::new(
                            &f.name,
                            format!("body references undeclared variable `{v}`"),
                        ));
                    }
                }
            }
        }
    }
}

/// PP010: stereotype applications conform to the profile: known
/// stereotype, known tags, matching types, required tags present.
struct TagsConformToProfile;
impl Rule for TagsConformToProfile {
    fn id(&self) -> &'static str {
        "PP010"
    }
    fn name(&self) -> &'static str {
        "tagged values conform to the profile"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for el in model.elements() {
            let Some(app) = &el.stereotype else { continue };
            let Some(st) = model.profile.get(&app.stereotype) else {
                out.push(Diagnostic::new(
                    &el.name,
                    format!("unknown stereotype `<<{}>>`", app.stereotype),
                ));
                continue;
            };
            for (tag, value) in &app.values {
                match st.tag(tag) {
                    None => out.push(Diagnostic::new(
                        &el.name,
                        format!("stereotype `<<{}>>` has no tag `{tag}`", st.name),
                    )),
                    Some(def) => {
                        if !value.matches(def.tag_type) {
                            out.push(Diagnostic::new(
                                &el.name,
                                format!(
                                    "tag `{tag}` expects {} but got `{}`",
                                    def.tag_type,
                                    value.to_text()
                                ),
                            ));
                        }
                    }
                }
            }
            for def in &st.tags {
                if def.required && app.get(&def.name).is_none() {
                    out.push(Diagnostic::new(
                        &el.name,
                        format!(
                            "required tag `{}` of `<<{}>>` is missing",
                            def.name, st.name
                        ),
                    ));
                }
            }
        }
    }
}

/// PP011: control flow within each diagram is acyclic. Iteration must be
/// expressed with `<<loop+>>` so the structured transformation (and the
/// estimator) can handle it; graph back-edges are rejected.
struct ControlFlowAcyclic;
impl Rule for ControlFlowAcyclic {
    fn id(&self) -> &'static str {
        "PP011"
    }
    fn name(&self) -> &'static str {
        "control flow acyclic (use <<loop+>> for iteration)"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for d in &model.diagrams {
            // Kahn's algorithm: leftovers indicate a cycle.
            let mut indeg: HashMap<_, usize> = d.nodes.iter().map(|&n| (n, 0)).collect();
            for e in &d.edges {
                if let Some(slot) = indeg.get_mut(&e.to) {
                    *slot += 1;
                }
            }
            let mut queue: Vec<_> = indeg
                .iter()
                .filter(|(_, &deg)| deg == 0)
                .map(|(&n, _)| n)
                .collect();
            queue.sort(); // determinism
            let mut removed = 0;
            while let Some(n) = queue.pop() {
                removed += 1;
                for e in d.outgoing(n) {
                    if let Some(slot) = indeg.get_mut(&e.to) {
                        *slot -= 1;
                        if *slot == 0 {
                            queue.push(e.to);
                        }
                    }
                }
            }
            if removed < d.nodes.len() {
                let stuck: Vec<_> = indeg
                    .iter()
                    .filter(|(_, &deg)| deg > 0)
                    .map(|(&n, _)| model.element(n).name.clone())
                    .collect();
                out.push(Diagnostic::new(
                    &d.name,
                    format!(
                        "control-flow cycle involving {{{}}}; express iteration with <<loop+>>",
                        {
                            let mut s = stuck;
                            s.sort();
                            s.join(", ")
                        }
                    ),
                ));
            }
        }
    }
}

/// PP012: forks have ≥ 2 outgoing edges, joins ≥ 2 incoming, and each
/// diagram balances fork and join counts.
struct ForkJoinShape;
impl Rule for ForkJoinShape {
    fn id(&self) -> &'static str {
        "PP012"
    }
    fn name(&self) -> &'static str {
        "fork/join shape"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for d in &model.diagrams {
            let mut forks = 0;
            let mut joins = 0;
            for &nid in &d.nodes {
                let el = model.element(nid);
                match el.kind {
                    NodeKind::Fork => {
                        forks += 1;
                        if d.outgoing(nid).count() < 2 {
                            out.push(Diagnostic::new(
                                &el.name,
                                "fork has fewer than 2 outgoing edges",
                            ));
                        }
                    }
                    NodeKind::Join => {
                        joins += 1;
                        if d.incoming(nid).count() < 2 {
                            out.push(Diagnostic::new(
                                &el.name,
                                "join has fewer than 2 incoming edges",
                            ));
                        }
                    }
                    _ => {}
                }
            }
            if forks != joins {
                out.push(Diagnostic::new(
                    &d.name,
                    format!("{forks} fork(s) but {joins} join(s)"),
                ));
            }
        }
    }
}

/// PP013: every node is reachable from the diagram entry.
struct NodesReachable;
impl Rule for NodesReachable {
    fn id(&self) -> &'static str {
        "PP013"
    }
    fn name(&self) -> &'static str {
        "all nodes reachable from the entry"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for d in &model.diagrams {
            if d.nodes.is_empty() {
                continue;
            }
            let Ok(entry) = entry_of(model, d.id) else {
                continue;
            };
            let mut seen = HashSet::new();
            let mut stack = vec![entry];
            while let Some(n) = stack.pop() {
                if !seen.insert(n) {
                    continue;
                }
                for e in d.outgoing(n) {
                    stack.push(e.to);
                }
            }
            for &nid in &d.nodes {
                if !seen.contains(&nid) {
                    out.push(Diagnostic::new(
                        model.element(nid).name.clone(),
                        format!("unreachable from the entry of diagram `{}`", d.name),
                    ));
                }
            }
        }
    }
}

/// PP014: the composite (`<<activity+>>`/`<<loop+>>`/`<<parallel+>>`)
/// nesting relation between diagrams is acyclic — a diagram must not
/// (transitively) contain itself.
struct CompositeNestingAcyclic;
impl Rule for CompositeNestingAcyclic {
    fn id(&self) -> &'static str {
        "PP014"
    }
    fn name(&self) -> &'static str {
        "composite nesting acyclic"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        // Edges: owning diagram → body diagram.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for el in model.elements() {
            if let NodeKind::CallActivity(sub) = el.kind {
                edges.push((el.diagram.0, sub.0));
            }
        }
        let n = model.diagrams.len();
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; n];
        fn dfs(
            u: usize,
            edges: &[(usize, usize)],
            color: &mut [Color],
            model: &Model,
            out: &mut Vec<Diagnostic>,
        ) {
            color[u] = Color::Gray;
            for &(a, b) in edges {
                if a != u {
                    continue;
                }
                match color[b] {
                    Color::Gray => out.push(Diagnostic::new(
                        model.diagrams[b].name.clone(),
                        "composite nesting cycle: diagram (transitively) contains itself",
                    )),
                    Color::White => dfs(b, edges, color, model, out),
                    Color::Black => {}
                }
            }
            color[u] = Color::Black;
        }
        for u in 0..n {
            if color[u] == Color::White {
                dfs(u, &edges, &mut color, model, out);
            }
        }
    }
}

/// PP015: decision nodes have one incoming edge; merge nodes have ≥ 2
/// incoming and exactly one outgoing.
struct DecisionMergeDegree;
impl Rule for DecisionMergeDegree {
    fn id(&self) -> &'static str {
        "PP015"
    }
    fn name(&self) -> &'static str {
        "decision/merge degrees"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        for d in &model.diagrams {
            for &nid in &d.nodes {
                let el = model.element(nid);
                match el.kind {
                    NodeKind::Decision if d.incoming(nid).count() != 1 => {
                        out.push(Diagnostic::new(
                            &el.name,
                            "decision node should have exactly one incoming edge",
                        ));
                    }
                    NodeKind::Decision => {}
                    NodeKind::Merge => {
                        if d.incoming(nid).count() < 2 {
                            out.push(Diagnostic::new(
                                &el.name,
                                "merge node should join ≥ 2 flows",
                            ));
                        }
                        if d.outgoing(nid).count() != 1 {
                            out.push(Diagnostic::new(
                                &el.name,
                                "merge node should have exactly one outgoing edge",
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// PP016: collective operations (`barrier`, `broadcast`, `reduce`, …)
/// reachable only through a rank-dependent guard (`pid` free in the
/// guard) diverge across ranks and hang at evaluation time — the classic
/// MPI programming error. Reported as a warning: advanced models may
/// genuinely want it and handle the consequences.
struct CollectivesNotRankGuarded;
impl Rule for CollectivesNotRankGuarded {
    fn id(&self) -> &'static str {
        "PP016"
    }
    fn name(&self) -> &'static str {
        "collectives not guarded by rank"
    }
    fn check(&self, model: &Model, out: &mut Vec<Diagnostic>) {
        const COLLECTIVES: &[&str] = &[
            "barrier",
            "broadcast",
            "reduce",
            "allreduce",
            "scatter",
            "gather",
        ];
        for d in &model.diagrams {
            // For each decision, find rank-dependent guards and scan the
            // guarded arm (transitively, within this diagram) for
            // collectives.
            for &nid in &d.nodes {
                if model.element(nid).kind != NodeKind::Decision {
                    continue;
                }
                for edge in d.outgoing(nid) {
                    let Some(guard) = &edge.guard else { continue };
                    if guard == "else" {
                        continue;
                    }
                    let Ok(expr) = parse_expression(guard) else {
                        continue;
                    };
                    let mut free = Vec::new();
                    expr.free_vars(&mut free);
                    if !free.iter().any(|v| v == "pid" || v == "tid") {
                        continue;
                    }
                    // BFS from the arm head until a merge node.
                    let mut stack = vec![edge.to];
                    let mut seen = HashSet::new();
                    while let Some(n) = stack.pop() {
                        if !seen.insert(n) {
                            continue;
                        }
                        let el = model.element(n);
                        if el.kind == NodeKind::Merge {
                            continue;
                        }
                        if let Some(st) = el.stereotype_name() {
                            if COLLECTIVES.contains(&st) {
                                out.push(Diagnostic::new(
                                    &el.name,
                                    format!(
                                        "collective `<<{st}>>` is only reached when `{guard}` holds — ranks will diverge and the evaluation will deadlock"
                                    ),
                                ));
                            }
                        }
                        for e in d.outgoing(n) {
                            stack.push(e.to);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::McfConfig;
    use prophet_uml::{ModelBuilder, TagValue, VarType};

    fn diags_for(model: &Model) -> Vec<Diagnostic> {
        crate::check_model(model, &McfConfig::default())
    }

    fn has_rule(diags: &[Diagnostic], rule: &str) -> bool {
        diags.iter().any(|d| d.rule == rule)
    }

    /// A minimal well-formed model.
    fn good() -> ModelBuilder {
        let mut b = ModelBuilder::new("good");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "0.5");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        b
    }

    #[test]
    fn good_model_no_errors() {
        let m = good().build();
        let diags = diags_for(&m);
        assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
    }

    #[test]
    fn pp001_bad_name() {
        let mut b = good();
        let main = b.main_diagram();
        b.action(main, "bad name!", "1");
        // Keep reachability rules quiet: disconnected node triggers PP013
        // (warning) but PP001 is the error we assert.
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP001"), "{diags:?}");
    }

    #[test]
    fn pp002_duplicate_names() {
        let mut b = good();
        let main = b.main_diagram();
        b.action(main, "A1", "1"); // duplicate of the good() A1
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP002"), "{diags:?}");
    }

    #[test]
    fn pp003_two_initials() {
        let mut b = good();
        let main = b.main_diagram();
        b.initial(main, "start2");
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP003"), "{diags:?}");
    }

    #[test]
    fn pp004_cross_diagram_edge() {
        let mut b = ModelBuilder::new("x");
        let main = b.main_diagram();
        let sub = b.diagram("sub");
        let a = b.action(main, "A", "1");
        let s = b.action(sub, "S", "1");
        b.flow(main, a, s); // S is not in main
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP004"), "{diags:?}");
    }

    #[test]
    fn pp005_decision_issues() {
        let mut b = ModelBuilder::new("dec");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "dec");
        let a = b.action(main, "A", "1");
        let c = b.action(main, "B", "1");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, a, "GV >"); // unparsable guard
        b.flow(main, d, c); // unguarded out of decision
        b.flow(main, a, f);
        b.flow(main, c, f);
        let m = {
            let mut b = b;
            b.global("GV", VarType::Int, None);
            b.build()
        };
        let diags = diags_for(&m);
        let pp005: Vec<_> = diags.iter().filter(|d| d.rule == "PP005").collect();
        assert!(
            pp005.iter().any(|d| d.message.contains("does not parse")),
            "{diags:?}"
        );
        assert!(
            pp005.iter().any(|d| d.message.contains("no guard")),
            "{diags:?}"
        );
    }

    #[test]
    fn pp006_bad_cost() {
        let mut b = good();
        let main = b.main_diagram();
        b.action(main, "A9", "1 + * 2");
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP006"), "{diags:?}");
    }

    #[test]
    fn pp007_bad_code_fragment() {
        let mut b = good();
        let main = b.main_diagram();
        let a = b.action(main, "A9", "1");
        b.attach_code(a, "GV = ;");
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP007"), "{diags:?}");
    }

    #[test]
    fn pp008_function_issues() {
        let mut b = good();
        b.function("F", &["x", "x"], "x + 1");
        b.function("F", &[], "1");
        b.function("G", &[], "Undefined(2)");
        let diags = diags_for(&b.build());
        let pp008: Vec<_> = diags.iter().filter(|d| d.rule == "PP008").collect();
        assert!(
            pp008
                .iter()
                .any(|d| d.message.contains("duplicate parameter")),
            "{diags:?}"
        );
        assert!(
            pp008.iter().any(|d| d.message.contains("more than once")),
            "{diags:?}"
        );
        assert!(
            pp008
                .iter()
                .any(|d| d.message.contains("undefined function")),
            "{diags:?}"
        );
    }

    #[test]
    fn pp009_undeclared_variable() {
        let mut b = good();
        let main = b.main_diagram();
        b.action(main, "A9", "mystery * 2");
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP009"), "{diags:?}");
    }

    #[test]
    fn pp009_system_vars_allowed() {
        let mut b = good();
        let main = b.main_diagram();
        b.action(main, "A9", "0.1 * P + 0.01 * pid + log2(N)");
        let diags = diags_for(&b.build());
        assert!(!has_rule(&diags, "PP009"), "{diags:?}");
    }

    #[test]
    fn pp010_profile_conformance() {
        let mut b = good();
        let main = b.main_diagram();
        let a = b.action(main, "A9", "1");
        b.set_tag(a, "nonsense", TagValue::Int(1));
        let a2 = b.action(main, "A10", "1");
        b.set_tag(a2, "time", TagValue::Str("ten".into())); // wrong type
        let diags = diags_for(&b.build());
        let pp010: Vec<_> = diags.iter().filter(|d| d.rule == "PP010").collect();
        assert!(
            pp010
                .iter()
                .any(|d| d.message.contains("no tag `nonsense`")),
            "{diags:?}"
        );
        assert!(
            pp010.iter().any(|d| d.message.contains("expects Double")),
            "{diags:?}"
        );
    }

    #[test]
    fn pp010_required_tag_missing() {
        let mut b = good();
        let main = b.main_diagram();
        b.mpi(main, "s0", "send", &[]); // missing required `dest`
        let diags = diags_for(&b.build());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "PP010" && d.message.contains("`dest`")),
            "{diags:?}"
        );
    }

    #[test]
    fn pp011_cycle_detected() {
        let mut b = ModelBuilder::new("cyc");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A", "1");
        let c = b.action(main, "B", "1");
        b.flow(main, i, a);
        b.flow(main, a, c);
        b.flow(main, c, a); // back-edge
        let diags = diags_for(&b.build());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "PP011" && d.message.contains("loop+")),
            "{diags:?}"
        );
    }

    #[test]
    fn pp012_fork_join() {
        let mut b = ModelBuilder::new("fj");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let fork = b.fork(main, "fork");
        let a = b.action(main, "A", "1");
        b.flow(main, i, fork);
        b.flow(main, fork, a); // only one branch; no join at all
        let diags = diags_for(&b.build());
        let pp012: Vec<_> = diags.iter().filter(|d| d.rule == "PP012").collect();
        assert!(
            pp012
                .iter()
                .any(|d| d.message.contains("fewer than 2 outgoing")),
            "{diags:?}"
        );
        assert!(
            pp012
                .iter()
                .any(|d| d.message.contains("1 fork(s) but 0 join(s)")),
            "{diags:?}"
        );
    }

    #[test]
    fn pp013_unreachable() {
        let mut b = good();
        let main = b.main_diagram();
        b.action(main, "Island", "1");
        let diags = diags_for(&b.build());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "PP013" && d.location == "Island"),
            "{diags:?}"
        );
    }

    #[test]
    fn pp014_self_nesting() {
        let mut b = ModelBuilder::new("selfnest");
        let main = b.main_diagram();
        let sub = b.diagram("S");
        b.call_activity(main, "C0", sub);
        // S contains a composite whose body is S itself.
        b.call_activity(sub, "C1", sub);
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP014"), "{diags:?}");
    }

    #[test]
    fn pp015_merge_degree() {
        let mut b = ModelBuilder::new("md");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let m = b.merge(main, "merge");
        let f = b.final_node(main, "end");
        b.flow(main, i, m); // only one incoming
        b.flow(main, m, f);
        let diags = diags_for(&b.build());
        assert!(has_rule(&diags, "PP015"), "{diags:?}");
    }

    #[test]
    fn pp016_rank_guarded_collective() {
        let mut b = ModelBuilder::new("diverge");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "who");
        let bar = b.mpi(main, "Sync", "barrier", &[]);
        let a = b.action(main, "Work", "1");
        let m = b.merge(main, "m");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, bar, "pid == 0"); // only rank 0 barriers!
        b.guarded_flow(main, d, a, "else");
        b.flow(main, bar, m);
        b.flow(main, a, m);
        b.flow(main, m, f);
        let diags = diags_for(&b.build());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "PP016" && d.message.contains("diverge")),
            "{diags:?}"
        );
    }

    #[test]
    fn pp016_not_triggered_by_data_guards() {
        let mut b = ModelBuilder::new("fine");
        b.global("GV", VarType::Int, Some("0"));
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "what");
        let bar = b.mpi(main, "Sync", "barrier", &[]);
        let a = b.action(main, "Work", "1");
        let m = b.merge(main, "m");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, bar, "GV == 0"); // same on all ranks
        b.guarded_flow(main, d, a, "else");
        b.flow(main, bar, m);
        b.flow(main, a, m);
        b.flow(main, m, f);
        let diags = diags_for(&b.build());
        assert!(!has_rule(&diags, "PP016"), "{diags:?}");
    }

    #[test]
    fn diagnostics_display() {
        let mut b = good();
        let main = b.main_diagram();
        b.action(main, "A9", "1 +");
        let diags = diags_for(&b.build());
        let text = diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("[PP006]"), "{text}");
        assert!(text.contains("error"), "{text}");
    }
}
