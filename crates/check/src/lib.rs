//! # prophet-check
//!
//! The **Model Checker** of Teuta (Figure 2 of Pllana et al., ICPP-W
//! 2008): "used to verify whether the model conforms to the UML
//! specification". Verification is rule-based and configured by a **Model
//! Checking File (MCF)** — an XML document selecting rules and severities,
//! mirroring the `MCF (XML)` input of the original architecture.
//!
//! Each rule is a [`Rule`] implementation with a stable id (`PP001`…)
//! producing [`Diagnostic`]s. [`check_model`] runs the configured rule set
//! over a model.
//!
//! ```
//! use prophet_uml::ModelBuilder;
//! use prophet_check::{check_model, McfConfig};
//!
//! let mut b = ModelBuilder::new("m");
//! let main = b.main_diagram();
//! let i = b.initial(main, "start");
//! let a = b.action(main, "A1", "0.5");
//! let f = b.final_node(main, "end");
//! b.flow(main, i, a);
//! b.flow(main, a, f);
//! let model = b.build();
//! let diags = check_model(&model, &McfConfig::default());
//! assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");
//! ```

pub mod mcf;
pub mod rules;

pub use mcf::{McfConfig, Severity};
pub use rules::{all_rules, Diagnostic, Rule};

use prophet_uml::Model;

/// Run every rule enabled in `config` over `model`.
pub fn check_model(model: &Model, config: &McfConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in all_rules() {
        if let Some(severity) = config.severity_of(rule.id()) {
            let before = out.len();
            rule.check(model, &mut out);
            // Stamp configured severity and rule id on new diagnostics.
            for d in &mut out[before..] {
                d.severity = severity;
                d.rule = rule.id().to_string();
            }
        }
    }
    out
}

/// True if no enabled rule produced an error-severity diagnostic.
pub fn model_is_valid(model: &Model, config: &McfConfig) -> bool {
    check_model(model, config).iter().all(|d| !d.is_error())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::ModelBuilder;

    #[test]
    fn valid_model_passes() {
        let mut b = ModelBuilder::new("ok");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "1.5");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let m = b.build();
        assert!(model_is_valid(&m, &McfConfig::default()));
    }

    #[test]
    fn disabled_rule_is_skipped() {
        // A model with an unparsable cost expression.
        let mut b = ModelBuilder::new("bad");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "1 +");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let m = b.build();

        let full = McfConfig::default();
        assert!(!model_is_valid(&m, &full));

        let mut relaxed = McfConfig::default();
        relaxed.disable("PP006");
        assert!(model_is_valid(&m, &relaxed));
    }
}
