//! The Model Checking File (MCF): rule selection and severities.
//!
//! The MCF is an XML document of the form:
//!
//! ```xml
//! <mcf>
//!   <rule id="PP006" severity="error"/>
//!   <rule id="PP011" severity="warning"/>
//!   <rule id="PP002" enabled="false"/>
//! </mcf>
//! ```
//!
//! Rules not mentioned keep their defaults. [`McfConfig::default`] enables
//! every rule at its default severity.

use prophet_xml::{parse_document, XmlError, XmlResult};
use std::collections::HashMap;

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed before transformation.
    Error,
    /// Suspicious but transformable.
    Warning,
}

/// Rule configuration parsed from (or defaulted in lieu of) an MCF file.
/// The default configuration enables every rule at its default severity.
#[derive(Debug, Clone, Default)]
pub struct McfConfig {
    overrides: HashMap<String, Option<Severity>>, // None = disabled
}

impl McfConfig {
    /// Parse an MCF XML document.
    pub fn from_xml(xml: &str) -> XmlResult<Self> {
        let doc = parse_document(xml)?;
        if doc.root.name != "mcf" {
            return Err(XmlError::structural(format!(
                "expected <mcf>, found <{}>",
                doc.root.name
            )));
        }
        let mut config = Self::default();
        for r in doc.root.children_named("rule") {
            let id = r.required_attr("id")?.to_string();
            if r.attr("enabled") == Some("false") {
                config.overrides.insert(id, None);
                continue;
            }
            let severity = match r.attr("severity") {
                Some("error") | None => Severity::Error,
                Some("warning") => Severity::Warning,
                Some(other) => {
                    return Err(XmlError::structural(format!("unknown severity `{other}`")))
                }
            };
            config.overrides.insert(id, Some(severity));
        }
        Ok(config)
    }

    /// Serialize this configuration to MCF XML (only overrides are listed).
    pub fn to_xml(&self) -> String {
        let mut root = prophet_xml::Element::new("mcf");
        let mut ids: Vec<_> = self.overrides.keys().collect();
        ids.sort();
        for id in ids {
            let mut r = prophet_xml::Element::new("rule").with_attr("id", id.clone());
            match &self.overrides[id] {
                None => r.set_attr("enabled", "false"),
                Some(Severity::Error) => r.set_attr("severity", "error"),
                Some(Severity::Warning) => r.set_attr("severity", "warning"),
            }
            root.push_element(r);
        }
        prophet_xml::Document::with_root(root).to_xml_string()
    }

    /// Disable a rule by id.
    pub fn disable(&mut self, id: &str) {
        self.overrides.insert(id.to_string(), None);
    }

    /// Force a severity for a rule.
    pub fn set_severity(&mut self, id: &str, severity: Severity) {
        self.overrides.insert(id.to_string(), Some(severity));
    }

    /// Effective severity of a rule: `None` means disabled.
    pub fn severity_of(&self, id: &str) -> Option<Severity> {
        match self.overrides.get(id) {
            Some(over) => *over,
            None => Some(crate::rules::default_severity(id)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_all() {
        let c = McfConfig::default();
        for rule in crate::rules::all_rules() {
            assert!(
                c.severity_of(rule.id()).is_some(),
                "{} disabled by default",
                rule.id()
            );
        }
    }

    #[test]
    fn parse_mcf() {
        let c = McfConfig::from_xml(
            r#"<mcf>
                 <rule id="PP006" severity="warning"/>
                 <rule id="PP002" enabled="false"/>
               </mcf>"#,
        )
        .unwrap();
        assert_eq!(c.severity_of("PP006"), Some(Severity::Warning));
        assert_eq!(c.severity_of("PP002"), None);
        // Unmentioned rules keep defaults.
        assert!(c.severity_of("PP001").is_some());
    }

    #[test]
    fn bad_severity_rejected() {
        assert!(McfConfig::from_xml(r#"<mcf><rule id="PP001" severity="fatal"/></mcf>"#).is_err());
        assert!(McfConfig::from_xml(r#"<notmcf/>"#).is_err());
    }

    #[test]
    fn xml_roundtrip() {
        let mut c = McfConfig::default();
        c.disable("PP002");
        c.set_severity("PP011", Severity::Warning);
        let xml = c.to_xml();
        let back = McfConfig::from_xml(&xml).unwrap();
        assert_eq!(back.severity_of("PP002"), None);
        assert_eq!(back.severity_of("PP011"), Some(Severity::Warning));
    }
}
