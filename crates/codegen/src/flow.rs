//! Structured control-flow recovery from activity-diagram graphs.
//!
//! The Figure-5 algorithm emits C++ whose statement order follows "the
//! specified flow in the UML model"; decision nodes become `if-else-if`
//! chains (Figure 8(b) lines 77–87) and composite activities become
//! nested blocks (lines 79–82). This module recovers that structure from
//! the edge list:
//!
//! * a **linear chain** of actions → [`FlowNode::Seq`],
//! * **decision → arms → merge** → [`FlowNode::Branch`],
//! * **fork → arms → join** → [`FlowNode::Parallel`],
//! * a composite element → [`FlowNode::Composite`] over its body diagram.
//!
//! Cyclic graphs are rejected (the checker's PP011 directs modelers to
//! `<<loop+>>`), as are decision arms that do not reconverge on a single
//! merge node.

use prophet_uml::{DiagramId, ElementId, Model, NodeKind};

/// A structured flow tree.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowNode {
    /// Execute one performance element (action or MPI block).
    Exec(ElementId),
    /// Sequential composition.
    Seq(Vec<FlowNode>),
    /// Guarded alternatives out of a decision node. `None` guard = `else`.
    Branch(Vec<(Option<String>, FlowNode)>),
    /// Concurrent arms between a fork and its join.
    Parallel(Vec<FlowNode>),
    /// A composite element (`<<activity+>>`, `<<loop+>>`,
    /// `<<parallel+>>`, `<<critical+>>`) and its body flow.
    Composite {
        /// The composite element.
        element: ElementId,
        /// Flow of the body diagram.
        body: Box<FlowNode>,
    },
    /// Nothing (empty arm).
    Empty,
}

impl FlowNode {
    /// Number of `Exec` leaves (for tests and metrics).
    pub fn exec_count(&self) -> usize {
        match self {
            FlowNode::Exec(_) => 1,
            FlowNode::Seq(items) => items.iter().map(FlowNode::exec_count).sum(),
            FlowNode::Branch(arms) => arms.iter().map(|(_, f)| f.exec_count()).sum(),
            FlowNode::Parallel(arms) => arms.iter().map(FlowNode::exec_count).sum(),
            FlowNode::Composite { body, .. } => body.exec_count(),
            FlowNode::Empty => 0,
        }
    }
}

/// Build the flow tree of `diagram`, recursing into composite bodies.
///
/// # Errors
/// Reports malformed graphs with element names (no panics on user data).
pub fn build_flow_tree(model: &Model, diagram: DiagramId) -> Result<FlowNode, String> {
    let entry = entry_of(model, diagram)?;
    let mut builder = FlowBuilder {
        model,
        diagram,
        steps: 0,
    };
    let (flow, stopped_at) = builder.walk_chain(entry, &[])?;
    if let Some(stop) = stopped_at {
        return Err(format!(
            "flow of diagram `{}` stopped unexpectedly at `{}`",
            model.diagram(diagram).name,
            model.element(stop).name
        ));
    }
    Ok(flow)
}

/// Entry node: the initial node, or the unique node without incoming
/// edges (sub-diagrams like the paper's `SA` omit the initial node).
fn entry_of(model: &Model, diagram: DiagramId) -> Result<ElementId, String> {
    let d = model.diagram(diagram);
    let initials: Vec<_> = d
        .nodes
        .iter()
        .copied()
        .filter(|&n| model.element(n).kind == NodeKind::Initial)
        .collect();
    if initials.len() == 1 {
        return Ok(initials[0]);
    }
    if initials.len() > 1 {
        return Err(format!(
            "diagram `{}` has {} initial nodes",
            d.name,
            initials.len()
        ));
    }
    let starts: Vec<_> = d
        .nodes
        .iter()
        .copied()
        .filter(|&n| d.incoming(n).next().is_none())
        .collect();
    match starts.as_slice() {
        [one] => Ok(*one),
        [] => Err(format!("diagram `{}` has no entry node", d.name)),
        many => Err(format!(
            "diagram `{}` has {} possible entry nodes; add an initial node",
            d.name,
            many.len()
        )),
    }
}

struct FlowBuilder<'a> {
    model: &'a Model,
    diagram: DiagramId,
    steps: usize,
}

impl<'a> FlowBuilder<'a> {
    fn name(&self, id: ElementId) -> &str {
        &self.model.element(id).name
    }

    fn successors(&self, id: ElementId) -> Vec<(Option<String>, ElementId)> {
        self.model
            .diagram(self.diagram)
            .outgoing(id)
            .map(|e| (e.guard.clone(), e.to))
            .collect()
    }

    fn guard_steps(&mut self) -> Result<(), String> {
        self.steps += 1;
        if self.steps > 100_000 {
            return Err(format!(
                "flow recovery exceeded 100000 steps in diagram `{}` — is the graph cyclic?",
                self.model.diagram(self.diagram).name
            ));
        }
        Ok(())
    }

    /// Walk a chain starting at `at` until a final node, a dead end, or
    /// any node in `stop_at` (used for decision/fork arms). Returns the
    /// flow and the stop node reached (if it was in `stop_at`).
    fn walk_chain(
        &mut self,
        mut at: ElementId,
        stop_at: &[ElementId],
    ) -> Result<(FlowNode, Option<ElementId>), String> {
        let mut items: Vec<FlowNode> = Vec::new();
        loop {
            self.guard_steps()?;
            if stop_at.contains(&at) {
                return Ok((seq_of(items), Some(at)));
            }
            let el = self.model.element(at);
            match el.kind {
                NodeKind::Initial => {
                    // Fall through to the single successor.
                }
                NodeKind::ActivityFinal | NodeKind::FlowFinal => {
                    return Ok((seq_of(items), None));
                }
                NodeKind::Action => {
                    items.push(FlowNode::Exec(at));
                }
                NodeKind::CallActivity(sub) => {
                    let body = build_flow_tree(self.model, sub)?;
                    items.push(FlowNode::Composite {
                        element: at,
                        body: Box::new(body),
                    });
                }
                NodeKind::Merge => {
                    // A merge reached outside of a decision arm is just a
                    // pass-through (its arms were already folded).
                }
                NodeKind::Decision => {
                    let (branch, after) = self.walk_decision(at)?;
                    items.push(branch);
                    match after {
                        Some(next) => {
                            at = next;
                            continue;
                        }
                        None => return Ok((seq_of(items), None)),
                    }
                }
                NodeKind::Fork => {
                    let (par, after) = self.walk_fork(at)?;
                    items.push(par);
                    match after {
                        Some(next) => {
                            at = next;
                            continue;
                        }
                        None => return Ok((seq_of(items), None)),
                    }
                }
                NodeKind::Join => {
                    return Err(format!(
                        "join `{}` reached without a matching fork",
                        self.name(at)
                    ));
                }
            }
            // Advance along the unique unguarded successor.
            let succ = self.successors(at);
            match succ.as_slice() {
                [] => return Ok((seq_of(items), None)),
                [(None, next)] => at = *next,
                [(Some(g), _)] => {
                    return Err(format!(
                        "edge out of `{}` has guard `{g}` but `{}` is not a decision node",
                        self.name(at),
                        self.name(at)
                    ))
                }
                _ => {
                    return Err(format!(
                        "`{}` has multiple outgoing edges but is not a decision or fork",
                        self.name(at)
                    ))
                }
            }
        }
    }

    /// Decision: each outgoing guarded edge starts an arm; all arms must
    /// reach the same merge node (or all terminate). Returns the branch
    /// node and the node after the merge.
    fn walk_decision(&mut self, dec: ElementId) -> Result<(FlowNode, Option<ElementId>), String> {
        let succ = self.successors(dec);
        if succ.len() < 2 {
            return Err(format!(
                "decision `{}` has {} outgoing edge(s)",
                self.name(dec),
                succ.len()
            ));
        }
        // Candidate merge nodes of this diagram.
        let merges: Vec<ElementId> = self
            .model
            .diagram(self.diagram)
            .nodes
            .iter()
            .copied()
            .filter(|&n| self.model.element(n).kind == NodeKind::Merge)
            .collect();

        let mut arms = Vec::new();
        let mut seen_merge: Option<ElementId> = None;
        let mut any_terminated = false;
        for (guard, target) in succ {
            let (flow, stopped) = self.walk_chain(target, &merges)?;
            match stopped {
                Some(m) => {
                    if let Some(prev) = seen_merge {
                        if prev != m {
                            return Err(format!(
                                "arms of decision `{}` reconverge on different merges (`{}` vs `{}`)",
                                self.name(dec),
                                self.name(prev),
                                self.name(m)
                            ));
                        }
                    }
                    seen_merge = Some(m);
                }
                None => any_terminated = true,
            }
            let guard = match guard.as_deref() {
                Some("else") | None => None,
                Some(g) => Some(g.to_string()),
            };
            arms.push((guard, flow));
        }
        // `else`/unguarded arms last, preserving relative order — the C++
        // else-branch must come last in the chain.
        arms.sort_by_key(|(g, _)| g.is_none());
        let branch = FlowNode::Branch(arms);
        match seen_merge {
            Some(m) => {
                if any_terminated {
                    // Mixed termination is fine: merge continues the flow.
                }
                let after = self.successors(m);
                match after.as_slice() {
                    [] => Ok((branch, None)),
                    [(None, next)] => Ok((branch, Some(*next))),
                    _ => Err(format!(
                        "merge `{}` must have exactly one unguarded outgoing edge",
                        self.name(m)
                    )),
                }
            }
            None => Ok((branch, None)),
        }
    }

    /// Fork: arms run until the matching join.
    fn walk_fork(&mut self, fork: ElementId) -> Result<(FlowNode, Option<ElementId>), String> {
        let succ = self.successors(fork);
        if succ.len() < 2 {
            return Err(format!(
                "fork `{}` has fewer than 2 outgoing edges",
                self.name(fork)
            ));
        }
        let joins: Vec<ElementId> = self
            .model
            .diagram(self.diagram)
            .nodes
            .iter()
            .copied()
            .filter(|&n| self.model.element(n).kind == NodeKind::Join)
            .collect();
        let mut arms = Vec::new();
        let mut seen_join: Option<ElementId> = None;
        for (guard, target) in succ {
            if guard.is_some() {
                return Err(format!(
                    "edges out of fork `{}` must be unguarded",
                    self.name(fork)
                ));
            }
            let (flow, stopped) = self.walk_chain(target, &joins)?;
            let Some(j) = stopped else {
                return Err(format!(
                    "an arm of fork `{}` never reaches a join",
                    self.name(fork)
                ));
            };
            if let Some(prev) = seen_join {
                if prev != j {
                    return Err(format!(
                        "arms of fork `{}` join at different nodes (`{}` vs `{}`)",
                        self.name(fork),
                        self.name(prev),
                        self.name(j)
                    ));
                }
            }
            seen_join = Some(j);
            arms.push(flow);
        }
        let join = seen_join.expect("at least one arm");
        let after = self.successors(join);
        match after.as_slice() {
            [] => Ok((FlowNode::Parallel(arms), None)),
            [(None, next)] => Ok((FlowNode::Parallel(arms), Some(*next))),
            _ => Err(format!(
                "join `{}` must have exactly one unguarded outgoing edge",
                self.name(join)
            )),
        }
    }
}

fn seq_of(mut items: Vec<FlowNode>) -> FlowNode {
    match items.len() {
        0 => FlowNode::Empty,
        1 => items.pop().expect("one item"),
        _ => FlowNode::Seq(items),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::ModelBuilder;

    #[test]
    fn linear_chain() {
        let mut b = ModelBuilder::new("lin");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A", "1");
        let c = b.action(main, "B", "1");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, c);
        b.flow(main, c, f);
        let m = b.build();
        let flow = build_flow_tree(&m, m.main_diagram()).unwrap();
        match &flow {
            FlowNode::Seq(items) => {
                assert_eq!(items.len(), 2);
                assert!(matches!(items[0], FlowNode::Exec(_)));
            }
            other => panic!("expected Seq, got {other:?}"),
        }
        assert_eq!(flow.exec_count(), 2);
    }

    #[test]
    fn decision_merge_recovers_branch() {
        let mut b = ModelBuilder::new("dec");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a1 = b.action(main, "A1", "1");
        let d = b.decision(main, "dec");
        let sa = b.action(main, "SAish", "1");
        let a2 = b.action(main, "A2", "1");
        let mg = b.merge(main, "merge");
        let a4 = b.action(main, "A4", "1");
        let f = b.final_node(main, "end");
        b.flow(main, i, a1);
        b.flow(main, a1, d);
        b.guarded_flow(main, d, sa, "GV == 1");
        b.guarded_flow(main, d, a2, "else");
        b.flow(main, sa, mg);
        b.flow(main, a2, mg);
        b.flow(main, mg, a4);
        b.flow(main, a4, f);
        let m = b.build();
        let flow = build_flow_tree(&m, m.main_diagram()).unwrap();
        let FlowNode::Seq(items) = &flow else {
            panic!("{flow:?}")
        };
        assert_eq!(items.len(), 3); // A1, Branch, A4
        let FlowNode::Branch(arms) = &items[1] else {
            panic!("{items:?}")
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].0.as_deref(), Some("GV == 1"));
        assert_eq!(arms[1].0, None); // else arm last
    }

    #[test]
    fn else_arm_sorted_last() {
        let mut b = ModelBuilder::new("order");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "dec");
        let x = b.action(main, "X", "1");
        let y = b.action(main, "Y", "1");
        let mg = b.merge(main, "merge");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, x, "else"); // else listed FIRST in the model
        b.guarded_flow(main, d, y, "GV > 0");
        b.flow(main, x, mg);
        b.flow(main, y, mg);
        b.flow(main, mg, f);
        let m = b.build();
        let flow = build_flow_tree(&m, m.main_diagram()).unwrap();
        let FlowNode::Branch(arms) = &flow else {
            panic!("{flow:?}")
        };
        assert_eq!(arms[0].0.as_deref(), Some("GV > 0"));
        assert_eq!(arms[1].0, None);
    }

    #[test]
    fn composite_recurses() {
        let mut b = ModelBuilder::new("comp");
        let main = b.main_diagram();
        let sub = b.diagram("SA");
        let i = b.initial(main, "start");
        let sa = b.call_activity(main, "SA", sub);
        let f = b.final_node(main, "end");
        b.flow(main, i, sa);
        b.flow(main, sa, f);
        let s1 = b.action(sub, "SA1", "1");
        let s2 = b.action(sub, "SA2", "1");
        b.flow(sub, s1, s2);
        let m = b.build();
        let flow = build_flow_tree(&m, m.main_diagram()).unwrap();
        let FlowNode::Composite { body, .. } = &flow else {
            panic!("{flow:?}")
        };
        assert_eq!(body.exec_count(), 2);
    }

    #[test]
    fn fork_join_recovers_parallel() {
        let mut b = ModelBuilder::new("fj");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let fk = b.fork(main, "fork");
        let x = b.action(main, "X", "1");
        let y = b.action(main, "Y", "1");
        let jn = b.join(main, "join");
        let f = b.final_node(main, "end");
        b.flow(main, i, fk);
        b.flow(main, fk, x);
        b.flow(main, fk, y);
        b.flow(main, x, jn);
        b.flow(main, y, jn);
        b.flow(main, jn, f);
        let m = b.build();
        let flow = build_flow_tree(&m, m.main_diagram()).unwrap();
        let FlowNode::Parallel(arms) = &flow else {
            panic!("{flow:?}")
        };
        assert_eq!(arms.len(), 2);
    }

    #[test]
    fn cyclic_graph_rejected() {
        let mut b = ModelBuilder::new("cyc");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A", "1");
        let c = b.action(main, "B", "1");
        b.flow(main, i, a);
        b.flow(main, a, c);
        b.flow(main, c, a);
        let m = b.build();
        let err = build_flow_tree(&m, m.main_diagram()).unwrap_err();
        assert!(err.contains("cyclic"), "{err}");
    }

    #[test]
    fn mismatched_merges_rejected() {
        let mut b = ModelBuilder::new("mm");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "dec");
        let x = b.action(main, "X", "1");
        let y = b.action(main, "Y", "1");
        let m1 = b.merge(main, "m1");
        let m2 = b.merge(main, "m2");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, x, "GV > 0");
        b.guarded_flow(main, d, y, "else");
        b.flow(main, x, m1);
        b.flow(main, y, m2);
        b.flow(main, m1, f);
        b.flow(main, m2, f);
        let m = b.build();
        let err = build_flow_tree(&m, m.main_diagram()).unwrap_err();
        assert!(err.contains("different merges"), "{err}");
    }

    #[test]
    fn dangling_join_rejected() {
        let mut b = ModelBuilder::new("dj");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let j = b.join(main, "join");
        b.flow(main, i, j);
        let m = b.build();
        let err = build_flow_tree(&m, m.main_diagram()).unwrap_err();
        assert!(err.contains("without a matching fork"), "{err}");
    }

    #[test]
    fn multiple_unguarded_successors_rejected() {
        let mut b = ModelBuilder::new("amb");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A", "1");
        let x = b.action(main, "X", "1");
        let y = b.action(main, "Y", "1");
        b.flow(main, i, a);
        b.flow(main, a, x);
        b.flow(main, a, y);
        let m = b.build();
        let err = build_flow_tree(&m, m.main_diagram()).unwrap_err();
        assert!(err.contains("multiple outgoing"), "{err}");
    }

    #[test]
    fn empty_arm_through_merge() {
        // One decision arm goes straight to the merge (skip pattern).
        let mut b = ModelBuilder::new("skip");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "dec");
        let x = b.action(main, "X", "1");
        let mg = b.merge(main, "merge");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, x, "GV > 0");
        b.guarded_flow(main, d, mg, "else");
        b.flow(main, x, mg);
        b.flow(main, mg, f);
        let m = b.build();
        let flow = build_flow_tree(&m, m.main_diagram()).unwrap();
        let FlowNode::Branch(arms) = &flow else {
            panic!("{flow:?}")
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[1].1, FlowNode::Empty);
    }
}
