//! The Figure-5 transformation algorithm: UML model → C++ (PMP).
//!
//! The emission follows the paper's phases exactly (line numbers refer to
//! the algorithm listing in Figure 5):
//!
//! 1. lines 1–8: identify and select performance modeling elements by
//!    stereotype name (via [`Model::performance_elements`], which the
//!    Figure-6 traverser feeds),
//! 2. lines 9–12: globals,
//! 3. lines 13–18: cost functions,
//! 4. lines 20–23: locals,
//! 5. lines 24–28: performance-modeling-element declarations,
//! 6. lines 29–35: the execution flow (`execute()` calls, `if-else-if`
//!    for decisions, nested blocks for composites).
//!
//! The output shape is pinned to Figure 8 by golden tests in the
//! workspace (`sample_model_cpp_fig8`).

use crate::flow::{build_flow_tree, FlowNode};
use prophet_expr::cpp::{expr_to_cpp, fragment_to_cpp, function_to_cpp};
use prophet_expr::{parse_expression, parse_statements, FunctionDef};
use prophet_uml::{ElementId, Model, NodeKind, TagValue};
use std::fmt;

/// Transformation failure (malformed model; the checker should have
/// caught it, but codegen never panics on user data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError(pub String);

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.0)
    }
}

impl std::error::Error for CodegenError {}

/// The generated C++ compilation unit, split into the sections the paper
/// shows in Figure 8(a) and 8(b).
#[derive(Debug, Clone)]
pub struct CppUnit {
    /// Model name.
    pub model_name: String,
    /// Section: global variable definitions (Figure 8(a) lines 24–25).
    pub globals: String,
    /// Section: cost function definitions (Figure 8(a) lines 31–54).
    pub cost_functions: String,
    /// Section: the program body — locals, declarations, flow
    /// (Figure 8(b)).
    pub program: String,
}

impl CppUnit {
    /// The complete PMP translation unit, including the runtime prelude.
    pub fn full_text(&self) -> String {
        format!(
            "{}\n// === Performance Model of Program (PMP): {} ===\n\n// Global variables\n{}\n// Cost functions\n{}\n{}",
            crate::runtime::runtime_prelude(),
            self.model_name,
            self.globals,
            self.cost_functions,
            self.program
        )
    }

    /// The model-specific text only (no prelude) — what Figure 8 shows.
    pub fn model_text(&self) -> String {
        format!(
            "// Global variables\n{}\n// Cost functions\n{}\n{}",
            self.globals, self.cost_functions, self.program
        )
    }
}

/// C++ class representing a stereotype in the PMP (the paper maps
/// `<<action+>>` to class `ActionPlus`, Figure 4(b)).
pub fn class_of_stereotype(stereotype: &str) -> &'static str {
    match stereotype {
        "action+" => "ActionPlus",
        "activity+" => "ActivityPlus",
        "loop+" => "LoopPlus",
        "parallel+" => "ParallelPlus",
        "critical+" => "CriticalPlus",
        "send" => "MpiSend",
        "recv" => "MpiRecv",
        "broadcast" => "MpiBroadcast",
        "reduce" => "MpiReduce",
        "allreduce" => "MpiAllreduce",
        "scatter" => "MpiScatter",
        "gather" => "MpiGather",
        "barrier" => "MpiBarrier",
        _ => "ActionPlus",
    }
}

/// Instance name: the paper lower-cases the element name's first letter
/// (`Kernel6` → `kernel6`, Figure 4(c)).
pub fn instance_name(element_name: &str) -> String {
    let mut chars = element_name.chars();
    match chars.next() {
        Some(c) => c.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Run the Figure-5 algorithm over `model`.
pub fn generate_cpp(model: &Model) -> Result<CppUnit, CodegenError> {
    // --- Lines 1–8: identify and select performance modeling elements. ---
    let perf_elements = model.performance_elements();

    // --- Lines 9–12: globals. ---
    let mut globals = String::new();
    for v in model.globals() {
        match &v.init {
            Some(init) => {
                globals.push_str(&format!("{} {} = {};\n", v.var_type.cpp(), v.name, init))
            }
            None => globals.push_str(&format!("{} {};\n", v.var_type.cpp(), v.name)),
        }
    }

    // --- Lines 13–18: cost functions. ---
    // Functions declared on the model come first; elements whose `cost`
    // tag is an inline expression (not a plain call to a declared
    // function) get a synthesized function, so every element executes via
    // a named cost function exactly as in Figure 8.
    let mut cost_functions = String::new();
    for f in &model.functions {
        let body = parse_expression(&f.body)
            .map_err(|e| CodegenError(format!("cost function `{}`: {e}", f.name)))?;
        let def = FunctionDef::new(f.name.clone(), f.params.clone(), body);
        cost_functions.push_str(&function_to_cpp(&def));
        cost_functions.push('\n');
    }

    // --- Program section. ---
    let mut program = String::new();
    program.push_str("// Program\n");
    program.push_str(&format!(
        "void {}(int uid, int pid, int tid) {{\n",
        sanitize(&model.name)
    ));

    // Lines 20–23: locals.
    let locals: Vec<_> = model.locals().collect();
    if !locals.is_empty() {
        program.push_str("  // Local variables\n");
        for v in &locals {
            match &v.init {
                Some(init) => {
                    program.push_str(&format!("  {} {} = {};\n", v.var_type.cpp(), v.name, init))
                }
                None => program.push_str(&format!("  {} {};\n", v.var_type.cpp(), v.name)),
            }
        }
    }

    // Lines 24–28: declare performance modeling elements.
    program.push_str("  // Declare performance modeling elements\n");
    for &eid in &perf_elements {
        let el = model.element(eid);
        // Composites are structural in the C++ flow (nested blocks); only
        // executable elements get object declarations — matching Figure 8
        // where SA has no declaration but SA1/SA2 do.
        if is_executable(model, eid) {
            let class = class_of_stereotype(el.stereotype_name().unwrap_or("action+"));
            let id_tag = match el.tag("id") {
                Some(TagValue::Int(i)) => i.to_string(),
                _ => eid.0.to_string(),
            };
            program.push_str(&format!(
                "  {class} {}(\"{}\", {id_tag});\n",
                instance_name(&el.name),
                el.name
            ));
        }
    }

    // Lines 29–35: define elements and their control flow.
    program.push_str("  // Execution flow of performance modeling elements\n");
    let flow = build_flow_tree(model, model.main_diagram()).map_err(CodegenError)?;
    emit_flow(model, &flow, 1, &mut program)?;
    program.push_str("}\n");

    Ok(CppUnit {
        model_name: model.name.clone(),
        globals,
        cost_functions,
        program,
    })
}

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Executable = produces an `execute()` call (actions and MPI blocks).
fn is_executable(model: &Model, eid: ElementId) -> bool {
    let el = model.element(eid);
    matches!(el.kind, NodeKind::Action)
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// The cost argument of `execute()`: the `cost` tag expression, or the
/// literal `time` tag, or `0` when neither is given.
fn cost_argument(model: &Model, eid: ElementId) -> Result<String, CodegenError> {
    let el = model.element(eid);
    if let Some(src) = el.cost_expr() {
        let expr = parse_expression(src)
            .map_err(|e| CodegenError(format!("cost of `{}`: {e}", el.name)))?;
        return Ok(expr_to_cpp(&expr));
    }
    if let Some(TagValue::Num(t)) = el.tag("time") {
        return Ok(format!("{t}"));
    }
    if let Some(TagValue::Int(t)) = el.tag("time") {
        return Ok(format!("{t}"));
    }
    Ok("0".into())
}

fn emit_flow(
    model: &Model,
    flow: &FlowNode,
    indent: usize,
    out: &mut String,
) -> Result<(), CodegenError> {
    match flow {
        FlowNode::Empty => Ok(()),
        FlowNode::Seq(items) => {
            for item in items {
                emit_flow(model, item, indent, out)?;
            }
            Ok(())
        }
        FlowNode::Exec(eid) => {
            let el = model.element(eid.0.into_id());
            // Associated code fragment first (Figure 8(b) lines 72–75),
            // then the execute() call (line 76).
            if let Some(code) = el.code_fragment() {
                let stmts = parse_statements(code)
                    .map_err(|e| CodegenError(format!("code fragment of `{}`: {e}", el.name)))?;
                pad(out, indent);
                out.push_str(&format!("// Code associated with {}\n", el.name));
                out.push_str(&fragment_to_cpp(&stmts, indent));
            }
            let cost = cost_argument(model, *eid)?;
            pad(out, indent);
            out.push_str(&format!(
                "{}.execute(uid, pid, tid, {cost});\n",
                instance_name(&el.name)
            ));
            Ok(())
        }
        FlowNode::Branch(arms) => {
            // Figure 8(b) lines 77–87: if-else-if chain.
            let mut first = true;
            for (guard, arm) in arms {
                match guard {
                    Some(g) => {
                        let expr = parse_expression(g)
                            .map_err(|e| CodegenError(format!("guard `{g}`: {e}")))?;
                        if first {
                            pad(out, indent);
                            out.push_str(&format!("if ({}) {{\n", expr_to_cpp(&expr)));
                        } else {
                            pad(out, indent);
                            out.push_str(&format!("}} else if ({}) {{\n", expr_to_cpp(&expr)));
                        }
                    }
                    None => {
                        if first {
                            // A branch whose first arm is `else` is a
                            // degenerate unconditional block.
                            pad(out, indent);
                            out.push_str("if (true) {\n");
                        } else {
                            pad(out, indent);
                            out.push_str("} else {\n");
                        }
                    }
                }
                emit_flow(model, arm, indent + 1, out)?;
                first = false;
            }
            pad(out, indent);
            out.push_str("}\n");
            Ok(())
        }
        FlowNode::Parallel(arms) => {
            pad(out, indent);
            out.push_str("// Concurrent flows (fork/join)\n");
            pad(out, indent);
            out.push_str("#pragma omp parallel sections\n");
            pad(out, indent);
            out.push_str("{\n");
            for arm in arms {
                pad(out, indent + 1);
                out.push_str("#pragma omp section\n");
                pad(out, indent + 1);
                out.push_str("{\n");
                emit_flow(model, arm, indent + 2, out)?;
                pad(out, indent + 1);
                out.push_str("}\n");
            }
            pad(out, indent);
            out.push_str("}\n");
            Ok(())
        }
        FlowNode::Composite { element, body } => {
            let el = model.element(*element);
            match el.stereotype_name() {
                Some("loop+") => {
                    let count = el
                        .tag("iterations")
                        .and_then(TagValue::as_expr)
                        .ok_or_else(|| {
                            CodegenError(format!("loop `{}` has no iterations tag", el.name))
                        })?;
                    let expr = parse_expression(count)
                        .map_err(|e| CodegenError(format!("iterations of `{}`: {e}", el.name)))?;
                    let var = match el.tag("variable") {
                        Some(TagValue::Str(v)) => v.clone(),
                        _ => format!("i_{}", instance_name(&el.name)),
                    };
                    pad(out, indent);
                    out.push_str(&format!(
                        "for (int {var} = 0; {var} < {}; ++{var}) {{ // {}\n",
                        expr_to_cpp(&expr),
                        el.name
                    ));
                    emit_flow(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
                Some("parallel+") => {
                    let threads = el.tag("threads").and_then(TagValue::as_expr);
                    pad(out, indent);
                    match threads {
                        Some(t) => {
                            let expr = parse_expression(t).map_err(|e| {
                                CodegenError(format!("threads of `{}`: {e}", el.name))
                            })?;
                            out.push_str(&format!(
                                "#pragma omp parallel num_threads({}) // {}\n",
                                expr_to_cpp(&expr),
                                el.name
                            ));
                        }
                        None => out.push_str(&format!("#pragma omp parallel // {}\n", el.name)),
                    }
                    pad(out, indent);
                    out.push_str("{\n");
                    emit_flow(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
                Some("critical+") => {
                    pad(out, indent);
                    out.push_str(&format!("#pragma omp critical // {}\n", el.name));
                    pad(out, indent);
                    out.push_str("{\n");
                    emit_flow(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
                _ => {
                    // <<activity+>>: nested block (Figure 8(b) lines 79–82).
                    pad(out, indent);
                    out.push_str(&format!("{{ // Activity {}\n", el.name));
                    emit_flow(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
            }
            Ok(())
        }
    }
}

/// Tiny helper to keep `Exec(eid)` ergonomic above.
trait IntoId {
    fn into_id(self) -> ElementId;
}
impl IntoId for usize {
    fn into_id(self) -> ElementId {
        ElementId(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::{ModelBuilder, VarType};

    #[test]
    fn instance_naming_matches_figure4() {
        assert_eq!(instance_name("Kernel6"), "kernel6");
        assert_eq!(instance_name("A1"), "a1");
        assert_eq!(instance_name("SA"), "sA");
    }

    #[test]
    fn kernel6_figure4_shape() {
        // Figure 4(c): `ActionPlus kernel6(...); kernel6.execute(...,FK6(...));`
        let mut b = ModelBuilder::new("kernel6_model");
        b.function("FK6", &[], "1.6e-9 * N * N * M");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let k = b.action(main, "Kernel6", "FK6()");
        let f = b.final_node(main, "end");
        b.flow(main, i, k);
        b.flow(main, k, f);
        let unit = generate_cpp(&b.build()).unwrap();
        assert!(
            unit.program.contains("ActionPlus kernel6(\"Kernel6\", 1);"),
            "{}",
            unit.program
        );
        assert!(
            unit.program
                .contains("kernel6.execute(uid, pid, tid, FK6());"),
            "{}",
            unit.program
        );
        assert!(
            unit.cost_functions.contains("double FK6(){ return"),
            "{}",
            unit.cost_functions
        );
    }

    #[test]
    fn globals_and_locals_sections() {
        let mut b = ModelBuilder::new("vars");
        b.global("GV", VarType::Int, Some("0"));
        b.global("P", VarType::Int, Some("4"));
        b.local("t", VarType::Double, None);
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "1");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let unit = generate_cpp(&b.build()).unwrap();
        assert_eq!(unit.globals, "int GV = 0;\nint P = 4;\n");
        assert!(unit.program.contains("  double t;\n"), "{}", unit.program);
    }

    #[test]
    fn branch_becomes_if_else_if() {
        let mut b = ModelBuilder::new("branchy");
        b.global("GV", VarType::Int, Some("0"));
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "dec");
        let x = b.action(main, "X", "1");
        let y = b.action(main, "Y", "2");
        let z = b.action(main, "Z", "3");
        let mg = b.merge(main, "merge");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, x, "GV == 1");
        b.guarded_flow(main, d, y, "GV == 2");
        b.guarded_flow(main, d, z, "else");
        b.flow(main, x, mg);
        b.flow(main, y, mg);
        b.flow(main, z, mg);
        b.flow(main, mg, f);
        let unit = generate_cpp(&b.build()).unwrap();
        let p = &unit.program;
        assert!(p.contains("if (GV == 1) {"), "{p}");
        assert!(p.contains("} else if (GV == 2) {"), "{p}");
        assert!(p.contains("} else {"), "{p}");
    }

    #[test]
    fn code_fragment_emitted_before_execute() {
        let mut b = ModelBuilder::new("frag");
        b.global("GV", VarType::Int, Some("0"));
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "1");
        b.attach_code(a, "GV = 1;");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let unit = generate_cpp(&b.build()).unwrap();
        let frag_pos = unit.program.find("GV = 1;").expect("fragment present");
        let exec_pos = unit.program.find("a1.execute").expect("execute present");
        assert!(frag_pos < exec_pos, "{}", unit.program);
    }

    #[test]
    fn loop_composite_becomes_for() {
        let mut b = ModelBuilder::new("loopy");
        let main = b.main_diagram();
        let body = b.diagram("body");
        let i = b.initial(main, "start");
        let lp = b.loop_activity(main, "KLoop", body, "100");
        let f = b.final_node(main, "end");
        b.flow(main, i, lp);
        b.flow(main, lp, f);
        b.action(body, "Step", "0.5");
        let unit = generate_cpp(&b.build()).unwrap();
        assert!(
            unit.program
                .contains("for (int i_kLoop = 0; i_kLoop < 100; ++i_kLoop) { // KLoop"),
            "{}",
            unit.program
        );
        assert!(unit.program.contains("step.execute"), "{}", unit.program);
    }

    #[test]
    fn parallel_region_becomes_pragma() {
        let mut b = ModelBuilder::new("omp");
        let main = b.main_diagram();
        let body = b.diagram("body");
        let i = b.initial(main, "start");
        let pr = b.parallel_activity(main, "Region", body, "threads");
        let f = b.final_node(main, "end");
        b.flow(main, i, pr);
        b.flow(main, pr, f);
        b.action(body, "Work", "1.0 / threads");
        let unit = generate_cpp(&b.build()).unwrap();
        assert!(
            unit.program
                .contains("#pragma omp parallel num_threads(threads) // Region"),
            "{}",
            unit.program
        );
    }

    #[test]
    fn time_tag_used_when_no_cost() {
        let mut b = ModelBuilder::new("timed");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.timed_action(main, "SampleAction", 10.0);
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let unit = generate_cpp(&b.build()).unwrap();
        assert!(
            unit.program
                .contains("sampleAction.execute(uid, pid, tid, 10);"),
            "{}",
            unit.program
        );
    }

    #[test]
    fn mpi_elements_use_mpi_classes() {
        use prophet_uml::TagValue;
        let mut b = ModelBuilder::new("mpi");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let s = b.mpi(
            main,
            "send0",
            "send",
            &[("dest", TagValue::Expr("pid + 1".into()))],
        );
        let f = b.final_node(main, "end");
        b.flow(main, i, s);
        b.flow(main, s, f);
        let unit = generate_cpp(&b.build()).unwrap();
        assert!(
            unit.program.contains("MpiSend send0(\"send0\""),
            "{}",
            unit.program
        );
    }

    #[test]
    fn bad_cost_reported_not_panicked() {
        let mut b = ModelBuilder::new("bad");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "1 +");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let err = generate_cpp(&b.build()).unwrap_err();
        assert!(err.0.contains("A1"), "{err}");
    }

    #[test]
    fn full_text_includes_prelude() {
        let mut b = ModelBuilder::new("mini");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "1");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let unit = generate_cpp(&b.build()).unwrap();
        let full = unit.full_text();
        assert!(full.contains("class ActionPlus"), "prelude missing");
        assert!(full.contains("PMP"), "section banner missing");
    }
}
