//! Program-code skeleton generation — the paper's stated future work.
//!
//! Section 5: "In future we plan to extend our approach to enable the
//! automatic generation of the program code based on the UML model."
//! This module implements that extension: from the same flow tree as the
//! PMP backend it emits a compilable **C + MPI/OpenMP program skeleton**
//! — real control flow, real MPI calls, `TODO` bodies where the modeled
//! code blocks go.
//!
//! The skeleton and the performance model are two projections of one
//! model, so they stay structurally consistent by construction.

use crate::cpp::instance_name;
use crate::flow::{build_flow_tree, FlowNode};
use crate::CodegenError;
use prophet_expr::cpp::expr_to_cpp;
use prophet_expr::parse_expression;
use prophet_uml::{Model, NodeKind, TagValue};

/// Generate a C + MPI/OpenMP skeleton program for `model`.
pub fn generate_skeleton(model: &Model) -> Result<String, CodegenError> {
    let mut out = String::new();
    out.push_str("/* Program skeleton generated from the UML performance model.\n");
    out.push_str(&format!(" * Model: {}\n", model.name));
    out.push_str(" * Each TODO marks a code block whose performance the model\n");
    out.push_str(" * describes with a cost function. */\n");
    out.push_str("#include <mpi.h>\n#include <math.h>\n#include <stdio.h>\n#include <stdlib.h>\n");
    if uses_openmp(model) {
        out.push_str("#include <omp.h>\n");
    }
    out.push('\n');

    // Globals.
    for v in model.globals() {
        match &v.init {
            Some(init) => out.push_str(&format!("{} {} = {};\n", v.var_type.cpp(), v.name, init)),
            None => out.push_str(&format!("{} {};\n", v.var_type.cpp(), v.name)),
        }
    }
    out.push('\n');

    // One function stub per modeled code block.
    for el in model.elements() {
        if el.kind == NodeKind::Action && el.stereotype_name() == Some("action+") {
            out.push_str(&format!(
                "/* Code block modeled by <<action+>> {} */\nvoid block_{}(int pid, int tid) {{\n    /* TODO: implement {} */\n}}\n\n",
                el.name,
                instance_name(&el.name),
                el.name
            ));
        }
    }

    out.push_str("int main(int argc, char** argv) {\n");
    out.push_str("    int pid = 0, P = 1;\n");
    out.push_str("    MPI_Init(&argc, &argv);\n");
    out.push_str("    MPI_Comm_rank(MPI_COMM_WORLD, &pid);\n");
    out.push_str("    MPI_Comm_size(MPI_COMM_WORLD, &P);\n");
    // Locals.
    for v in model.locals() {
        match &v.init {
            Some(init) => out.push_str(&format!(
                "    {} {} = {};\n",
                v.var_type.cpp(),
                v.name,
                init
            )),
            None => out.push_str(&format!("    {} {} = 0;\n", v.var_type.cpp(), v.name)),
        }
    }
    let flow = build_flow_tree(model, model.main_diagram()).map_err(CodegenError)?;
    emit(model, &flow, 1, &mut out)?;
    out.push_str("    MPI_Finalize();\n    return 0;\n}\n");
    Ok(out)
}

fn uses_openmp(model: &Model) -> bool {
    model
        .elements()
        .iter()
        .any(|e| matches!(e.stereotype_name(), Some("parallel+" | "critical+")))
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("    ");
    }
}

fn tag_cpp(
    model: &Model,
    eid: prophet_uml::ElementId,
    tag: &str,
    default: &str,
) -> Result<String, CodegenError> {
    let el = model.element(eid);
    match el.tag(tag) {
        Some(TagValue::Expr(src)) | Some(TagValue::Str(src)) => {
            let e = parse_expression(src)
                .map_err(|e| CodegenError(format!("tag `{tag}` of `{}`: {e}", el.name)))?;
            Ok(expr_to_cpp(&e))
        }
        Some(TagValue::Int(i)) => Ok(i.to_string()),
        Some(TagValue::Num(n)) => Ok(n.to_string()),
        _ => Ok(default.to_string()),
    }
}

fn emit(
    model: &Model,
    flow: &FlowNode,
    indent: usize,
    out: &mut String,
) -> Result<(), CodegenError> {
    match flow {
        FlowNode::Empty => Ok(()),
        FlowNode::Seq(items) => {
            for i in items {
                emit(model, i, indent, out)?;
            }
            Ok(())
        }
        FlowNode::Exec(eid) => {
            let el = model.element(*eid);
            match el.stereotype_name() {
                Some("send") => {
                    let dest = tag_cpp(model, *eid, "dest", "0")?;
                    let size = tag_cpp(model, *eid, "size", "0")?;
                    let tag = tag_cpp(model, *eid, "tag", "0")?;
                    pad(out, indent);
                    out.push_str(&format!(
                        "MPI_Send(buf_{0}, (int)({size}), MPI_BYTE, (int)({dest}), {tag}, MPI_COMM_WORLD); /* {1} */\n",
                        instance_name(&el.name),
                        el.name
                    ));
                }
                Some("recv") => {
                    let src = tag_cpp(model, *eid, "src", "0")?;
                    let tag = tag_cpp(model, *eid, "tag", "0")?;
                    pad(out, indent);
                    out.push_str(&format!(
                        "MPI_Recv(buf_{0}, BUFSIZ, MPI_BYTE, (int)({src}), {tag}, MPI_COMM_WORLD, MPI_STATUS_IGNORE); /* {1} */\n",
                        instance_name(&el.name),
                        el.name
                    ));
                }
                Some("broadcast") => {
                    let root = tag_cpp(model, *eid, "root", "0")?;
                    let size = tag_cpp(model, *eid, "size", "0")?;
                    pad(out, indent);
                    out.push_str(&format!(
                        "MPI_Bcast(buf_{0}, (int)({size}), MPI_BYTE, (int)({root}), MPI_COMM_WORLD); /* {1} */\n",
                        instance_name(&el.name),
                        el.name
                    ));
                }
                Some("reduce") => {
                    let root = tag_cpp(model, *eid, "root", "0")?;
                    pad(out, indent);
                    out.push_str(&format!(
                        "MPI_Reduce(sendbuf_{0}, recvbuf_{0}, 1, MPI_DOUBLE, MPI_SUM, (int)({root}), MPI_COMM_WORLD); /* {1} */\n",
                        instance_name(&el.name),
                        el.name
                    ));
                }
                Some("allreduce") => {
                    pad(out, indent);
                    out.push_str(&format!(
                        "MPI_Allreduce(sendbuf_{0}, recvbuf_{0}, 1, MPI_DOUBLE, MPI_SUM, MPI_COMM_WORLD); /* {1} */\n",
                        instance_name(&el.name),
                        el.name
                    ));
                }
                Some("scatter") => {
                    let root = tag_cpp(model, *eid, "root", "0")?;
                    pad(out, indent);
                    out.push_str(&format!(
                        "MPI_Scatter(sendbuf_{0}, 1, MPI_DOUBLE, recvbuf_{0}, 1, MPI_DOUBLE, (int)({root}), MPI_COMM_WORLD); /* {1} */\n",
                        instance_name(&el.name),
                        el.name
                    ));
                }
                Some("gather") => {
                    let root = tag_cpp(model, *eid, "root", "0")?;
                    pad(out, indent);
                    out.push_str(&format!(
                        "MPI_Gather(sendbuf_{0}, 1, MPI_DOUBLE, recvbuf_{0}, 1, MPI_DOUBLE, (int)({root}), MPI_COMM_WORLD); /* {1} */\n",
                        instance_name(&el.name),
                        el.name
                    ));
                }
                Some("barrier") => {
                    pad(out, indent);
                    out.push_str(&format!("MPI_Barrier(MPI_COMM_WORLD); /* {} */\n", el.name));
                }
                _ => {
                    // Associated code fragment (if any) becomes real code.
                    if let Some(code) = el.code_fragment() {
                        let stmts = prophet_expr::parse_statements(code).map_err(|e| {
                            CodegenError(format!("code fragment of `{}`: {e}", el.name))
                        })?;
                        out.push_str(&prophet_expr::cpp::fragment_to_cpp(&stmts, indent * 2));
                    }
                    pad(out, indent);
                    out.push_str(&format!("block_{}(pid, 0);\n", instance_name(&el.name)));
                }
            }
            Ok(())
        }
        FlowNode::Branch(arms) => {
            let mut first = true;
            for (guard, arm) in arms {
                pad(out, indent);
                match guard {
                    Some(g) => {
                        let e = parse_expression(g)
                            .map_err(|err| CodegenError(format!("guard `{g}`: {err}")))?;
                        if first {
                            out.push_str(&format!("if ({}) {{\n", expr_to_cpp(&e)));
                        } else {
                            out.push_str(&format!("}} else if ({}) {{\n", expr_to_cpp(&e)));
                        }
                    }
                    None => out.push_str(if first { "if (1) {\n" } else { "} else {\n" }),
                }
                emit(model, arm, indent + 1, out)?;
                first = false;
            }
            pad(out, indent);
            out.push_str("}\n");
            Ok(())
        }
        FlowNode::Parallel(arms) => {
            pad(out, indent);
            out.push_str("#pragma omp parallel sections\n");
            pad(out, indent);
            out.push_str("{\n");
            for arm in arms {
                pad(out, indent + 1);
                out.push_str("#pragma omp section\n");
                pad(out, indent + 1);
                out.push_str("{\n");
                emit(model, arm, indent + 2, out)?;
                pad(out, indent + 1);
                out.push_str("}\n");
            }
            pad(out, indent);
            out.push_str("}\n");
            Ok(())
        }
        FlowNode::Composite { element, body } => {
            let el = model.element(*element);
            match el.stereotype_name() {
                Some("loop+") => {
                    let count = tag_cpp(model, *element, "iterations", "0")?;
                    let var = match el.tag("variable") {
                        Some(TagValue::Str(v)) => v.clone(),
                        _ => format!("i_{}", instance_name(&el.name)),
                    };
                    pad(out, indent);
                    out.push_str(&format!(
                        "for (int {var} = 0; {var} < (int)({count}); ++{var}) {{ /* {} */\n",
                        el.name
                    ));
                    emit(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
                Some("parallel+") => {
                    let threads = tag_cpp(model, *element, "threads", "")?;
                    pad(out, indent);
                    if threads.is_empty() {
                        out.push_str(&format!("#pragma omp parallel /* {} */\n", el.name));
                    } else {
                        out.push_str(&format!(
                            "#pragma omp parallel num_threads((int)({threads})) /* {} */\n",
                            el.name
                        ));
                    }
                    pad(out, indent);
                    out.push_str("{\n");
                    emit(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
                Some("critical+") => {
                    pad(out, indent);
                    out.push_str(&format!("#pragma omp critical /* {} */\n", el.name));
                    pad(out, indent);
                    out.push_str("{\n");
                    emit(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
                _ => {
                    pad(out, indent);
                    out.push_str(&format!("{{ /* activity {} */\n", el.name));
                    emit(model, body, indent + 1, out)?;
                    pad(out, indent);
                    out.push_str("}\n");
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::{ModelBuilder, TagValue, VarType};

    fn mpi_model() -> Model {
        let mut b = ModelBuilder::new("skel");
        b.global("GV", VarType::Int, Some("0"));
        let main = b.main_diagram();
        let body = b.diagram("iter");
        let i = b.initial(main, "start");
        let setup = b.action(main, "Setup", "0.1");
        b.attach_code(setup, "GV = 1;");
        let lp = b.loop_activity(main, "Iterate", body, "10");
        let f = b.final_node(main, "end");
        b.flow(main, i, setup);
        b.flow(main, setup, lp);
        b.flow(main, lp, f);

        let work = b.action(body, "Work", "0.01");
        let bar = b.mpi(body, "Sync", "barrier", &[]);
        b.flow(body, work, bar);
        b.build()
    }

    #[test]
    fn skeleton_has_mpi_scaffolding() {
        let s = generate_skeleton(&mpi_model()).unwrap();
        for needle in [
            "#include <mpi.h>",
            "MPI_Init(&argc, &argv);",
            "MPI_Comm_rank(MPI_COMM_WORLD, &pid);",
            "MPI_Barrier(MPI_COMM_WORLD); /* Sync */",
            "MPI_Finalize();",
        ] {
            assert!(s.contains(needle), "missing `{needle}`:\n{s}");
        }
    }

    #[test]
    fn skeleton_has_block_stubs_and_flow() {
        let s = generate_skeleton(&mpi_model()).unwrap();
        assert!(s.contains("void block_setup(int pid, int tid)"), "{s}");
        assert!(s.contains("/* TODO: implement Setup */"), "{s}");
        assert!(s.contains("block_setup(pid, 0);"), "{s}");
        assert!(
            s.contains("for (int i_iterate = 0; i_iterate < (int)(10); ++i_iterate)"),
            "{s}"
        );
        // Code fragment became real code before the block call.
        let frag = s.find("GV = 1;\n").expect("fragment");
        let call = s.find("block_setup(pid, 0);").expect("call");
        // The fragment also appears in globals? No — only in main. First
        // occurrence after main's start must precede the call.
        assert!(frag < call, "{s}");
    }

    #[test]
    fn skeleton_openmp_only_when_needed() {
        let s = generate_skeleton(&mpi_model()).unwrap();
        assert!(!s.contains("#include <omp.h>"), "{s}");

        let mut b = ModelBuilder::new("omp");
        let main = b.main_diagram();
        let region = b.diagram("r");
        let i = b.initial(main, "start");
        let pr = b.parallel_activity(main, "R", region, "4");
        let f = b.final_node(main, "end");
        b.flow(main, i, pr);
        b.flow(main, pr, f);
        b.action(region, "W", "0.1");
        let s = generate_skeleton(&b.build()).unwrap();
        assert!(s.contains("#include <omp.h>"), "{s}");
        assert!(
            s.contains("#pragma omp parallel num_threads((int)(4)) /* R */"),
            "{s}"
        );
    }

    #[test]
    fn skeleton_point_to_point() {
        let mut b = ModelBuilder::new("ptp");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let d = b.decision(main, "who");
        let s0 = b.mpi(
            main,
            "S0",
            "send",
            &[
                ("dest", TagValue::Expr("pid + 1".into())),
                ("size", TagValue::Expr("1024".into())),
            ],
        );
        let r0 = b.mpi(
            main,
            "R0",
            "recv",
            &[("src", TagValue::Expr("pid - 1".into()))],
        );
        let m = b.merge(main, "m");
        let f = b.final_node(main, "end");
        b.flow(main, i, d);
        b.guarded_flow(main, d, s0, "pid == 0");
        b.guarded_flow(main, d, r0, "else");
        b.flow(main, s0, m);
        b.flow(main, r0, m);
        b.flow(main, m, f);
        let s = generate_skeleton(&b.build()).unwrap();
        assert!(s.contains("if (pid == 0) {"), "{s}");
        assert!(
            s.contains(
                "MPI_Send(buf_s0, (int)(1024), MPI_BYTE, (int)(pid + 1), 0, MPI_COMM_WORLD)"
            ),
            "{s}"
        );
        assert!(s.contains("MPI_Recv(buf_r0, BUFSIZ, MPI_BYTE, (int)(pid - 1), 0, MPI_COMM_WORLD, MPI_STATUS_IGNORE)"), "{s}");
    }
}
