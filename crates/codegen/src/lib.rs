//! # prophet-codegen
//!
//! The UML→C++ transformation backend: the paper's central contribution
//! (Pllana et al., ICPP-W 2008, Figure 5), producing the **PMP** — the
//! "C++ representation of the program's performance model" that the
//! Performance Estimator consumes.
//!
//! * [`flow`] — structural recovery of the execution flow from the
//!   activity-diagram graph: linear chains, decision→merge regions
//!   (if/else-if), fork→join regions, and composite bodies. The resulting
//!   [`flow::FlowNode`] tree drives both this crate's C++ emission and the
//!   estimator lowering in prophet-core ("one traversal, two targets",
//!   DESIGN.md §5),
//! * [`cpp`] — the Figure-5 algorithm phase by phase: perf-element
//!   collection (lines 1–8), globals (9–12), cost functions (13–18),
//!   locals (20–23), element declarations (24–28), and control flow
//!   (29–35), matching the listing shape of Figure 8,
//! * [`runtime`] — the C++ prelude (`ActionPlus` and the MPI block
//!   classes) that makes an emitted PMP self-contained,
//! * [`skeleton`] — the paper's stated future work: generation of a
//!   C + MPI/OpenMP *program* skeleton from the same model.

pub mod cpp;
pub mod flow;
pub mod runtime;
pub mod skeleton;

pub use cpp::{generate_cpp, CodegenError, CppUnit};
pub use flow::{build_flow_tree, FlowNode};
pub use runtime::runtime_prelude;
pub use skeleton::generate_skeleton;
