//! The C++ runtime prelude emitted at the top of a full PMP translation
//! unit.
//!
//! In the original system the `ActionPlus` class "is implemented as a C++
//! class" inside Performance Prophet and linked against CSIM; the PMP only
//! references it. To keep emitted files self-contained (reviewable,
//! compilable against a stub), we emit a small header defining
//! `ActionPlus` and the MPI building-block classes with the `execute()`
//! signature the paper shows: `execute(uid, pid, tid, cost)`.

/// The prelude text (stable — golden-tested).
pub fn runtime_prelude() -> &'static str {
    r#"// Performance Prophet PMP runtime prelude (CSIM-substitute stub).
// The modeling classes mirror the Performance Prophet C++ runtime: each
// performance modeling element is an object whose execute() models the
// performance behavior of one code block.
#include <cmath>
#include <string>

class PerfElement {
public:
    PerfElement(const std::string& name, long id) : name_(name), id_(id) {}
    // Models the performance behavior of the associated code block: in the
    // real system this advances the CSIM clock by `cost` on the facility
    // of (pid, tid).
    void execute(int uid, int pid, int tid, double cost);
protected:
    std::string name_;
    long id_;
};

class ActionPlus    : public PerfElement { using PerfElement::PerfElement; };
class ActivityPlus  : public PerfElement { using PerfElement::PerfElement; };
class LoopPlus      : public PerfElement { using PerfElement::PerfElement; };
class ParallelPlus  : public PerfElement { using PerfElement::PerfElement; };
class CriticalPlus  : public PerfElement { using PerfElement::PerfElement; };
class MpiSend       : public PerfElement { using PerfElement::PerfElement; };
class MpiRecv       : public PerfElement { using PerfElement::PerfElement; };
class MpiBroadcast  : public PerfElement { using PerfElement::PerfElement; };
class MpiReduce     : public PerfElement { using PerfElement::PerfElement; };
class MpiAllreduce  : public PerfElement { using PerfElement::PerfElement; };
class MpiScatter    : public PerfElement { using PerfElement::PerfElement; };
class MpiGather     : public PerfElement { using PerfElement::PerfElement; };
class MpiBarrier    : public PerfElement { using PerfElement::PerfElement; };
"#
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_defines_all_classes() {
        let p = runtime_prelude();
        for class in [
            "ActionPlus",
            "ActivityPlus",
            "LoopPlus",
            "ParallelPlus",
            "CriticalPlus",
            "MpiSend",
            "MpiRecv",
            "MpiBroadcast",
            "MpiReduce",
            "MpiAllreduce",
            "MpiScatter",
            "MpiGather",
            "MpiBarrier",
        ] {
            assert!(p.contains(&format!("class {class}")), "missing {class}");
        }
        assert!(p.contains("execute(int uid, int pid, int tid, double cost)"));
    }

    #[test]
    fn prelude_matches_codegen_classes() {
        use crate::cpp::class_of_stereotype;
        for st in [
            "action+",
            "activity+",
            "loop+",
            "parallel+",
            "critical+",
            "send",
            "recv",
            "broadcast",
            "reduce",
            "allreduce",
            "scatter",
            "gather",
            "barrier",
        ] {
            let class = class_of_stereotype(st);
            assert!(
                runtime_prelude().contains(&format!("class {class}")),
                "prelude missing {class} for {st}"
            );
        }
    }
}
