//! Property tests over the whole pipeline: random well-formed models must
//! check, transform (both targets), and evaluate without panicking, and
//! chain-model predictions must equal the sum of their costs.

use prophet_check::{check_model, McfConfig};
use prophet_core::transform::{to_cpp, to_program};
use prophet_core::{mpi_grid, Scenario, Session, SweepConfig};
use prophet_machine::SystemParams;
use prophet_uml::{Model, ModelBuilder};
use proptest::prelude::*;

/// Random linear chain with constant numeric costs.
fn chain(costs: Vec<u16>) -> (Model, f64) {
    let mut b = ModelBuilder::new("chain");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let mut prev = i;
    let mut total = 0.0;
    for (k, c) in costs.iter().enumerate() {
        let cost = *c as f64 / 1000.0;
        total += cost;
        let a = b.action(main, &format!("A{k}"), &format!("{cost}"));
        b.flow(main, prev, a);
        prev = a;
    }
    let f = b.final_node(main, "end");
    b.flow(main, prev, f);
    (b.build(), total)
}

/// Random branch pattern driven by a global set in a fragment.
fn branchy(gv: i64, then_cost: u16, else_cost: u16) -> (Model, f64) {
    let mut b = ModelBuilder::new("branchy");
    b.global("GV", prophet_uml::VarType::Int, Some("0"));
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let setter = b.action(main, "Setter", "0");
    b.attach_code(setter, &format!("GV = {gv};"));
    let d = b.decision(main, "dec");
    let x = b.action(main, "Then", &format!("{}", then_cost as f64 / 1000.0));
    let y = b.action(main, "Else", &format!("{}", else_cost as f64 / 1000.0));
    let m = b.merge(main, "merge");
    let f = b.final_node(main, "end");
    b.flow(main, i, setter);
    b.flow(main, setter, d);
    b.guarded_flow(main, d, x, "GV > 0");
    b.guarded_flow(main, d, y, "else");
    b.flow(main, x, m);
    b.flow(main, y, m);
    b.flow(main, m, f);
    let expected = if gv > 0 { then_cost } else { else_cost } as f64 / 1000.0;
    (b.build(), expected)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chain_prediction_is_sum_of_costs(costs in prop::collection::vec(0u16..2000, 1..24)) {
        let (model, total) = chain(costs);
        let run = Session::new(model).unwrap().evaluate(&Scenario::default()).unwrap();
        prop_assert!((run.predicted_time - total).abs() < 1e-9,
            "{} vs {}", run.predicted_time, total);
    }

    #[test]
    fn chain_prediction_independent_of_ranks(costs in prop::collection::vec(0u16..1000, 1..12), p in 1usize..9) {
        // A communication-free SPMD chain takes the same time on any P.
        let (model, total) = chain(costs);
        let run = Session::new(model)
            .unwrap()
            .evaluate(&Scenario::new(SystemParams::flat_mpi(p, 1)))
            .unwrap();
        prop_assert!((run.predicted_time - total).abs() < 1e-9);
    }

    #[test]
    fn branch_takes_the_fragment_driven_arm(gv in -3i64..4, t in 0u16..1000, e in 0u16..1000) {
        let (model, expected) = branchy(gv, t, e);
        let run = Session::new(model).unwrap().evaluate(&Scenario::default()).unwrap();
        prop_assert!((run.predicted_time - expected).abs() < 1e-9,
            "{} vs {expected}", run.predicted_time);
    }

    #[test]
    fn sweep_and_batch_agree_with_independent_evaluations(
        costs in prop::collection::vec(0u16..1000, 1..10),
        sizes in prop::collection::vec(1usize..9, 1..8),
        threads in 0usize..5,
    ) {
        // One compiled session: `sweep`, `batch`, and N independent
        // `evaluate` calls must produce identical predictions.
        let (model, _) = chain(costs);
        let session = Session::new(model).unwrap();

        let points = mpi_grid(&sizes, 1);
        let config = SweepConfig { threads, ..Default::default() };
        let report = session.sweep_with(&points, &config, |_, _| {});

        let scenarios: Vec<Scenario> = points
            .iter()
            .map(|pt| Scenario::new(pt.sp).without_trace())
            .collect();
        let batch = session.batch(&scenarios);

        for ((pt, swept), batched) in points.iter().zip(&report.points).zip(&batch) {
            let direct = session
                .evaluate(&Scenario::new(pt.sp).without_trace())
                .unwrap()
                .predicted_time;
            prop_assert_eq!(swept.time(), Some(direct));
            prop_assert_eq!(batched.as_ref().unwrap().predicted_time, direct);
        }
    }

    #[test]
    fn pipeline_never_panics_on_wellformed_models(costs in prop::collection::vec(0u16..100, 1..10)) {
        let (model, _) = chain(costs);
        let diags = check_model(&model, &McfConfig::default());
        prop_assert!(diags.iter().all(|d| !d.is_error()));
        let _ = to_cpp(&model).unwrap();
        let _ = to_program(&model).unwrap();
    }

    #[test]
    fn cpp_and_ir_agree_on_element_counts(costs in prop::collection::vec(0u16..100, 1..32)) {
        let (model, _) = chain(costs.clone());
        let unit = to_cpp(&model).unwrap();
        let program = to_program(&model).unwrap();
        prop_assert_eq!(unit.program.matches(".execute(").count(), costs.len());
        prop_assert_eq!(program.body.leaf_count(), costs.len());
    }
}
