//! Error-path coverage for the unified `prophet_core::Error`: `source()`
//! chains, `Display` formats, invalid-SP and parse-failure scenarios —
//! through both the `Session` engine and the deprecated `Project` shim.

use prophet_core::{render_chain, Error, Scenario, Session};
use prophet_machine::SystemParams;
use prophet_uml::{Model, ModelBuilder};
use std::error::Error as StdError;

fn good_model() -> Model {
    let mut b = ModelBuilder::new("ok");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let a = b.action(main, "Work", "1.0");
    let f = b.final_node(main, "end");
    b.flow(main, i, a);
    b.flow(main, a, f);
    b.build()
}

fn bad_cost_model() -> Model {
    let mut b = ModelBuilder::new("bad");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let a = b.action(main, "Oops", "1 +");
    let f = b.final_node(main, "end");
    b.flow(main, i, a);
    b.flow(main, a, f);
    b.build()
}

fn invalid_sp() -> SystemParams {
    // processes < nodes is rejected by validation.
    SystemParams {
        nodes: 4,
        cpus_per_node: 1,
        processes: 2,
        threads_per_process: 1,
    }
}

#[test]
fn machine_error_chains_through_source() {
    let session = Session::new(good_model()).unwrap();
    let err = session.evaluate(&Scenario::new(invalid_sp())).unwrap_err();
    assert!(matches!(err, Error::Machine(_)));
    // Top level names the stage...
    assert_eq!(
        err.to_string(),
        "machine model rejected the system parameters"
    );
    // ...and source() carries the cause, with the real detail inside.
    let source = err.source().expect("machine errors have a source");
    assert!(
        source.to_string().contains("processes must be >= nodes"),
        "unexpected source: {source}"
    );
    // The rendered chain shows both levels.
    let chain = render_chain(&err);
    assert!(chain.contains("caused by:"), "{chain}");
    assert!(chain.contains("processes must be >= nodes"), "{chain}");
}

#[test]
fn parse_error_chains_through_source() {
    let err = Session::from_model_xml("<model><unclosed>").unwrap_err();
    assert!(matches!(err, Error::Parse(_)));
    assert_eq!(err.to_string(), "model XML does not parse");
    assert!(
        err.source().is_some(),
        "parse errors must carry the XML error"
    );
}

#[test]
fn check_error_lists_diagnostics_and_has_no_source() {
    let err = Session::new(bad_cost_model()).unwrap_err();
    let diags = err
        .diagnostics()
        .expect("check failure carries diagnostics");
    assert!(!diags.is_empty());
    // Display embeds the findings directly, so there is no deeper source.
    assert!(err.to_string().contains("model check failed"));
    assert!(err.source().is_none());
}

#[test]
fn estimate_error_chains_through_source() {
    // A receive that can never be matched deadlocks the simulation.
    let mut b = ModelBuilder::new("stuck");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let r = b.mpi(
        main,
        "r0",
        "recv",
        &[("src", prophet_uml::TagValue::Expr("1".into()))],
    );
    let f = b.final_node(main, "end");
    b.flow(main, i, r);
    b.flow(main, r, f);
    let session = Session::new(b.build()).unwrap();
    let err = session
        .evaluate(&Scenario::new(SystemParams::flat_mpi(2, 1)))
        .unwrap_err();
    assert!(matches!(err, Error::Estimate(_)));
    assert_eq!(err.to_string(), "performance evaluation failed");
    // The chain now descends through EstimatorError into the kernel's
    // SimError: Error → "evaluation failed" → "deadlock …".
    let source = err.source().expect("estimate errors have a source");
    let inner = source.source().expect("estimator errors have a source");
    assert!(
        inner.to_string().contains("deadlock"),
        "unexpected inner source: {inner}"
    );
    assert!(
        prophet_core::render_chain(&err).contains("deadlock"),
        "render_chain must surface the kernel detail"
    );
}

#[test]
fn flatten_error_chains_to_the_offending_expression() {
    // A cost expression referencing an undefined variable fails at
    // elaboration time; the chain must surface the expression error:
    // Error → EstimatorError → FlattenError → ExprError.
    let mut b = ModelBuilder::new("badcost");
    let main = b.main_diagram();
    let i = b.initial(main, "start");
    let a = b.action(main, "A1", "no_such_var * 2");
    let f = b.final_node(main, "end");
    b.flow(main, i, a);
    b.flow(main, a, f);
    let session = Session::new(b.build()).unwrap();
    let err = session
        .evaluate(&Scenario::new(SystemParams::flat_mpi(1, 1)))
        .unwrap_err();
    let mut chain = Vec::new();
    let mut cur: Option<&dyn std::error::Error> = Some(&err);
    while let Some(e) = cur {
        chain.push(e.to_string());
        cur = e.source();
    }
    assert_eq!(chain.len(), 4, "{chain:?}");
    assert!(chain[1].contains("elaboration"), "{chain:?}");
    assert!(chain[2].contains("cost of `A1`"), "{chain:?}");
    assert!(chain[3].contains("no_such_var"), "{chain:?}");
}

#[test]
fn sweep_reports_typed_errors_per_point() {
    let session = Session::new(good_model()).unwrap();
    let points = [
        prophet_core::SweepPoint {
            sp: SystemParams::flat_mpi(2, 1),
        },
        prophet_core::SweepPoint { sp: invalid_sp() },
    ];
    let report = session.sweep(&points);
    assert!(report.points[0].outcome.is_ok());
    assert!(matches!(report.points[1].outcome, Err(Error::Machine(_))));
    assert_eq!(report.failures(), 1);
    assert_eq!(report.times(), vec![Some(1.0), None]);
}

#[test]
#[allow(deprecated)]
fn project_shim_maps_machine_errors() {
    use prophet_core::{Project, ProjectError};
    let err = Project::new(good_model())
        .with_system(invalid_sp())
        .run()
        .unwrap_err();
    match err {
        ProjectError::Machine(machine) => {
            assert!(machine.to_string().contains("processes must be >= nodes"));
        }
        other => panic!("expected machine error, got {other}"),
    }
}

#[test]
#[allow(deprecated)]
fn project_shim_maps_check_errors_and_displays_findings() {
    use prophet_core::{Project, ProjectError};
    let err = Project::new(bad_cost_model()).run().unwrap_err();
    let text = err.to_string();
    match err {
        ProjectError::Check(diags) => assert!(!diags.is_empty()),
        other => panic!("expected check error, got {other}"),
    }
    assert!(text.contains("model check failed"), "{text}");
}

#[test]
#[allow(deprecated)]
fn deprecated_sweep_carries_error_text() {
    use prophet_core::{sweep_parallel, Project, SweepPoint};
    let project = Project::new(good_model());
    let results = sweep_parallel(&project, &[SweepPoint { sp: invalid_sp() }], 2);
    let msg = results[0].outcome.as_ref().unwrap_err();
    assert!(msg.contains("processes must be >= nodes"), "{msg}");
}
