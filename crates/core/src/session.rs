//! Compile-once sessions: check and transform a model one time, then
//! evaluate as many scenarios as you like.
//!
//! The paper's workflow answers *many* "what if" questions from *one*
//! UML performance model ("the performance can be predicted and design
//! decisions can be influenced without time-consuming modifications of
//! large portions of an implemented program"). [`Session`] makes that
//! split explicit:
//!
//! * **compile** — [`Session::compile`] runs the model checker and both
//!   transformation backends exactly once and owns the immutable
//!   artifacts (the executable [`Program`] IR, the C++ [`CppUnit`], the
//!   check diagnostics),
//! * **serve** — [`Session::evaluate`] answers one [`Scenario`];
//!   [`Session::sweep`] fans an SP grid out over scoped worker threads;
//!   [`Session::batch`] does the same for heterogeneous scenario sets
//!   (different communication parameters, seeds, calendars — not just
//!   SP grids).
//!
//! Every serve entry point takes a [`Backend`] selector (on the
//! [`Scenario`] or the [`SweepConfig`]): `Backend::Simulation` replays
//! the compiled program on the DES kernel, `Backend::Analytic` resolves
//! the same op lists in closed form — the fast choice for large sweeps,
//! and an independent oracle the conformance suite checks the simulator
//! against.
//!
//! Workers pull points from a shared atomic cursor (work stealing) and
//! stream results back over a channel, so there is no contended lock in
//! the hot loop and callers can observe progress point by point via
//! [`Session::sweep_with`] / [`Session::batch_with`].

use crate::error::Error;
use crate::transform::{to_cpp, to_program};
use prophet_check::{check_model, Diagnostic, McfConfig};
use prophet_codegen::CppUnit;
use prophet_estimator::{
    Backend, BatchScratch, ElabStats, ElaborationCache, Estimator, EstimatorOptions, Evaluation,
    Program,
};
use prophet_machine::{CommParams, MachineModel, SystemParams};
use prophet_uml::Model;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// One evaluation request: everything that may vary *without*
/// recompiling the model.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// System parameters (SP): nodes, cpus, processes, threads.
    pub system: SystemParams,
    /// Communication parameters of the machine model.
    pub comm: CommParams,
    /// Estimator options (seed, tracing, limits, calendar).
    pub options: EstimatorOptions,
    /// Evaluation engine: DES simulation (default) or closed-form
    /// analytic. The analytic backend records no trace and ignores
    /// seed/calendar; see `prophet_estimator::analytic` for the
    /// agreement contract between the two.
    pub backend: Backend,
    /// Escape hatch: when `true`, this scenario elaborates its op lists
    /// from scratch instead of using the session's shared
    /// [`ElaborationCache`]. Results are identical either way (the cache
    /// is keyed on everything elaboration reads); disabling only trades
    /// speed for memory.
    pub no_elab_cache: bool,
}

impl Scenario {
    /// Scenario for the given system parameters, defaults elsewhere.
    pub fn new(system: SystemParams) -> Self {
        Self {
            system,
            ..Self::default()
        }
    }

    /// Replace the communication parameters.
    pub fn with_comm(mut self, comm: CommParams) -> Self {
        self.comm = comm;
        self
    }

    /// Replace the estimator options.
    pub fn with_options(mut self, options: EstimatorOptions) -> Self {
        self.options = options;
        self
    }

    /// Replace the simulation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Disable trace recording (the right choice for large batches).
    pub fn without_trace(mut self) -> Self {
        self.options.trace = false;
        self
    }

    /// Select the evaluation backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Elaborate this scenario uncached (see [`Scenario::no_elab_cache`]).
    pub fn without_elab_cache(mut self) -> Self {
        self.no_elab_cache = true;
        self
    }
}

impl From<SystemParams> for Scenario {
    fn from(system: SystemParams) -> Self {
        Self::new(system)
    }
}

/// One configuration of an SP sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// System parameters of this configuration.
    pub sp: SystemParams,
}

/// Convenience: a `(nodes × cpus)` grid of flat-MPI configurations.
pub fn mpi_grid(node_counts: &[usize], cpus_per_node: usize) -> Vec<SweepPoint> {
    node_counts
        .iter()
        .map(|&n| SweepPoint {
            sp: SystemParams::flat_mpi(n, cpus_per_node),
        })
        .collect()
}

/// Fixed parameters of one sweep: what is shared by every point.
#[derive(Debug, Clone, Default)]
pub struct SweepConfig {
    /// Communication parameters used for every point.
    pub comm: CommParams,
    /// Base estimator options; tracing is forced off per point.
    pub options: EstimatorOptions,
    /// Worker threads; `0` selects the available parallelism.
    pub threads: usize,
    /// Evaluation engine used for every point (simulation by default;
    /// analytic makes large sweeps dramatically faster).
    pub backend: Backend,
    /// Escape hatch (CLI `--no-elab-cache`): when `true`, every point
    /// elaborates from scratch instead of sharing the session's
    /// [`ElaborationCache`]. Results are bit-identical either way; a
    /// cached sweep just flattens once per distinct SP point instead of
    /// once per evaluation.
    pub no_elab_cache: bool,
}

/// One sweep point's outcome under the unified error type.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The configuration.
    pub sp: SystemParams,
    /// Predicted time, or the typed pipeline error.
    pub outcome: Result<f64, Error>,
}

impl PointResult {
    /// Predicted time if the evaluation succeeded.
    pub fn time(&self) -> Option<f64> {
        self.outcome.as_ref().ok().copied()
    }
}

/// All results of one sweep, in input order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-point outcomes, ordered as the input points.
    pub points: Vec<PointResult>,
}

impl SweepReport {
    /// Predicted times in input order (`None` for failed points).
    pub fn times(&self) -> Vec<Option<f64>> {
        self.points.iter().map(PointResult::time).collect()
    }

    /// Speedups relative to the first successful point.
    pub fn speedups(&self) -> Vec<Option<f64>> {
        let base = self.points.iter().find_map(PointResult::time);
        self.points
            .iter()
            .map(|p| match (base, p.time()) {
                (Some(b), Some(t)) => Some(b / t),
                _ => None,
            })
            .collect()
    }

    /// Number of failed points.
    pub fn failures(&self) -> usize {
        self.points.iter().filter(|p| p.outcome.is_err()).count()
    }
}

/// A compiled model: checked and transformed exactly once, ready to
/// evaluate any number of scenarios.
#[derive(Debug, Clone)]
pub struct Session {
    model: Model,
    mcf: McfConfig,
    diagnostics: Vec<Diagnostic>,
    cpp: CppUnit,
    program: Program,
    /// Memoized elaborations of this session's program, shared by every
    /// serve entry point (and by clones of this session — a clone
    /// serves the same immutable program, so sharing stays sound).
    elab: Arc<ElaborationCache>,
}

// The serve layer shares one `Session` per model across all connection
// worker threads via `Arc<Session>`; keep that capability pinned at
// compile time (every field is owned data or an `Arc` over the
// lock-free elaboration cache — no interior mutability that isn't
// thread-safe).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<Scenario>();
    assert_send_sync::<SweepConfig>();
};

impl Session {
    /// Check `model` under `mcf` and transform it to both machine
    /// representations. This is the only place in the new API that pays
    /// the check + transform cost.
    ///
    /// # Errors
    /// [`Error::Check`] when the checker finds error-severity findings,
    /// [`Error::Transform`] when either backend rejects the model.
    pub fn compile(model: Model, mcf: McfConfig) -> Result<Self, Error> {
        let diagnostics = check_model(&model, &mcf);
        if diagnostics.iter().any(Diagnostic::is_error) {
            return Err(Error::Check(
                diagnostics
                    .into_iter()
                    .filter(Diagnostic::is_error)
                    .collect(),
            ));
        }
        let cpp = to_cpp(&model)?;
        let program = to_program(&model)?;
        Ok(Self {
            model,
            mcf,
            diagnostics,
            cpp,
            program,
            elab: Arc::new(ElaborationCache::new()),
        })
    }

    /// Rebuild a session from already-compiled artifacts (the
    /// deserialization path of [`crate::store::ArtifactStore`]): no
    /// check, no transform — the caller vouches that the artifacts
    /// belong to `model`/`mcf`, which the store enforces by content
    /// digest + checksum.
    pub(crate) fn from_parts(
        model: Model,
        mcf: McfConfig,
        diagnostics: Vec<Diagnostic>,
        cpp: CppUnit,
        program: Program,
    ) -> Self {
        Self {
            model,
            mcf,
            diagnostics,
            cpp,
            program,
            elab: Arc::new(ElaborationCache::new()),
        }
    }

    /// Compile with the default model-checking configuration.
    pub fn new(model: Model) -> Result<Self, Error> {
        Self::compile(model, McfConfig::default())
    }

    /// Parse the model from XML and compile it (default MCF).
    pub fn from_model_xml(xml: &str) -> Result<Self, Error> {
        Self::compile(prophet_uml::xmi::model_from_xml(xml)?, McfConfig::default())
    }

    /// The source model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The model-checking configuration used at compile time.
    pub fn mcf(&self) -> &McfConfig {
        &self.mcf
    }

    /// All compile-time diagnostics (warnings included).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// The generated C++ PMP.
    pub fn cpp(&self) -> &CppUnit {
        &self.cpp
    }

    /// The executable IR.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Serialize the model to XML (the `Models (XML)` artifact).
    pub fn model_xml(&self) -> String {
        prophet_uml::xmi::model_to_xml(&self.model)
    }

    /// Decompose into the owned compile artifacts
    /// (diagnostics, C++ PMP, executable IR).
    pub fn into_artifacts(self) -> (Vec<Diagnostic>, CppUnit, Program) {
        (self.diagnostics, self.cpp, self.program)
    }

    /// Evaluate one scenario against the compiled program.
    ///
    /// The per-rank op lists come from the session's shared
    /// [`ElaborationCache`] (flattened once per distinct
    /// `(SP, comm, limits)` key across evaluations, sweeps, seeds and
    /// backends) unless the scenario sets
    /// [`no_elab_cache`](Scenario::no_elab_cache).
    ///
    /// # Errors
    /// [`Error::Machine`] for invalid SP, [`Error::Estimate`] for
    /// simulation failures.
    pub fn evaluate(&self, scenario: &Scenario) -> Result<Evaluation, Error> {
        let machine = MachineModel::new(scenario.system, scenario.comm)?;
        let cache = (!scenario.no_elab_cache).then_some(&*self.elab);
        Ok(Estimator::run_backend_cached(
            scenario.backend,
            &self.program,
            &machine,
            &scenario.options,
            cache,
        )?)
    }

    /// Counter snapshot of the session's [`ElaborationCache`].
    ///
    /// The elaboration analogue of `transform_invocations`: `misses` is
    /// the number of elaborations the cache performed (one per distinct
    /// SP point), `hits` the evaluations served without re-flattening —
    /// benches and tests assert the flatten-once sweep contract against
    /// these (`hits + misses` grows by one per cached evaluation).
    pub fn elab_stats(&self) -> ElabStats {
        self.elab.stats()
    }

    /// The session's shared [`ElaborationCache`] — what the persistent
    /// artifact store snapshots at save time and re-seeds on load.
    pub fn elab_cache(&self) -> &ElaborationCache {
        &self.elab
    }

    /// Sweep an SP grid with default comm/options and auto threading.
    pub fn sweep(&self, points: &[SweepPoint]) -> SweepReport {
        self.sweep_with(points, &SweepConfig::default(), |_, _| {})
    }

    /// Sweep an SP grid, streaming each point's result to `on_point`
    /// (called with the point's input index) as workers finish it.
    ///
    /// Tracing is disabled once for the whole sweep — options are built
    /// one time and shared by reference across workers, never cloned per
    /// point. Results are reassembled into input order regardless of
    /// completion order.
    pub fn sweep_with(
        &self,
        points: &[SweepPoint],
        config: &SweepConfig,
        on_point: impl FnMut(usize, &PointResult),
    ) -> SweepReport {
        let cache = (!config.no_elab_cache).then_some(&*self.elab);
        sweep_program(&self.program, cache, points, config, on_point)
    }

    /// Evaluate heterogeneous scenarios in parallel (input order kept).
    ///
    /// Unlike [`Session::sweep`], every scenario may vary communication
    /// parameters, seeds, calendars and limits — the compile artifacts
    /// are still shared untouched.
    pub fn batch(&self, scenarios: &[Scenario]) -> Vec<Result<Evaluation, Error>> {
        self.batch_with(scenarios, 0, |_, _| {})
    }

    /// [`Session::batch`] with explicit thread count and a streaming
    /// observer called with each scenario's input index as it completes.
    pub fn batch_with(
        &self,
        scenarios: &[Scenario],
        threads: usize,
        mut on_result: impl FnMut(usize, &Result<Evaluation, Error>),
    ) -> Vec<Result<Evaluation, Error>> {
        run_indexed(
            scenarios.len(),
            threads,
            |i| self.evaluate(&scenarios[i]),
            &mut on_result,
        )
    }
}

/// The sweep core: evaluate an SP grid against one compiled `Program`.
///
/// Tracing is disabled once for the whole sweep — options are built one
/// time and shared by reference across workers, never cloned per point.
/// Results are reassembled into input order regardless of completion
/// order. `pub(crate)` so the deprecated shims can sweep a bare
/// `Program` without paying for a full [`Session`] compile (they pass
/// `elab: None` — no cache, the legacy per-call elaboration semantics).
pub(crate) fn sweep_program(
    program: &Program,
    elab: Option<&ElaborationCache>,
    points: &[SweepPoint],
    config: &SweepConfig,
    mut on_point: impl FnMut(usize, &PointResult),
) -> SweepReport {
    // Trace files are per-evaluation artifacts; a sweep only needs
    // predicted times, so force tracing off exactly once here.
    let options = EstimatorOptions {
        trace: false,
        ..config.options.clone()
    };
    let comm = config.comm;
    let backend = config.backend;
    let results = match (backend, elab) {
        // Cached analytic sweeps go through the batch path: workers
        // claim whole chunks off the cursor and replay each point into
        // their own reusable scratch (predictions are bit-identical to
        // the per-point path — see `prophet_estimator::batch`).
        (Backend::Analytic, Some(cache)) => run_indexed_chunked(
            points.len(),
            config.threads,
            ANALYTIC_CHUNK,
            BatchScratch::new,
            |scratch, i| {
                let sp = points[i].sp;
                let outcome =
                    MachineModel::new(sp, comm)
                        .map_err(Error::from)
                        .and_then(|machine| {
                            Estimator::run_analytic_batched(
                                program, &machine, &options, cache, scratch,
                            )
                            .map(|e| e.predicted_time)
                            .map_err(Error::from)
                        });
                PointResult { sp, outcome }
            },
            &mut on_point,
        ),
        _ => run_indexed(
            points.len(),
            config.threads,
            |i| {
                let sp = points[i].sp;
                let outcome =
                    MachineModel::new(sp, comm)
                        .map_err(Error::from)
                        .and_then(|machine| {
                            Estimator::run_backend_cached(
                                backend, program, &machine, &options, elab,
                            )
                            .map(|e| e.predicted_time)
                            .map_err(Error::from)
                        });
                PointResult { sp, outcome }
            },
            &mut on_point,
        ),
    };
    SweepReport { points: results }
}

/// Cursor claim size of batch-path analytic sweeps: large enough to
/// amortize the atomic `fetch_add` per claim across cheap closed-form
/// points, small enough that an uneven grid still balances across
/// workers.
const ANALYTIC_CHUNK: usize = 8;

/// Evaluate `count` independent jobs over scoped worker threads.
///
/// Workers claim indices from a shared atomic cursor (work stealing) and
/// send `(index, result)` over a channel; the caller's thread reassembles
/// input order and streams each result to `observe`. No lock is held
/// anywhere in the hot loop.
fn run_indexed<T: Send>(
    count: usize,
    threads: usize,
    job: impl Fn(usize) -> T + Sync,
    observe: &mut impl FnMut(usize, &T),
) -> Vec<T> {
    run_indexed_chunked(count, threads, 1, || (), |(), i| job(i), observe)
}

/// [`run_indexed`] with chunked claims and per-worker state: each worker
/// builds one `state` with `init` and claims `chunk` consecutive indices
/// per cursor `fetch_add`, passing the state to every job it runs. The
/// batch analytic sweep path uses the state as its reusable evaluation
/// scratch; `chunk == 1` with a unit state degenerates to the plain
/// work-stealing loop.
fn run_indexed_chunked<T: Send, S>(
    count: usize,
    threads: usize,
    chunk: usize,
    init: impl Fn() -> S + Sync,
    job: impl Fn(&mut S, usize) -> T + Sync,
    observe: &mut impl FnMut(usize, &T),
) -> Vec<T> {
    if count == 0 {
        return Vec::new();
    }
    let chunk = chunk.max(1);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };
    // More workers than chunk claims would only spawn idle threads.
    let threads = threads.min(count.div_ceil(chunk));

    if threads == 1 {
        // Run on the caller's thread: same semantics, no machinery.
        let mut state = init();
        return (0..count)
            .map(|i| {
                let r = job(&mut state, i);
                observe(i, &r);
                r
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let cursor = &cursor;
            let init = &init;
            let job = &job;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= count {
                        break;
                    }
                    for i in start..(start + chunk).min(count) {
                        // The receiver outlives the scope; a send can
                        // only fail if the main thread panicked, in
                        // which case unwinding is already underway.
                        let _ = tx.send((i, job(&mut state, i)));
                    }
                }
            });
        }
        drop(tx);
        for (i, result) in rx.iter() {
            observe(i, &result);
            slots[i] = Some(result);
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every index processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::transform_invocations;
    use prophet_uml::ModelBuilder;

    fn amdahl_model() -> Model {
        let mut b = ModelBuilder::new("amdahl");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let serial = b.action(main, "Serial", "1.0");
        let par = b.action(main, "Par", "8.0 / P");
        let f = b.final_node(main, "end");
        b.flow(main, i, serial);
        b.flow(main, serial, par);
        b.flow(main, par, f);
        b.build()
    }

    #[test]
    fn compile_once_many_evaluations() {
        let session = Session::new(amdahl_model()).unwrap();
        let before = transform_invocations();
        for p in [1, 2, 4, 8] {
            let e = session
                .evaluate(&Scenario::new(SystemParams::flat_mpi(p, 1)).without_trace())
                .unwrap();
            assert_eq!(e.predicted_time, 1.0 + 8.0 / p as f64);
        }
        assert_eq!(
            transform_invocations(),
            before,
            "evaluate must never re-transform"
        );
    }

    #[test]
    fn sweep_matches_independent_evaluations() {
        let session = Session::new(amdahl_model()).unwrap();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let report = session.sweep(&points);
        for (pt, res) in points.iter().zip(&report.points) {
            let direct = session
                .evaluate(&Scenario::new(pt.sp).without_trace())
                .unwrap()
                .predicted_time;
            assert_eq!(res.time().unwrap(), direct);
        }
        assert_eq!(report.failures(), 0);
        assert_eq!(report.speedups()[0], Some(1.0));
    }

    #[test]
    fn sweep_streams_every_index_once() {
        let session = Session::new(amdahl_model()).unwrap();
        let points = mpi_grid(&[8, 1, 4, 2, 16, 2, 4, 8], 1);
        let mut seen = vec![0usize; points.len()];
        let report = session.sweep_with(
            &points,
            &SweepConfig {
                threads: 3,
                ..Default::default()
            },
            |i, r| {
                assert!(r.outcome.is_ok());
                seen[i] += 1;
            },
        );
        assert!(seen.iter().all(|&n| n == 1), "{seen:?}");
        // Input order preserved regardless of completion order.
        let order: Vec<usize> = report.points.iter().map(|p| p.sp.processes).collect();
        assert_eq!(order, vec![8, 1, 4, 2, 16, 2, 4, 8]);
    }

    #[test]
    fn batch_handles_heterogeneous_scenarios() {
        let session = Session::new(amdahl_model()).unwrap();
        let scenarios = vec![
            Scenario::new(SystemParams::flat_mpi(2, 1)).without_trace(),
            Scenario::new(SystemParams::flat_mpi(2, 1))
                .with_comm(CommParams::fast_interconnect())
                .with_seed(7)
                .without_trace(),
            // Invalid: fewer processes than nodes.
            Scenario::new(SystemParams {
                nodes: 4,
                cpus_per_node: 1,
                processes: 2,
                threads_per_process: 1,
            }),
        ];
        let results = session.batch(&scenarios);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().predicted_time, 5.0);
        assert_eq!(results[1].as_ref().unwrap().predicted_time, 5.0);
        assert!(matches!(results[2], Err(Error::Machine(_))));
    }

    #[test]
    fn analytic_backend_agrees_and_skips_the_kernel() {
        let session = Session::new(amdahl_model()).unwrap();
        for p in [1, 2, 4, 8] {
            let scenario = Scenario::new(SystemParams::flat_mpi(p, 1));
            let sim = session.evaluate(&scenario).unwrap();
            let ana = session
                .evaluate(&scenario.clone().with_backend(Backend::Analytic))
                .unwrap();
            // Communication-free deterministic model: exact agreement.
            assert_eq!(ana.predicted_time, sim.predicted_time, "P={p}");
            assert_eq!(ana.report.events_processed, 0, "no DES involvement");
            assert!(ana.trace.is_empty(), "analytic backend records no trace");
        }
    }

    #[test]
    fn sweep_backend_selector_reaches_every_point() {
        let session = Session::new(amdahl_model()).unwrap();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let sim = session.sweep(&points);
        let ana = session.sweep_with(
            &points,
            &SweepConfig {
                backend: Backend::Analytic,
                ..Default::default()
            },
            |_, _| {},
        );
        assert_eq!(ana.failures(), 0);
        assert_eq!(sim.times(), ana.times());
    }

    #[test]
    fn sweep_flattens_once_per_sp_point() {
        let session = Session::new(amdahl_model()).unwrap();
        let points = mpi_grid(&[1, 2, 4, 8, 16, 32, 64, 128], 1);
        // 8 SP points × 4 seeds × both backends: 8 elaborations total.
        let mut expected_lookups = 0u64;
        for seed in [1u64, 2, 3, 4] {
            for backend in [Backend::Simulation, Backend::Analytic] {
                let config = SweepConfig {
                    backend,
                    options: EstimatorOptions {
                        seed,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let report = session.sweep_with(&points, &config, |_, _| {});
                assert_eq!(report.failures(), 0);
                expected_lookups += points.len() as u64;
            }
        }
        let stats = session.elab_stats();
        assert_eq!(stats.misses, points.len() as u64, "{stats:?}");
        assert_eq!(stats.bypasses, 0, "{stats:?}");
        assert_eq!(stats.lookups(), expected_lookups, "{stats:?}");
        assert_eq!(
            stats.hits,
            expected_lookups - points.len() as u64,
            "{stats:?}"
        );
    }

    #[test]
    fn uncached_sweep_matches_cached_bit_for_bit() {
        let session = Session::new(amdahl_model()).unwrap();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let cached = session.sweep(&points);
        let before = session.elab_stats();
        let uncached = session.sweep_with(
            &points,
            &SweepConfig {
                no_elab_cache: true,
                ..Default::default()
            },
            |_, _| {},
        );
        assert_eq!(
            session.elab_stats(),
            before,
            "no_elab_cache must not touch the cache"
        );
        for (c, u) in cached.times().iter().zip(uncached.times().iter()) {
            assert_eq!(c.unwrap().to_bits(), u.unwrap().to_bits());
        }
    }

    #[test]
    fn scenario_escape_hatch_bypasses_the_cache() {
        let session = Session::new(amdahl_model()).unwrap();
        let sp = SystemParams::flat_mpi(2, 1);
        let cached = session.evaluate(&Scenario::new(sp)).unwrap();
        let direct = session
            .evaluate(&Scenario::new(sp).without_elab_cache())
            .unwrap();
        assert_eq!(
            cached.predicted_time.to_bits(),
            direct.predicted_time.to_bits()
        );
        let stats = session.elab_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1), "{stats:?}");
    }

    #[test]
    fn session_clones_share_the_cache() {
        let session = Session::new(amdahl_model()).unwrap();
        let clone = session.clone();
        let sp = SystemParams::flat_mpi(4, 1);
        session.evaluate(&Scenario::new(sp)).unwrap();
        clone.evaluate(&Scenario::new(sp)).unwrap();
        let stats = clone.elab_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "{stats:?}");
    }

    #[test]
    fn check_gate_blocks_bad_models() {
        let mut b = ModelBuilder::new("bad");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Oops", "1 +");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let err = Session::new(b.build()).unwrap_err();
        match err {
            Error::Check(diags) => {
                assert!(diags.iter().any(|d| d.rule == "PP006"), "{diags:?}");
            }
            other => panic!("expected check failure, got {other}"),
        }
    }

    #[test]
    fn model_xml_roundtrip_through_session() {
        let s1 = Session::new(amdahl_model()).unwrap();
        let s2 = Session::from_model_xml(&s1.model_xml()).unwrap();
        let scenario = Scenario::new(SystemParams::flat_mpi(4, 1));
        assert_eq!(
            s1.evaluate(&scenario).unwrap().predicted_time,
            s2.evaluate(&scenario).unwrap().predicted_time
        );
        assert_eq!(s1.cpp().model_text(), s2.cpp().model_text());
    }
}
