//! A Prophet project: the Teuta-session equivalent.
//!
//! Holds a model plus the system parameters (SP) and tool configuration
//! (CF) of the Figure-2 architecture, and exposes the full pipeline:
//! model check (MCF) → transformation (PMP + IR) → performance estimation
//! → trace (TF).

use crate::transform::{to_cpp, to_program, TransformError};
use prophet_check::{check_model, Diagnostic, McfConfig};
use prophet_codegen::CppUnit;
use prophet_estimator::{Estimator, EstimatorError, EstimatorOptions, Evaluation, Program};
use prophet_machine::{CommParams, MachineModel, SystemParams};
use prophet_uml::Model;
use prophet_xml::XmlResult;
use std::fmt;

/// Pipeline failure.
#[derive(Debug)]
pub enum ProjectError {
    /// The model checker found error-severity diagnostics.
    Check(Vec<Diagnostic>),
    /// Transformation failed.
    Transform(TransformError),
    /// Evaluation failed.
    Estimate(EstimatorError),
    /// Invalid system parameters.
    Machine(String),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Check(diags) => {
                writeln!(f, "model check failed with {} finding(s):", diags.len())?;
                for d in diags {
                    writeln!(f, "  {d}")?;
                }
                Ok(())
            }
            ProjectError::Transform(e) => write!(f, "{e}"),
            ProjectError::Estimate(e) => write!(f, "{e}"),
            ProjectError::Machine(m) => write!(f, "machine error: {m}"),
        }
    }
}

impl std::error::Error for ProjectError {}

/// Everything one pipeline run produces.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Model-check diagnostics (warnings included).
    pub diagnostics: Vec<Diagnostic>,
    /// The generated C++ PMP.
    pub cpp: CppUnit,
    /// The executable IR.
    pub program: Program,
    /// The evaluation (predicted time, report, TF).
    pub evaluation: Evaluation,
}

/// A modeling session: model + SP + CF.
#[derive(Debug, Clone)]
pub struct Project {
    /// The UML performance model.
    pub model: Model,
    /// System parameters (SP).
    pub system: SystemParams,
    /// Communication parameters of the machine model.
    pub comm: CommParams,
    /// Model-checking configuration (MCF).
    pub mcf: McfConfig,
    /// Estimator options (CF-level settings: seed, tracing, limits).
    pub options: EstimatorOptions,
}

impl Project {
    /// Project with default SP (1×1), default MCF, default options.
    pub fn new(model: Model) -> Self {
        Self {
            model,
            system: SystemParams::default(),
            comm: CommParams::default(),
            mcf: McfConfig::default(),
            options: EstimatorOptions::default(),
        }
    }

    /// Set system parameters.
    pub fn with_system(mut self, sp: SystemParams) -> Self {
        self.system = sp;
        self
    }

    /// Set communication parameters.
    pub fn with_comm(mut self, comm: CommParams) -> Self {
        self.comm = comm;
        self
    }

    /// Set the MCF.
    pub fn with_mcf(mut self, mcf: McfConfig) -> Self {
        self.mcf = mcf;
        self
    }

    /// Set estimator options.
    pub fn with_options(mut self, options: EstimatorOptions) -> Self {
        self.options = options;
        self
    }

    /// Load the model from its XML representation.
    pub fn from_model_xml(xml: &str) -> XmlResult<Self> {
        Ok(Self::new(prophet_uml::xmi::model_from_xml(xml)?))
    }

    /// Serialize the model to XML (the `Models (XML)` artifact).
    pub fn model_xml(&self) -> String {
        prophet_uml::xmi::model_to_xml(&self.model)
    }

    /// Run the model checker only.
    pub fn check(&self) -> Vec<Diagnostic> {
        check_model(&self.model, &self.mcf)
    }

    /// Run the full pipeline: check → transform (both targets) →
    /// estimate.
    pub fn run(&self) -> Result<RunArtifacts, ProjectError> {
        let diagnostics = self.check();
        if diagnostics.iter().any(Diagnostic::is_error) {
            return Err(ProjectError::Check(
                diagnostics.into_iter().filter(Diagnostic::is_error).collect(),
            ));
        }
        let cpp = to_cpp(&self.model).map_err(ProjectError::Transform)?;
        let program = to_program(&self.model).map_err(ProjectError::Transform)?;
        let machine =
            MachineModel::new(self.system, self.comm).map_err(ProjectError::Machine)?;
        let evaluation = Estimator::new(machine, self.options.clone())
            .evaluate(&program)
            .map_err(ProjectError::Estimate)?;
        Ok(RunArtifacts { diagnostics, cpp, program, evaluation })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::ModelBuilder;

    fn simple_model() -> Model {
        let mut b = ModelBuilder::new("proj");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Work", "1.5");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        b.build()
    }

    #[test]
    fn pipeline_end_to_end() {
        let run = Project::new(simple_model()).run().unwrap();
        assert_eq!(run.evaluation.predicted_time, 1.5);
        assert!(run.cpp.program.contains("work.execute"));
        assert_eq!(run.program.body.leaf_count(), 1);
        assert!(!run.evaluation.trace.is_empty());
    }

    #[test]
    fn check_gate_blocks_bad_models() {
        let mut b = ModelBuilder::new("bad");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Oops", "1 +");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let err = Project::new(b.build()).run().unwrap_err();
        match err {
            ProjectError::Check(diags) => {
                assert!(diags.iter().any(|d| d.rule == "PP006"), "{diags:?}");
            }
            other => panic!("expected check failure, got {other}"),
        }
    }

    #[test]
    fn model_xml_roundtrip_through_project() {
        let p = Project::new(simple_model());
        let xml = p.model_xml();
        let p2 = Project::from_model_xml(&xml).unwrap();
        let r1 = p.run().unwrap();
        let r2 = p2.run().unwrap();
        assert_eq!(r1.evaluation.predicted_time, r2.evaluation.predicted_time);
        assert_eq!(r1.cpp.model_text(), r2.cpp.model_text());
    }

    #[test]
    fn invalid_sp_reported() {
        let p = Project::new(simple_model()).with_system(SystemParams {
            nodes: 4,
            cpus_per_node: 1,
            processes: 2,
            threads_per_process: 1,
        });
        assert!(matches!(p.run().unwrap_err(), ProjectError::Machine(_)));
    }
}
