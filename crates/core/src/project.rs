//! The legacy single-shot pipeline API, now a shim over [`Session`].
//!
//! `Project::run()` re-checks and re-transforms the model on every call;
//! [`Session`] does that work exactly once and then
//! evaluates any number of scenarios. New code should compile a session:
//!
//! ```
//! use prophet_core::{Scenario, Session};
//! # use prophet_uml::ModelBuilder;
//! # let mut b = ModelBuilder::new("m");
//! # let d = b.main_diagram();
//! # let i = b.initial(d, "start");
//! # let a = b.action(d, "Work", "1.5");
//! # let f = b.final_node(d, "end");
//! # b.flow(d, i, a);
//! # b.flow(d, a, f);
//! # let model = b.build();
//! let session = Session::new(model)?;
//! let run = session.evaluate(&Scenario::default())?;
//! assert_eq!(run.predicted_time, 1.5);
//! # Ok::<(), prophet_core::Error>(())
//! ```
//!
//! Migration map:
//!
//! | old | new |
//! |---|---|
//! | `Project::new(model).run()?` | `Session::new(model)?.evaluate(&Scenario::default())?` |
//! | `.with_system(sp)` / `.with_comm(c)` / `.with_options(o)` | fields of [`Scenario`] |
//! | `.with_mcf(mcf)` | argument of [`Session::compile`](crate::Session::compile) |
//! | `sweep_parallel(&project, &points, n)` | [`Session::sweep`](crate::Session::sweep) / [`Session::sweep_with`](crate::Session::sweep_with) |
//! | `ProjectError` | [`Error`] (with `source()` chaining) |

use crate::error::Error;
use crate::session::{Scenario, Session};
use prophet_check::{check_model, Diagnostic, McfConfig};
use prophet_codegen::CppUnit;
use prophet_estimator::{EstimatorError, EstimatorOptions, Evaluation, Program};
use prophet_machine::{CommParams, MachineError, SystemParams};
use prophet_uml::Model;
use prophet_xml::XmlResult;
use std::fmt;

use crate::transform::TransformError;

/// Pipeline failure of the legacy [`Project`] API.
#[derive(Debug)]
pub enum ProjectError {
    /// The model checker found error-severity diagnostics.
    Check(Vec<Diagnostic>),
    /// Transformation failed.
    Transform(TransformError),
    /// Evaluation failed.
    Estimate(EstimatorError),
    /// Invalid system parameters.
    Machine(MachineError),
}

impl fmt::Display for ProjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProjectError::Check(diags) => {
                // No trailing newline, matching `Error::Check`'s Display.
                write!(f, "model check failed with {} finding(s):", diags.len())?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            ProjectError::Transform(e) => write!(f, "{e}"),
            // The legacy API promises single-line messages with the full
            // detail inline; `EstimatorError`'s own Display is now a
            // terse headline with the detail in its `source()` chain, so
            // flatten that chain here.
            ProjectError::Estimate(e) => {
                write!(f, "{}", crate::error::render_chain_inline(e))
            }
            ProjectError::Machine(e) => write!(f, "machine error: {e}"),
        }
    }
}

// No `source()`: the legacy contract is flat single-line messages, and
// every variant's Display already embeds the full detail inline — a
// source chain on top would print everything twice in chain renderers.
impl std::error::Error for ProjectError {}

impl From<Error> for ProjectError {
    fn from(e: Error) -> Self {
        match e {
            Error::Check(diags) => ProjectError::Check(diags),
            Error::Transform(e) => ProjectError::Transform(e),
            Error::Machine(e) => ProjectError::Machine(e),
            Error::Estimate(e) => ProjectError::Estimate(e),
            // The legacy API parsed XML before constructing a Project,
            // so a parse failure can only surface as a transform error.
            Error::Parse(e) => ProjectError::Transform(TransformError(e.to_string())),
        }
    }
}

/// Everything one pipeline run produces.
#[derive(Debug)]
pub struct RunArtifacts {
    /// Model-check diagnostics (warnings included).
    pub diagnostics: Vec<Diagnostic>,
    /// The generated C++ PMP.
    pub cpp: CppUnit,
    /// The executable IR.
    pub program: Program,
    /// The evaluation (predicted time, report, TF).
    pub evaluation: Evaluation,
}

/// A modeling session: model + SP + CF.
#[deprecated(
    since = "0.2.0",
    note = "use `prophet_core::Session`: compile once, evaluate many scenarios"
)]
#[derive(Debug, Clone)]
pub struct Project {
    /// The UML performance model.
    pub model: Model,
    /// System parameters (SP).
    pub system: SystemParams,
    /// Communication parameters of the machine model.
    pub comm: CommParams,
    /// Model-checking configuration (MCF).
    pub mcf: McfConfig,
    /// Estimator options (CF-level settings: seed, tracing, limits).
    pub options: EstimatorOptions,
}

#[allow(deprecated)]
impl Project {
    /// Project with default SP (1×1), default MCF, default options.
    pub fn new(model: Model) -> Self {
        Self {
            model,
            system: SystemParams::default(),
            comm: CommParams::default(),
            mcf: McfConfig::default(),
            options: EstimatorOptions::default(),
        }
    }

    /// Set system parameters.
    pub fn with_system(mut self, sp: SystemParams) -> Self {
        self.system = sp;
        self
    }

    /// Set communication parameters.
    pub fn with_comm(mut self, comm: CommParams) -> Self {
        self.comm = comm;
        self
    }

    /// Set the MCF.
    pub fn with_mcf(mut self, mcf: McfConfig) -> Self {
        self.mcf = mcf;
        self
    }

    /// Set estimator options.
    pub fn with_options(mut self, options: EstimatorOptions) -> Self {
        self.options = options;
        self
    }

    /// Load the model from its XML representation.
    pub fn from_model_xml(xml: &str) -> XmlResult<Self> {
        Ok(Self::new(prophet_uml::xmi::model_from_xml(xml)?))
    }

    /// Serialize the model to XML (the `Models (XML)` artifact).
    pub fn model_xml(&self) -> String {
        prophet_uml::xmi::model_to_xml(&self.model)
    }

    /// Run the model checker only.
    pub fn check(&self) -> Vec<Diagnostic> {
        check_model(&self.model, &self.mcf)
    }

    /// The scenario equivalent of this project's SP/CF settings.
    pub fn scenario(&self) -> Scenario {
        Scenario {
            system: self.system,
            comm: self.comm,
            options: self.options.clone(),
            backend: Default::default(),
            no_elab_cache: false,
        }
    }

    /// Compile this project's model into a reusable [`Session`].
    pub fn compile(&self) -> Result<Session, Error> {
        Session::compile(self.model.clone(), self.mcf.clone())
    }

    /// Run the full pipeline: check → transform (both targets) →
    /// estimate. Each call recompiles; prefer [`Session`].
    pub fn run(&self) -> Result<RunArtifacts, ProjectError> {
        let session = self.compile()?;
        let evaluation = session.evaluate(&self.scenario())?;
        let (diagnostics, cpp, program) = session.into_artifacts();
        Ok(RunArtifacts {
            diagnostics,
            cpp,
            program,
            evaluation,
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use prophet_uml::ModelBuilder;

    fn simple_model() -> Model {
        let mut b = ModelBuilder::new("proj");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Work", "1.5");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        b.build()
    }

    #[test]
    fn pipeline_end_to_end() {
        let run = Project::new(simple_model()).run().unwrap();
        assert_eq!(run.evaluation.predicted_time, 1.5);
        assert!(run.cpp.program.contains("work.execute"));
        assert_eq!(run.program.body.leaf_count(), 1);
        assert!(!run.evaluation.trace.is_empty());
    }

    #[test]
    fn check_gate_blocks_bad_models() {
        let mut b = ModelBuilder::new("bad");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Oops", "1 +");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let err = Project::new(b.build()).run().unwrap_err();
        match err {
            ProjectError::Check(diags) => {
                assert!(diags.iter().any(|d| d.rule == "PP006"), "{diags:?}");
            }
            other => panic!("expected check failure, got {other}"),
        }
    }

    #[test]
    fn model_xml_roundtrip_through_project() {
        let p = Project::new(simple_model());
        let xml = p.model_xml();
        let p2 = Project::from_model_xml(&xml).unwrap();
        let r1 = p.run().unwrap();
        let r2 = p2.run().unwrap();
        assert_eq!(r1.evaluation.predicted_time, r2.evaluation.predicted_time);
        assert_eq!(r1.cpp.model_text(), r2.cpp.model_text());
    }

    #[test]
    fn invalid_sp_reported() {
        let p = Project::new(simple_model()).with_system(SystemParams {
            nodes: 4,
            cpus_per_node: 1,
            processes: 2,
            threads_per_process: 1,
        });
        assert!(matches!(p.run().unwrap_err(), ProjectError::Machine(_)));
    }

    #[test]
    fn shim_agrees_with_session() {
        let p = Project::new(simple_model()).with_system(SystemParams::flat_mpi(2, 1));
        let via_project = p.run().unwrap().evaluation.predicted_time;
        let via_session = Session::new(simple_model())
            .unwrap()
            .evaluate(&p.scenario())
            .unwrap()
            .predicted_time;
        assert_eq!(via_project, via_session);
    }
}
