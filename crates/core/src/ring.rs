//! The consistent-hash ring: which shard owns a content key.
//!
//! Each shard is planted on a `u64` ring at [`VNODES`] points (FNV-1a
//! over `"{label}#{vnode}"`); a key is owned by the first shard point at
//! or clockwise after it. Hashing shard *labels* (their addresses) —
//! not positional indices — means every process configured with the
//! same shard list computes the same placement regardless of list
//! order, and adding a shard only moves the keys that land in its new
//! arcs (~1/N of the space) instead of reshuffling everything, so the
//! sibling shards' compiled-session pools and store write-backs stay
//! warm.
//!
//! The ring lives in `prophet-core` (not the router crate) because
//! placement is a *fleet-wide agreement*: the router routes by it, and
//! a partitioned `prophet serve --store DIR --partition` shard uses the
//! identical ring to decide which store entries are its own to
//! warm-start. Both layers hashing the same labels through the same
//! code is what makes "the router sends key K to shard S" and "shard S
//! warm-starts key K" the same statement.
//!
//! [`Ring::successors`] yields *all* shards in ring order from the
//! key's point: the owner first, then a deterministic failover
//! sequence — every router agrees on which shard is "next" when the
//! owner is down, so retried keys pile onto one fallback (which then
//! compiles the model once) instead of scattering.

use crate::store::fnv1a;
use crate::ArtifactKey;

/// Ring points per shard. Enough that per-shard load evens out to a
/// few percent; cheap enough that building the ring is trivial.
pub const VNODES: usize = 64;

/// Finalize a digest into a ring position. FNV-1a alone is a poor ring
/// hash: shard labels differ only in their last few bytes, which leaves
/// their high bits (what the sorted ring orders by) correlated and the
/// arcs badly skewed. One xor-shift/multiply finalizer pass avalanches
/// every input bit across the word.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// The routing key of a `(model, MCF)` content key: both digests
/// through one FNV-1a pass plus the finalizer, so near-identical
/// artifact keys (same model, default MCF) still land uniformly.
pub fn route_key(key: ArtifactKey) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&key.model.to_be_bytes());
    bytes[8..].copy_from_slice(&key.mcf.to_be_bytes());
    mix(fnv1a(&bytes))
}

/// A consistent-hash ring over shard indices `0..N`.
#[derive(Debug)]
pub struct Ring {
    /// `(ring position, shard index)`, sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// Build the ring from shard labels (addresses). Placement depends
    /// only on the label *values*, never on their order.
    pub fn new<S: AsRef<str>>(labels: &[S]) -> Self {
        let mut points = Vec::with_capacity(labels.len() * VNODES);
        for (index, label) in labels.iter().enumerate() {
            for vnode in 0..VNODES {
                let point = mix(fnv1a(format!("{}#{vnode}", label.as_ref()).as_bytes()));
                points.push((point, index));
            }
        }
        points.sort_unstable();
        Self {
            points,
            shards: labels.len(),
        }
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards == 0
    }

    /// The shard owning `key`.
    ///
    /// # Panics
    /// On an empty ring; the router refuses to start without shards.
    pub fn route(&self, key: u64) -> usize {
        self.successors(key)[0]
    }

    /// Every shard exactly once, in ring order from `key`'s point: the
    /// owner first, then the failover order every router agrees on.
    pub fn successors(&self, key: u64) -> Vec<usize> {
        let start = self.points.partition_point(|&(point, _)| point < key);
        let mut order = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.shards];
        let wrapped = self.points[start..].iter().chain(&self.points[..start]);
        for &(_, shard) in wrapped {
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = Ring::new(&labels(3));
        for key in 0..1000u64 {
            let shard = ring.route(key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert!(shard < 3);
            assert_eq!(
                shard,
                ring.route(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                "same key, same shard"
            );
        }
    }

    #[test]
    fn placement_ignores_label_order() {
        let mut names = labels(4);
        let forward = Ring::new(&names);
        names.reverse();
        let backward = Ring::new(&names);
        for key in (0..1000u64).map(|k| k.wrapping_mul(0x2545_f491_4f6c_dd1d)) {
            // Shard indices differ (the lists are reversed), but the
            // *label* that owns the key must be identical.
            assert_eq!(
                labels(4)[forward.route(key)],
                names[backward.route(key)],
                "placement must depend on label values, not positions"
            );
        }
    }

    #[test]
    fn load_spreads_over_every_shard() {
        let ring = Ring::new(&labels(4));
        let mut owned = [0usize; 4];
        for key in (0..4000u64).map(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            owned[ring.route(key)] += 1;
        }
        for (shard, &count) in owned.iter().enumerate() {
            assert!(
                count > 400,
                "shard {shard} owns only {count}/4000 keys: {owned:?}"
            );
        }
    }

    #[test]
    fn successors_visit_every_shard_once() {
        let ring = Ring::new(&labels(5));
        let order = ring.successors(route_key(ArtifactKey { model: 7, mcf: 9 }));
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "dedup failed: {order:?}");
        assert_eq!(
            order[0],
            ring.route(route_key(ArtifactKey { model: 7, mcf: 9 }))
        );
    }

    #[test]
    fn adding_a_shard_moves_only_its_own_arcs() {
        let four = Ring::new(&labels(4));
        let five = Ring::new(&labels(5));
        let keys: Vec<u64> = (0..2000u64)
            .map(|k| k.wrapping_mul(0x2545_f491_4f6c_dd1d))
            .collect();
        let moved = keys
            .iter()
            .filter(|&&k| {
                let before = four.route(k);
                let after = five.route(k);
                after != before && after != 4 // moved, but not to the new shard
            })
            .count();
        assert_eq!(
            moved, 0,
            "keys may only move *to* the new shard, never between old ones"
        );
        let to_new = keys.iter().filter(|&&k| five.route(k) == 4).count();
        assert!(
            to_new > 100 && to_new < 900,
            "the new shard should take roughly 1/5 of the keys, took {to_new}/2000"
        );
    }
}
