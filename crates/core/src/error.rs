//! The unified pipeline error.
//!
//! Every stage of the compile/evaluate pipeline reports through one
//! [`Error`] enum with [`std::error::Error::source`] chaining, replacing
//! the stringly-typed `ProjectError::Machine(String)` and the
//! `Result<f64, String>` sweep outcomes of the old `Project` API.

use crate::transform::TransformError;
use prophet_check::Diagnostic;
use prophet_estimator::EstimatorError;
use prophet_machine::MachineError;
use prophet_xml::XmlError;
use std::fmt;

/// Why a compile or evaluation failed.
#[derive(Debug, Clone)]
pub enum Error {
    /// The model checker found error-severity diagnostics.
    Check(Vec<Diagnostic>),
    /// The model XML could not be parsed.
    Parse(XmlError),
    /// The UML → C++/IR transformation failed.
    Transform(TransformError),
    /// The system parameters do not describe a valid machine.
    Machine(MachineError),
    /// Simulation-time evaluation failed.
    Estimate(EstimatorError),
}

impl Error {
    /// Error-severity diagnostics if this is a check failure.
    pub fn diagnostics(&self) -> Option<&[Diagnostic]> {
        match self {
            Error::Check(diags) => Some(diags),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Check(diags) => {
                // No trailing newline: Display output gets embedded in
                // single-line contexts (`format!("...: {e}")`, log lines).
                write!(f, "model check failed with {} finding(s):", diags.len())?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            Error::Parse(_) => write!(f, "model XML does not parse"),
            Error::Transform(_) => write!(f, "model transformation failed"),
            Error::Machine(_) => write!(f, "machine model rejected the system parameters"),
            Error::Estimate(_) => write!(f, "performance evaluation failed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Check(_) => None,
            Error::Parse(e) => Some(e),
            Error::Transform(e) => Some(e),
            Error::Machine(e) => Some(e),
            Error::Estimate(e) => Some(e),
        }
    }
}

impl From<XmlError> for Error {
    fn from(e: XmlError) -> Self {
        Error::Parse(e)
    }
}

impl From<TransformError> for Error {
    fn from(e: TransformError) -> Self {
        Error::Transform(e)
    }
}

impl From<MachineError> for Error {
    fn from(e: MachineError) -> Self {
        Error::Machine(e)
    }
}

impl From<EstimatorError> for Error {
    fn from(e: EstimatorError) -> Self {
        Error::Estimate(e)
    }
}

fn render_chain_with(e: &dyn std::error::Error, sep: &str) -> String {
    let mut out = e.to_string();
    let mut cause = e.source();
    while let Some(c) = cause {
        out.push_str(sep);
        out.push_str(&c.to_string());
        cause = c.source();
    }
    out
}

/// Render an error with its whole `source()` chain, one level per line.
pub fn render_chain(e: &dyn std::error::Error) -> String {
    render_chain_with(e, "\n  caused by: ")
}

/// Render an error and its `source()` chain on a single line, `": "`
/// separated — for table rows and log lines where newlines would break
/// the layout.
pub fn render_chain_inline(e: &dyn std::error::Error) -> String {
    render_chain_with(e, ": ")
}
