//! The automatic model transformation (Figure 5), targeting both
//! representations.
//!
//! `to_cpp` delegates to prophet-codegen (the paper's C++ text).
//! `to_program` runs the *same* structural phases to build the executable
//! IR: globals → cost functions → flow, with decision guards, composite
//! nesting, `<<loop+>>`/`<<parallel+>>` semantics and MPI building blocks.

use prophet_codegen::{build_flow_tree, generate_cpp, CodegenError, CppUnit, FlowNode};
use prophet_estimator::{MpiOp, Program, Step};
use prophet_expr::{parse_expression, parse_statements, FunctionDef};
use prophet_uml::{Model, TagValue, VarScope};
use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Per-thread count of structural transformations performed (both
    /// backends). The compile-once [`crate::Session`] contract is
    /// observable through this: a session adds exactly two (one
    /// `to_cpp`, one `to_program`) no matter how many scenarios it
    /// evaluates. Benches and tests assert on deltas of this counter;
    /// it is thread-local so concurrently running tests cannot perturb
    /// each other's deltas — measure on the thread that compiles and
    /// evaluates (e.g. a `threads: 1` sweep).
    static TRANSFORM_INVOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of `to_cpp`/`to_program` calls so far on this thread.
pub fn transform_invocations() -> u64 {
    TRANSFORM_INVOCATIONS.with(Cell::get)
}

/// Transformation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformError(pub String);

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transform error: {}", self.0)
    }
}

impl std::error::Error for TransformError {}

impl From<CodegenError> for TransformError {
    fn from(e: CodegenError) -> Self {
        TransformError(e.0)
    }
}

/// UML → C++ (the PMP of Figure 8).
pub fn to_cpp(model: &Model) -> Result<CppUnit, TransformError> {
    TRANSFORM_INVOCATIONS.with(|c| c.set(c.get() + 1));
    Ok(generate_cpp(model)?)
}

/// UML → executable Program IR for the Performance Estimator.
pub fn to_program(model: &Model) -> Result<Program, TransformError> {
    TRANSFORM_INVOCATIONS.with(|c| c.set(c.get() + 1));
    let mut program = Program::new(model.name.clone());

    // Globals / locals (Figure 5 lines 9–12 and 20–23). Initializers are
    // constant expressions.
    for v in &model.variables {
        let init = match &v.init {
            Some(src) => {
                let expr = parse_expression(src)
                    .map_err(|e| TransformError(format!("initializer of `{}`: {e}", v.name)))?;
                let mut env = prophet_expr::Env::new();
                expr.eval(&mut env)
                    .and_then(prophet_expr::Value::as_num)
                    .map_err(|e| TransformError(format!("initializer of `{}`: {e}", v.name)))?
            }
            None => 0.0,
        };
        match v.scope {
            VarScope::Global => program.globals.push((v.name.clone(), init)),
            VarScope::Local => program.locals.push((v.name.clone(), init)),
        }
    }

    // Cost functions (lines 13–18).
    for f in &model.functions {
        let body = parse_expression(&f.body)
            .map_err(|e| TransformError(format!("cost function `{}`: {e}", f.name)))?;
        program
            .functions
            .push(FunctionDef::new(f.name.clone(), f.params.clone(), body));
    }

    // Flow (lines 29–35) over the same structural tree as the C++ backend.
    let flow = build_flow_tree(model, model.main_diagram()).map_err(TransformError)?;
    program.body = lower_flow(model, &flow)?;
    Ok(program)
}

fn expr_tag(
    model: &Model,
    eid: prophet_uml::ElementId,
    tag: &str,
) -> Result<Option<prophet_expr::Expr>, TransformError> {
    let el = model.element(eid);
    match el.tag(tag) {
        Some(TagValue::Expr(src)) | Some(TagValue::Str(src)) => {
            let e = parse_expression(src)
                .map_err(|e| TransformError(format!("tag `{tag}` of `{}`: {e}", el.name)))?;
            Ok(Some(e))
        }
        Some(TagValue::Int(i)) => Ok(Some(prophet_expr::Expr::Num(*i as f64))),
        Some(TagValue::Num(n)) => Ok(Some(prophet_expr::Expr::Num(*n))),
        _ => Ok(None),
    }
}

fn lower_flow(model: &Model, flow: &FlowNode) -> Result<Step, TransformError> {
    Ok(match flow {
        FlowNode::Empty => Step::Nop,
        FlowNode::Seq(items) => {
            let mut steps = Vec::with_capacity(items.len());
            for item in items {
                let s = lower_flow(model, item)?;
                if s != Step::Nop {
                    steps.push(s);
                }
            }
            match steps.len() {
                0 => Step::Nop,
                1 => steps.pop().expect("one"),
                _ => Step::Seq(steps),
            }
        }
        FlowNode::Exec(eid) => {
            let el = model.element(*eid);
            match el.stereotype_name() {
                Some("send") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Send {
                        dest: required_expr(model, *eid, "dest")?,
                        size: expr_tag(model, *eid, "size")?
                            .unwrap_or(prophet_expr::Expr::Num(0.0)),
                        tag: int_tag(el, "tag").unwrap_or(0),
                    },
                },
                Some("recv") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Recv {
                        src: required_expr(model, *eid, "src")?,
                        tag: int_tag(el, "tag").unwrap_or(0),
                    },
                },
                Some("broadcast") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Broadcast {
                        root: required_expr(model, *eid, "root")?,
                        size: expr_tag(model, *eid, "size")?
                            .unwrap_or(prophet_expr::Expr::Num(0.0)),
                    },
                },
                Some("reduce") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Reduce {
                        root: required_expr(model, *eid, "root")?,
                        size: expr_tag(model, *eid, "size")?
                            .unwrap_or(prophet_expr::Expr::Num(0.0)),
                    },
                },
                Some("allreduce") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Allreduce {
                        size: expr_tag(model, *eid, "size")?
                            .unwrap_or(prophet_expr::Expr::Num(0.0)),
                    },
                },
                Some("scatter") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Scatter {
                        root: required_expr(model, *eid, "root")?,
                        size: expr_tag(model, *eid, "size")?
                            .unwrap_or(prophet_expr::Expr::Num(0.0)),
                    },
                },
                Some("gather") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Gather {
                        root: required_expr(model, *eid, "root")?,
                        size: expr_tag(model, *eid, "size")?
                            .unwrap_or(prophet_expr::Expr::Num(0.0)),
                    },
                },
                Some("barrier") => Step::Mpi {
                    name: el.name.clone(),
                    op: MpiOp::Barrier,
                },
                _ => {
                    // <<action+>>: cost from the `cost` tag or the literal
                    // `time` tag (Figure 1(b)).
                    let cost = match expr_tag(model, *eid, "cost")? {
                        Some(e) => Some(e),
                        None => expr_tag(model, *eid, "time")?,
                    };
                    let code = match el.code_fragment() {
                        Some(src) => parse_statements(src).map_err(|e| {
                            TransformError(format!("code fragment of `{}`: {e}", el.name))
                        })?,
                        None => Vec::new(),
                    };
                    Step::Exec {
                        name: el.name.clone(),
                        cost,
                        code,
                    }
                }
            }
        }
        FlowNode::Branch(arms) => {
            let mut lowered = Vec::with_capacity(arms.len());
            for (guard, arm) in arms {
                let guard_expr = match guard {
                    Some(g) => Some(
                        parse_expression(g)
                            .map_err(|e| TransformError(format!("guard `{g}`: {e}")))?,
                    ),
                    None => None,
                };
                lowered.push((guard_expr, lower_flow(model, arm)?));
            }
            Step::Branch(lowered)
        }
        FlowNode::Parallel(arms) => {
            let mut lowered = Vec::with_capacity(arms.len());
            for arm in arms {
                lowered.push(lower_flow(model, arm)?);
            }
            Step::Parallel(lowered)
        }
        FlowNode::Composite { element, body } => {
            let el = model.element(*element);
            let inner = lower_flow(model, body)?;
            match el.stereotype_name() {
                Some("loop+") => Step::Loop {
                    name: el.name.clone(),
                    count: required_expr(model, *element, "iterations")?,
                    var: match el.tag("variable") {
                        Some(TagValue::Str(v)) => Some(v.clone()),
                        _ => None,
                    },
                    body: Box::new(inner),
                },
                Some("parallel+") => Step::ParallelRegion {
                    name: el.name.clone(),
                    threads: expr_tag(model, *element, "threads")?,
                    body: Box::new(inner),
                },
                Some("critical+") => Step::Critical {
                    name: el.name.clone(),
                    lock: match el.tag("lock") {
                        Some(TagValue::Str(l)) => l.clone(),
                        _ => "<global>".to_string(),
                    },
                    body: Box::new(inner),
                },
                _ => Step::Composite {
                    name: el.name.clone(),
                    body: Box::new(inner),
                },
            }
        }
    })
}

fn required_expr(
    model: &Model,
    eid: prophet_uml::ElementId,
    tag: &str,
) -> Result<prophet_expr::Expr, TransformError> {
    expr_tag(model, eid, tag)?.ok_or_else(|| {
        TransformError(format!(
            "element `{}` is missing required tag `{tag}`",
            model.element(eid).name
        ))
    })
}

fn int_tag(el: &prophet_uml::Element, tag: &str) -> Option<i64> {
    match el.tag(tag) {
        Some(TagValue::Int(i)) => Some(*i),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::{ModelBuilder, TagValue, VarType};

    fn linear_model() -> Model {
        let mut b = ModelBuilder::new("lin");
        b.global("GV", VarType::Int, Some("0"));
        b.function("FA1", &[], "0.5");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "A1", "FA1()");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        b.build()
    }

    #[test]
    fn both_targets_from_one_model() {
        let m = linear_model();
        let cpp = to_cpp(&m).unwrap();
        let prog = to_program(&m).unwrap();
        assert!(cpp.program.contains("a1.execute(uid, pid, tid, FA1());"));
        assert_eq!(prog.globals, vec![("GV".to_string(), 0.0)]);
        assert_eq!(prog.functions.len(), 1);
        assert_eq!(prog.body.leaf_count(), 1);
    }

    #[test]
    fn initializer_expressions_evaluate() {
        let mut b = ModelBuilder::new("init");
        b.global("X", VarType::Double, Some("2 * 3 + 1"));
        let main = b.main_diagram();
        let i = b.initial(main, "s");
        let a = b.action(main, "A", "1");
        let f = b.final_node(main, "e");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let prog = to_program(&b.build()).unwrap();
        assert_eq!(prog.globals, vec![("X".to_string(), 7.0)]);
    }

    #[test]
    fn mpi_elements_lower_to_ops() {
        let mut b = ModelBuilder::new("mpi");
        let main = b.main_diagram();
        let i = b.initial(main, "s");
        let s0 = b.mpi(
            main,
            "s0",
            "send",
            &[
                ("dest", TagValue::Expr("pid + 1".into())),
                ("size", TagValue::Expr("1024".into())),
                ("tag", TagValue::Int(3)),
            ],
        );
        let bar = b.mpi(main, "bar", "barrier", &[]);
        let f = b.final_node(main, "e");
        b.flow(main, i, s0);
        b.flow(main, s0, bar);
        b.flow(main, bar, f);
        let prog = to_program(&b.build()).unwrap();
        let Step::Seq(items) = &prog.body else {
            panic!("{:?}", prog.body)
        };
        assert!(matches!(
            &items[0],
            Step::Mpi {
                op: MpiOp::Send { tag: 3, .. },
                ..
            }
        ));
        assert!(matches!(
            &items[1],
            Step::Mpi {
                op: MpiOp::Barrier,
                ..
            }
        ));
    }

    #[test]
    fn loop_and_parallel_composites_lower() {
        let mut b = ModelBuilder::new("comp");
        let main = b.main_diagram();
        let lbody = b.diagram("lbody");
        let pbody = b.diagram("pbody");
        let i = b.initial(main, "s");
        let lp = b.loop_activity(main, "L", lbody, "10");
        let pr = b.parallel_activity(main, "R", pbody, "4");
        let f = b.final_node(main, "e");
        b.flow(main, i, lp);
        b.flow(main, lp, pr);
        b.flow(main, pr, f);
        b.action(lbody, "LS", "1");
        b.action(pbody, "PS", "1");
        let prog = to_program(&b.build()).unwrap();
        let Step::Seq(items) = &prog.body else {
            panic!()
        };
        assert!(matches!(&items[0], Step::Loop { .. }));
        assert!(matches!(&items[1], Step::ParallelRegion { .. }));
    }

    #[test]
    fn missing_required_tag_reported() {
        let mut b = ModelBuilder::new("bad");
        let main = b.main_diagram();
        let i = b.initial(main, "s");
        // builder requires dest for mpi(); construct send without it via set_tag-less mpi call
        let s0 = b.mpi(main, "s0", "send", &[]);
        let f = b.final_node(main, "e");
        b.flow(main, i, s0);
        b.flow(main, s0, f);
        let err = to_program(&b.build()).unwrap_err();
        assert!(err.0.contains("dest"), "{err}");
    }

    #[test]
    fn time_tag_fallback() {
        let mut b = ModelBuilder::new("timed");
        let main = b.main_diagram();
        let i = b.initial(main, "s");
        let a = b.timed_action(main, "T", 10.0);
        let f = b.final_node(main, "e");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let prog = to_program(&b.build()).unwrap();
        match &prog.body {
            Step::Exec { cost: Some(e), .. } => assert_eq!(*e, prophet_expr::Expr::Num(10.0)),
            other => panic!("{other:?}"),
        }
    }
}
