//! The binary payload codec of the artifact store: a hand-rolled,
//! dependency-free, length-prefixed encoding of everything a compiled
//! [`Session`](crate::Session) owns.
//!
//! Design rules:
//!
//! * **Bounds-checked decode, no panics.** Every read checks the
//!   remaining byte budget first; every count is validated against the
//!   minimum encoded size of its element type, and pre-allocations are
//!   additionally capped (collections grow normally past the cap), so
//!   a crafted payload cannot amplify file size into memory. A corrupt
//!   payload yields a [`DecodeError`] — which the store treats as a
//!   cache miss — never an abort. (The store also checksums the payload
//!   before decoding, so in practice decode errors mean a format
//!   mismatch, not random corruption.)
//! * **Deterministic encode.** The same session serializes to the same
//!   bytes — collections are written in their in-memory order, which is
//!   deterministic for compile artifacts, and the store sorts
//!   elaboration entries before encoding.
//! * **Tag-per-variant.** Enums are a `u8` tag followed by the
//!   variant's fields; unknown tags are decode errors (a newer format
//!   must bump [`super::FORMAT_VERSION`], which reads as a clean miss).
//!
//! The float encoding is by IEEE-754 bit pattern (`to_bits`), so
//! predictions from a loaded artifact are bit-identical to predictions
//! from the freshly compiled session it was saved from.

use prophet_check::{Diagnostic, Severity};
use prophet_codegen::CppUnit;
use prophet_estimator::{ElabEntry, FlattenLimits, MpiOp, PrimOp, Program, RankOps, Step};
use prophet_expr::{Expr, FunctionDef, Stmt};
use prophet_machine::{CommParams, SystemParams};
use std::sync::Arc;

/// A payload that failed to decode (wrong tag, short buffer,
/// over-long count). Carries a description for diagnostics; the store
/// maps any decode error to "miss + evict".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "artifact payload does not decode: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn err<T>(what: impl Into<String>) -> Result<T, DecodeError> {
    Err(DecodeError(what.into()))
}

/// Cap pre-allocations from decoded counts: a count is validated
/// against the remaining bytes (see [`Reader::count`]), but a crafted
/// payload can still claim many minimum-size elements, so collections
/// start at a bounded capacity and grow normally past it.
fn cap(n: usize) -> usize {
    n.min(1024)
}

// ---------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------

/// Append-only byte writer (all integers little-endian).
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Element count of a collection about to be written.
    fn count(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Bounds-checked byte reader over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte has been consumed (trailing garbage is
    /// a format violation, not padding).
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            err(format!("{} trailing bytes", self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.remaining() {
            return err(format!("need {n} bytes, {} remain", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        usize::try_from(v).or_else(|_| err(format!("value {v} exceeds usize")))
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => err(format!("bad bool byte {other}")),
        }
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| err("non-UTF-8 string"))
    }

    /// Element count of a collection, validated against the remaining
    /// bytes: every element needs at least `min_item_bytes` (≥ 1), so a
    /// count the buffer cannot possibly back is rejected before any
    /// allocation.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n * min_item_bytes.max(1) > self.remaining() {
            return err(format!("count {n} exceeds remaining bytes"));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Expression / statement trees (prophet-expr)
// ---------------------------------------------------------------------

fn put_expr(w: &mut Writer, e: &Expr) {
    match e {
        Expr::Num(n) => {
            w.u8(0);
            w.f64(*n);
        }
        Expr::Bool(b) => {
            w.u8(1);
            w.bool(*b);
        }
        Expr::Var(name) => {
            w.u8(2);
            w.str(name);
        }
        Expr::Unary(op, a) => {
            w.u8(3);
            w.u8(*op as u8);
            put_expr(w, a);
        }
        Expr::Binary(op, a, b) => {
            w.u8(4);
            w.u8(*op as u8);
            put_expr(w, a);
            put_expr(w, b);
        }
        Expr::Cond(c, t, f) => {
            w.u8(5);
            put_expr(w, c);
            put_expr(w, t);
            put_expr(w, f);
        }
        Expr::Call(name, args) => {
            w.u8(6);
            w.str(name);
            w.count(args.len());
            for a in args {
                put_expr(w, a);
            }
        }
    }
}

fn get_expr(r: &mut Reader<'_>) -> Result<Expr, DecodeError> {
    use prophet_expr::{BinOp, UnOp};
    Ok(match r.u8()? {
        0 => Expr::Num(r.f64()?),
        1 => Expr::Bool(r.bool()?),
        2 => Expr::Var(r.str()?),
        3 => {
            let op = match r.u8()? {
                0 => UnOp::Neg,
                1 => UnOp::Not,
                t => return err(format!("bad unary-op tag {t}")),
            };
            Expr::Unary(op, Box::new(get_expr(r)?))
        }
        4 => {
            let op = match r.u8()? {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                4 => BinOp::Rem,
                5 => BinOp::Pow,
                6 => BinOp::Eq,
                7 => BinOp::Ne,
                8 => BinOp::Lt,
                9 => BinOp::Le,
                10 => BinOp::Gt,
                11 => BinOp::Ge,
                12 => BinOp::And,
                13 => BinOp::Or,
                t => return err(format!("bad binary-op tag {t}")),
            };
            let a = get_expr(r)?;
            let b = get_expr(r)?;
            Expr::Binary(op, Box::new(a), Box::new(b))
        }
        5 => {
            let c = get_expr(r)?;
            let t = get_expr(r)?;
            let f = get_expr(r)?;
            Expr::Cond(Box::new(c), Box::new(t), Box::new(f))
        }
        6 => {
            let name = r.str()?;
            let n = r.count(2)?;
            let mut args = Vec::with_capacity(cap(n));
            for _ in 0..n {
                args.push(get_expr(r)?);
            }
            Expr::Call(name, args)
        }
        t => return err(format!("bad expr tag {t}")),
    })
}

fn put_opt_expr(w: &mut Writer, e: &Option<Expr>) {
    match e {
        None => w.u8(0),
        Some(e) => {
            w.u8(1);
            put_expr(w, e);
        }
    }
}

fn get_opt_expr(r: &mut Reader<'_>) -> Result<Option<Expr>, DecodeError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(get_expr(r)?),
        t => return err(format!("bad option tag {t}")),
    })
}

fn put_stmts(w: &mut Writer, stmts: &[Stmt]) {
    w.count(stmts.len());
    for s in stmts {
        put_stmt(w, s);
    }
}

fn get_stmts(r: &mut Reader<'_>) -> Result<Vec<Stmt>, DecodeError> {
    let n = r.count(3)?;
    let mut out = Vec::with_capacity(cap(n));
    for _ in 0..n {
        out.push(get_stmt(r)?);
    }
    Ok(out)
}

fn put_stmt(w: &mut Writer, s: &Stmt) {
    match s {
        Stmt::Decl(name, e) => {
            w.u8(0);
            w.str(name);
            put_expr(w, e);
        }
        Stmt::Assign(name, e) => {
            w.u8(1);
            w.str(name);
            put_expr(w, e);
        }
        Stmt::Expr(e) => {
            w.u8(2);
            put_expr(w, e);
        }
        Stmt::If(c, t, f) => {
            w.u8(3);
            put_expr(w, c);
            put_stmts(w, t);
            put_stmts(w, f);
        }
        Stmt::While(c, b) => {
            w.u8(4);
            put_expr(w, c);
            put_stmts(w, b);
        }
    }
}

fn get_stmt(r: &mut Reader<'_>) -> Result<Stmt, DecodeError> {
    Ok(match r.u8()? {
        0 => Stmt::Decl(r.str()?, get_expr(r)?),
        1 => Stmt::Assign(r.str()?, get_expr(r)?),
        2 => Stmt::Expr(get_expr(r)?),
        3 => {
            let c = get_expr(r)?;
            let t = get_stmts(r)?;
            let f = get_stmts(r)?;
            Stmt::If(c, t, f)
        }
        4 => {
            let c = get_expr(r)?;
            let b = get_stmts(r)?;
            Stmt::While(c, b)
        }
        t => return err(format!("bad stmt tag {t}")),
    })
}

// ---------------------------------------------------------------------
// Program IR (prophet-estimator)
// ---------------------------------------------------------------------

fn put_mpi_op(w: &mut Writer, op: &MpiOp) {
    match op {
        MpiOp::Send { dest, size, tag } => {
            w.u8(0);
            put_expr(w, dest);
            put_expr(w, size);
            w.i64(*tag);
        }
        MpiOp::Recv { src, tag } => {
            w.u8(1);
            put_expr(w, src);
            w.i64(*tag);
        }
        MpiOp::Broadcast { root, size } => {
            w.u8(2);
            put_expr(w, root);
            put_expr(w, size);
        }
        MpiOp::Reduce { root, size } => {
            w.u8(3);
            put_expr(w, root);
            put_expr(w, size);
        }
        MpiOp::Allreduce { size } => {
            w.u8(4);
            put_expr(w, size);
        }
        MpiOp::Scatter { root, size } => {
            w.u8(5);
            put_expr(w, root);
            put_expr(w, size);
        }
        MpiOp::Gather { root, size } => {
            w.u8(6);
            put_expr(w, root);
            put_expr(w, size);
        }
        MpiOp::Barrier => w.u8(7),
    }
}

fn get_mpi_op(r: &mut Reader<'_>) -> Result<MpiOp, DecodeError> {
    Ok(match r.u8()? {
        0 => MpiOp::Send {
            dest: get_expr(r)?,
            size: get_expr(r)?,
            tag: r.i64()?,
        },
        1 => MpiOp::Recv {
            src: get_expr(r)?,
            tag: r.i64()?,
        },
        2 => MpiOp::Broadcast {
            root: get_expr(r)?,
            size: get_expr(r)?,
        },
        3 => MpiOp::Reduce {
            root: get_expr(r)?,
            size: get_expr(r)?,
        },
        4 => MpiOp::Allreduce { size: get_expr(r)? },
        5 => MpiOp::Scatter {
            root: get_expr(r)?,
            size: get_expr(r)?,
        },
        6 => MpiOp::Gather {
            root: get_expr(r)?,
            size: get_expr(r)?,
        },
        7 => MpiOp::Barrier,
        t => return err(format!("bad mpi-op tag {t}")),
    })
}

fn put_step(w: &mut Writer, s: &Step) {
    match s {
        Step::Exec { name, cost, code } => {
            w.u8(0);
            w.str(name);
            put_opt_expr(w, cost);
            put_stmts(w, code);
        }
        Step::Seq(items) => {
            w.u8(1);
            w.count(items.len());
            for s in items {
                put_step(w, s);
            }
        }
        Step::Branch(arms) => {
            w.u8(2);
            w.count(arms.len());
            for (guard, step) in arms {
                put_opt_expr(w, guard);
                put_step(w, step);
            }
        }
        Step::Parallel(arms) => {
            w.u8(3);
            w.count(arms.len());
            for s in arms {
                put_step(w, s);
            }
        }
        Step::Composite { name, body } => {
            w.u8(4);
            w.str(name);
            put_step(w, body);
        }
        Step::Loop {
            name,
            count,
            var,
            body,
        } => {
            w.u8(5);
            w.str(name);
            put_expr(w, count);
            match var {
                None => w.u8(0),
                Some(v) => {
                    w.u8(1);
                    w.str(v);
                }
            }
            put_step(w, body);
        }
        Step::ParallelRegion {
            name,
            threads,
            body,
        } => {
            w.u8(6);
            w.str(name);
            put_opt_expr(w, threads);
            put_step(w, body);
        }
        Step::Critical { name, lock, body } => {
            w.u8(7);
            w.str(name);
            w.str(lock);
            put_step(w, body);
        }
        Step::Mpi { name, op } => {
            w.u8(8);
            w.str(name);
            put_mpi_op(w, op);
        }
        Step::Nop => w.u8(9),
    }
}

fn get_step(r: &mut Reader<'_>) -> Result<Step, DecodeError> {
    Ok(match r.u8()? {
        0 => Step::Exec {
            name: r.str()?,
            cost: get_opt_expr(r)?,
            code: get_stmts(r)?,
        },
        1 => {
            let n = r.count(1)?;
            let mut items = Vec::with_capacity(cap(n));
            for _ in 0..n {
                items.push(get_step(r)?);
            }
            Step::Seq(items)
        }
        2 => {
            let n = r.count(2)?;
            let mut arms = Vec::with_capacity(cap(n));
            for _ in 0..n {
                let guard = get_opt_expr(r)?;
                let step = get_step(r)?;
                arms.push((guard, step));
            }
            Step::Branch(arms)
        }
        3 => {
            let n = r.count(1)?;
            let mut arms = Vec::with_capacity(cap(n));
            for _ in 0..n {
                arms.push(get_step(r)?);
            }
            Step::Parallel(arms)
        }
        4 => Step::Composite {
            name: r.str()?,
            body: Box::new(get_step(r)?),
        },
        5 => {
            let name = r.str()?;
            let count = get_expr(r)?;
            let var = match r.u8()? {
                0 => None,
                1 => Some(r.str()?),
                t => return err(format!("bad option tag {t}")),
            };
            Step::Loop {
                name,
                count,
                var,
                body: Box::new(get_step(r)?),
            }
        }
        6 => Step::ParallelRegion {
            name: r.str()?,
            threads: get_opt_expr(r)?,
            body: Box::new(get_step(r)?),
        },
        7 => Step::Critical {
            name: r.str()?,
            lock: r.str()?,
            body: Box::new(get_step(r)?),
        },
        8 => Step::Mpi {
            name: r.str()?,
            op: get_mpi_op(r)?,
        },
        9 => Step::Nop,
        t => return err(format!("bad step tag {t}")),
    })
}

/// Encode a [`Program`] into `w`.
pub fn put_program(w: &mut Writer, p: &Program) {
    w.str(&p.name);
    w.count(p.globals.len());
    for (name, v) in &p.globals {
        w.str(name);
        w.f64(*v);
    }
    w.count(p.locals.len());
    for (name, v) in &p.locals {
        w.str(name);
        w.f64(*v);
    }
    w.count(p.functions.len());
    for f in &p.functions {
        w.str(&f.name);
        w.count(f.params.len());
        for param in &f.params {
            w.str(param);
        }
        put_expr(w, &f.body);
    }
    put_step(w, &p.body);
}

/// Decode a [`Program`] from `r`.
pub fn get_program(r: &mut Reader<'_>) -> Result<Program, DecodeError> {
    let mut p = Program::new(r.str()?);
    let n = r.count(12)?;
    for _ in 0..n {
        p.globals.push((r.str()?, r.f64()?));
    }
    let n = r.count(12)?;
    for _ in 0..n {
        p.locals.push((r.str()?, r.f64()?));
    }
    let n = r.count(10)?;
    for _ in 0..n {
        let name = r.str()?;
        let pc = r.count(4)?;
        let mut params = Vec::with_capacity(cap(pc));
        for _ in 0..pc {
            params.push(r.str()?);
        }
        let body = get_expr(r)?;
        p.functions.push(FunctionDef::new(name, params, body));
    }
    p.body = get_step(r)?;
    Ok(p)
}

// ---------------------------------------------------------------------
// Diagnostics + C++ unit
// ---------------------------------------------------------------------

/// Encode the compile diagnostics into `w`.
pub fn put_diagnostics(w: &mut Writer, diags: &[Diagnostic]) {
    w.count(diags.len());
    for d in diags {
        w.str(&d.rule);
        w.u8(match d.severity {
            Severity::Error => 0,
            Severity::Warning => 1,
        });
        w.str(&d.location);
        w.str(&d.message);
    }
}

/// Decode the compile diagnostics from `r`.
pub fn get_diagnostics(r: &mut Reader<'_>) -> Result<Vec<Diagnostic>, DecodeError> {
    let n = r.count(13)?;
    let mut out = Vec::with_capacity(cap(n));
    for _ in 0..n {
        let rule = r.str()?;
        let severity = match r.u8()? {
            0 => Severity::Error,
            1 => Severity::Warning,
            t => return err(format!("bad severity tag {t}")),
        };
        out.push(Diagnostic {
            rule,
            severity,
            location: r.str()?,
            message: r.str()?,
        });
    }
    Ok(out)
}

/// Encode the generated C++ PMP into `w`.
pub fn put_cpp(w: &mut Writer, cpp: &CppUnit) {
    w.str(&cpp.model_name);
    w.str(&cpp.globals);
    w.str(&cpp.cost_functions);
    w.str(&cpp.program);
}

/// Decode the generated C++ PMP from `r`.
pub fn get_cpp(r: &mut Reader<'_>) -> Result<CppUnit, DecodeError> {
    Ok(CppUnit {
        model_name: r.str()?,
        globals: r.str()?,
        cost_functions: r.str()?,
        program: r.str()?,
    })
}

// ---------------------------------------------------------------------
// Elaboration entries (pre-flattened op lists)
// ---------------------------------------------------------------------

fn put_prim_op(w: &mut Writer, op: &PrimOp) {
    match op {
        PrimOp::Enter(name) => {
            w.u8(0);
            w.str(name);
        }
        PrimOp::Exit(name) => {
            w.u8(1);
            w.str(name);
        }
        PrimOp::Compute { element, seconds } => {
            w.u8(2);
            w.str(element);
            w.f64(*seconds);
        }
        PrimOp::SendTo {
            element,
            dest,
            bytes,
            tag,
        } => {
            w.u8(3);
            w.str(element);
            w.usize(*dest);
            w.u64(*bytes);
            w.i64(*tag);
        }
        PrimOp::RecvFrom {
            element,
            src,
            tag,
            bytes,
        } => {
            w.u8(4);
            w.str(element);
            w.usize(*src);
            w.i64(*tag);
            w.u64(*bytes);
        }
        PrimOp::Wait { element, seconds } => {
            w.u8(5);
            w.str(element);
            w.f64(*seconds);
        }
        PrimOp::Threads { element, arms } => {
            w.u8(6);
            w.str(element);
            w.count(arms.len());
            for arm in arms {
                w.count(arm.len());
                for op in arm {
                    put_prim_op(w, op);
                }
            }
        }
        PrimOp::Lock(id) => {
            w.u8(7);
            w.usize(*id);
        }
        PrimOp::Unlock(id) => {
            w.u8(8);
            w.usize(*id);
        }
    }
}

fn get_prim_op(r: &mut Reader<'_>) -> Result<PrimOp, DecodeError> {
    Ok(match r.u8()? {
        0 => PrimOp::Enter(r.str()?),
        1 => PrimOp::Exit(r.str()?),
        2 => PrimOp::Compute {
            element: r.str()?,
            seconds: r.f64()?,
        },
        3 => PrimOp::SendTo {
            element: r.str()?,
            dest: r.usize()?,
            bytes: r.u64()?,
            tag: r.i64()?,
        },
        4 => PrimOp::RecvFrom {
            element: r.str()?,
            src: r.usize()?,
            tag: r.i64()?,
            bytes: r.u64()?,
        },
        5 => PrimOp::Wait {
            element: r.str()?,
            seconds: r.f64()?,
        },
        6 => {
            let element = r.str()?;
            let n = r.count(4)?;
            let mut arms = Vec::with_capacity(cap(n));
            for _ in 0..n {
                let len = r.count(5)?;
                let mut arm = Vec::with_capacity(cap(len));
                for _ in 0..len {
                    arm.push(get_prim_op(r)?);
                }
                arms.push(arm);
            }
            PrimOp::Threads { element, arms }
        }
        7 => PrimOp::Lock(r.usize()?),
        8 => PrimOp::Unlock(r.usize()?),
        t => return err(format!("bad prim-op tag {t}")),
    })
}

/// Encode one pre-flattened elaboration entry into `w`.
pub fn put_elab_entry(w: &mut Writer, e: &ElabEntry) {
    let sp = e.sp;
    w.usize(sp.nodes);
    w.usize(sp.cpus_per_node);
    w.usize(sp.processes);
    w.usize(sp.threads_per_process);
    w.f64(e.comm.intra_latency);
    w.f64(e.comm.intra_bandwidth);
    w.f64(e.comm.inter_latency);
    w.f64(e.comm.inter_bandwidth);
    w.f64(e.comm.send_overhead);
    w.usize(e.limits.max_ops);
    w.u64(e.limits.max_loop_iterations);
    w.count(e.ops.len());
    for rank in e.ops.iter() {
        w.count(rank.len());
        for op in rank.iter() {
            put_prim_op(w, op);
        }
    }
}

/// Decode one pre-flattened elaboration entry from `r`.
pub fn get_elab_entry(r: &mut Reader<'_>) -> Result<ElabEntry, DecodeError> {
    let sp = SystemParams {
        nodes: r.usize()?,
        cpus_per_node: r.usize()?,
        processes: r.usize()?,
        threads_per_process: r.usize()?,
    };
    let comm = CommParams {
        intra_latency: r.f64()?,
        intra_bandwidth: r.f64()?,
        inter_latency: r.f64()?,
        inter_bandwidth: r.f64()?,
        send_overhead: r.f64()?,
    };
    let limits = FlattenLimits {
        max_ops: r.usize()?,
        max_loop_iterations: r.u64()?,
    };
    let n = r.count(4)?;
    let mut ranks: Vec<Arc<[PrimOp]>> = Vec::with_capacity(cap(n));
    for _ in 0..n {
        let len = r.count(5)?;
        let mut ops = Vec::with_capacity(cap(len));
        for _ in 0..len {
            ops.push(get_prim_op(r)?);
        }
        ranks.push(ops.into());
    }
    let ops: RankOps = ranks.into();
    Ok(ElabEntry {
        sp,
        comm,
        limits,
        ops,
    })
}

/// Encode a string (used by the store for the model/MCF XML sections).
pub fn put_str(w: &mut Writer, s: &str) {
    w.str(s);
}

/// Decode a string.
pub fn get_str(r: &mut Reader<'_>) -> Result<String, DecodeError> {
    r.str()
}

/// Encode a collection count.
pub fn put_count(w: &mut Writer, n: usize) {
    w.count(n);
}

/// Decode a collection count, validated against `min_item_bytes` per
/// element of remaining payload.
pub fn get_count(r: &mut Reader<'_>, min_item_bytes: usize) -> Result<usize, DecodeError> {
    r.count(min_item_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_expr::{parse_expression, parse_statements};

    fn roundtrip_program(p: &Program) -> Program {
        let mut w = Writer::new();
        put_program(&mut w, p);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_program(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        back
    }

    #[test]
    fn program_roundtrips_bit_for_bit() {
        let mut p = Program::new("codec");
        p.globals.push(("GV".into(), 2.5));
        p.locals.push(("LV".into(), -0.0));
        p.functions
            .push(FunctionDef::parse("FA1", &["x"], "x * 2 + GV").unwrap());
        p.body = Step::Seq(vec![
            Step::Exec {
                name: "A".into(),
                cost: Some(parse_expression("FA1(P) ? 1 : 2 ^ pid").unwrap()),
                code: parse_statements("var t = 1; while (t < 3) { t = t + 1; } GV = t;").unwrap(),
            },
            Step::Branch(vec![
                (
                    Some(parse_expression("!(GV > 0) && true").unwrap()),
                    Step::Nop,
                ),
                (
                    None,
                    Step::Composite {
                        name: "C".into(),
                        body: Box::new(Step::Mpi {
                            name: "x".into(),
                            op: MpiOp::Send {
                                dest: parse_expression("pid + 1").unwrap(),
                                size: parse_expression("4096").unwrap(),
                                tag: -7,
                            },
                        }),
                    },
                ),
            ]),
            Step::Loop {
                name: "L".into(),
                count: parse_expression("10").unwrap(),
                var: Some("i".into()),
                body: Box::new(Step::ParallelRegion {
                    name: "omp".into(),
                    threads: None,
                    body: Box::new(Step::Critical {
                        name: "crit".into(),
                        lock: "l0".into(),
                        body: Box::new(Step::Exec {
                            name: "B".into(),
                            cost: None,
                            code: vec![],
                        }),
                    }),
                }),
            },
            Step::Parallel(vec![Step::Mpi {
                name: "bar".into(),
                op: MpiOp::Barrier,
            }]),
        ]);
        assert_eq!(roundtrip_program(&p), p);
    }

    #[test]
    fn every_mpi_op_roundtrips() {
        let e = || parse_expression("P - 1").unwrap();
        for op in [
            MpiOp::Send {
                dest: e(),
                size: e(),
                tag: 3,
            },
            MpiOp::Recv { src: e(), tag: 3 },
            MpiOp::Broadcast {
                root: e(),
                size: e(),
            },
            MpiOp::Reduce {
                root: e(),
                size: e(),
            },
            MpiOp::Allreduce { size: e() },
            MpiOp::Scatter {
                root: e(),
                size: e(),
            },
            MpiOp::Gather {
                root: e(),
                size: e(),
            },
            MpiOp::Barrier,
        ] {
            let mut p = Program::new("op");
            p.body = Step::Mpi {
                name: "m".into(),
                op,
            };
            assert_eq!(roundtrip_program(&p), p);
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut p = Program::new("trunc");
        p.body = Step::Exec {
            name: "A".into(),
            cost: Some(parse_expression("1 + 2 * 3").unwrap()),
            code: vec![],
        };
        let mut w = Writer::new();
        put_program(&mut w, &p);
        let bytes = w.into_bytes();
        // The encoding is self-delimiting and the decode path depends
        // only on bytes already read, so every strict prefix must fail
        // cleanly (never panic, never succeed).
        for cut in 0..bytes.len() {
            assert!(
                get_program(&mut Reader::new(&bytes[..cut])).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn absurd_counts_are_rejected_before_allocation() {
        // A count claiming u32::MAX elements with 5 bytes behind it.
        let mut w = Writer::new();
        w.u32(u32::MAX);
        w.buf.extend_from_slice(&[0u8; 5]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.count(1).is_err());
    }

    #[test]
    fn bad_tags_are_decode_errors() {
        let mut w = Writer::new();
        w.u8(200); // no such step tag
        let bytes = w.into_bytes();
        assert!(get_step(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn elab_entry_roundtrips() {
        use prophet_estimator::flatten_all;
        use prophet_machine::MachineModel;
        let mut p = Program::new("elab");
        p.body = Step::Exec {
            name: "A".into(),
            cost: Some(parse_expression("1 + pid").unwrap()),
            code: vec![],
        };
        let sp = SystemParams::flat_mpi(3, 1);
        let comm = CommParams::default();
        let machine = MachineModel::new(sp, comm).unwrap();
        let limits = FlattenLimits::default();
        let ops = flatten_all(&p, &machine, limits).unwrap();
        let entry = ElabEntry {
            sp,
            comm,
            limits,
            ops,
        };
        let mut w = Writer::new();
        put_elab_entry(&mut w, &entry);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_elab_entry(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.sp, entry.sp);
        assert_eq!(back.comm, entry.comm);
        assert_eq!(back.limits, entry.limits);
        assert_eq!(back.ops.len(), entry.ops.len());
        for (a, b) in back.ops.iter().zip(entry.ops.iter()) {
            assert_eq!(&a[..], &b[..]);
        }
    }
}
