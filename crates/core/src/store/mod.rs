//! The persistent compiled-artifact store: "compile once" across
//! process restarts, not just within one.
//!
//! The paper's premise is that a performance model is compiled once and
//! interrogated many times. [`crate::Session`] delivers that within a
//! process and the serve layer's session pool across connections; this
//! module extends it across *deployments*: a compiled session — check
//! diagnostics, generated C++ PMP, executable
//! [`Program`](prophet_estimator::Program) IR, and
//! (optionally) pre-flattened per-rank op lists — serializes to a
//! content-addressed file, and any later process can warm-start from it,
//! skipping check, `to_cpp`, and `to_program` entirely.
//!
//! * **Addressing.** [`ArtifactKey`] is the same `(model, MCF)` content
//!   digest pair the serve-layer session pool keys on: FNV-1a over the
//!   *canonical* XML serializations ([`canonical_model_xml`] — one
//!   serialize→parse→serialize fixed point — and `McfConfig::to_xml`
//!   with sorted rule ids). Two spellings of the same model share one
//!   artifact, on disk exactly as in memory.
//! * **Format.** One file per key
//!   (`pp-<model digest>-<mcf digest>.bin`): a 4-byte magic, a
//!   [`FORMAT_VERSION`], the payload length, the payload (see
//!   [`codec`]), and an FNV-1a checksum of the payload. Writes go
//!   through a temp file + atomic rename, so a reader never observes a
//!   half-written entry.
//! * **Corruption and staleness are misses, never errors.** A missing
//!   file, short file, bad magic, stale version, checksum mismatch,
//!   undecodable payload, or a payload whose recomputed content key
//!   disagrees with its file name all read back as `None` — and the
//!   offending file is evicted so the next compile re-writes it
//!   cleanly. [`StoreStats::evictions`] counts those; nothing in the
//!   load path panics or propagates an error to a request.
//! * **Elaborations ride along where cheap.** Saving snapshots the
//!   session's [`ElaborationCache`](crate::ElaborationCache); entries up
//!   to [`MAX_PERSISTED_ENTRY_OPS`] primitive ops are embedded and
//!   re-seeded on load, so a warm-started session's first estimate for
//!   a pre-warmed SP point skips flattening too. Larger elaborations
//!   are dropped at save time (they are exactly the ones that are cheap
//!   to keep *relative to recomputing* only when I/O is free — which it
//!   is not) and re-flatten on demand.
//!
//! The CLI builds stores offline with `prophet warm --store DIR`, and
//! `prophet serve --store DIR` warm-starts its pool from one at boot;
//! a shared store directory is also the natural substrate for sharding
//! predictions across processes (the ROADMAP's scale-out item) — every
//! shard key is already a stable content digest.

pub mod codec;

use crate::error::Error;
use crate::session::Session;
use codec::{DecodeError, Reader, Writer};
use prophet_check::McfConfig;
use prophet_uml::Model;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk format version. Bump on any payload or header change: a
/// version mismatch reads as a clean miss (plus eviction), never as a
/// misdecode.
pub const FORMAT_VERSION: u32 = 1;

/// File magic: "Prophet Persistent Artifact Format".
pub const MAGIC: [u8; 4] = *b"PPAF";

/// Metrics-checkpoint file magic: "Prophet Persistent Metrics
/// Checkpoint".
pub const METRICS_MAGIC: [u8; 4] = *b"PPMC";

/// File-name prefix of the sidecar metrics checkpoints inside a store
/// directory (see [`ArtifactStore::save_metrics`]). Checkpoints are
/// per-instance — shards sharing one artifact store must not clobber
/// each other's lifetime counters — so the full name is
/// `pp-metrics-<instance>.ckpt`.
pub const METRICS_PREFIX: &str = "pp-metrics";

/// Elaboration entries larger than this many primitive ops (summed over
/// all ranks, top level) are not persisted — re-flattening them is
/// cheaper than reading them back.
pub const MAX_PERSISTED_ENTRY_OPS: usize = 1 << 16;

/// Suffix of the per-entry access-stamp sidecar (`pp-<m>-<mcf>.atime`).
///
/// Filesystem atime is useless for LRU purposes (`relatime`/`noatime`
/// mounts update it rarely or never), so the store keeps its own: every
/// successful load or save best-effort rewrites a tiny sidecar holding
/// the access time as decimal milliseconds since the Unix epoch.
/// [`ArtifactStore::gc`] orders entries by that stamp, falling back to
/// the entry file's mtime when no sidecar exists (e.g. stores written
/// by older builds). The suffix deliberately does not match the `.bin`
/// artifact pattern, so `keys()` and warm-start never see sidecars.
pub const ATIME_SUFFIX: &str = ".atime";

/// Content key of one compiled artifact — the `(model, MCF)` digest
/// pair shared with the serve layer's session pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey {
    /// FNV-1a digest of the canonical model XML.
    pub model: u64,
    /// FNV-1a digest of the canonical MCF XML.
    pub mcf: u64,
}

impl ArtifactKey {
    /// Key for a `(model, mcf)` pair, by canonical serialization.
    pub fn of(model: &Model, mcf: &McfConfig) -> Self {
        Self {
            model: fnv1a(canonical_model_xml(model).as_bytes()),
            mcf: fnv1a(mcf.to_xml().as_bytes()),
        }
    }

    /// The store file name of this key.
    fn file_name(&self) -> String {
        format!("pp-{:016x}-{:016x}.bin", self.model, self.mcf)
    }

    /// Parse a store file name back into its key.
    fn from_file_name(name: &str) -> Option<Self> {
        let rest = name.strip_prefix("pp-")?.strip_suffix(".bin")?;
        let (model, mcf) = rest.split_once('-')?;
        if model.len() != 16 || mcf.len() != 16 {
            return None;
        }
        Some(Self {
            model: u64::from_str_radix(model, 16).ok()?,
            mcf: u64::from_str_radix(mcf, 16).ok()?,
        })
    }
}

/// The canonical serialization of a model: one serialize→parse→serialize
/// roundtrip. The XMI parser re-assigns element ids in document order,
/// so a builder-constructed model and its parsed round trip serialize
/// with different (isomorphic) ids; after one parse the ids *are*
/// document-ordered and the serialization is a fixed point — pinned by
/// the serve pool's `canonicalization_is_a_fixed_point` test for every
/// demo model.
pub fn canonical_model_xml(model: &Model) -> String {
    let first = prophet_uml::xmi::model_to_xml(model);
    match prophet_uml::xmi::model_from_xml(&first) {
        Ok(reparsed) => prophet_uml::xmi::model_to_xml(&reparsed),
        // Unserializable models can't happen for checked input, but a
        // digest must never fail: fall back to the raw serialization.
        Err(_) => first,
    }
}

/// 64-bit FNV-1a (the digest family shared with `op_digest` and the
/// elaboration cache's content keys).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Counter snapshot of an [`ArtifactStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Loads served from a valid on-disk artifact.
    pub disk_hits: u64,
    /// Loads that found no usable artifact (absent, corrupt, or stale).
    pub disk_misses: u64,
    /// Artifacts written (compile write-back or `prophet warm`).
    pub writes: u64,
    /// Writes that failed at the filesystem (the compile still
    /// succeeds; the artifact is just not persisted).
    pub write_errors: u64,
    /// Corrupt or stale-version entries deleted on load.
    pub evictions: u64,
}

/// What one [`ArtifactStore::gc`] pass did, for operator output
/// (`prophet store gc`) and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Artifact entries examined.
    pub entries_scanned: usize,
    /// Their summed on-disk size before the pass.
    pub bytes_scanned: u64,
    /// Entries deleted because they failed header/checksum validation —
    /// always reclaimable, whatever the budget.
    pub corrupt_evicted: usize,
    /// Valid entries deleted least-recently-used-first to meet the
    /// budget.
    pub lru_evicted: usize,
    /// Bytes freed by both eviction classes.
    pub bytes_reclaimed: u64,
    /// Entries left in the store.
    pub entries_retained: usize,
    /// Their summed size (≤ the budget, barring concurrent writers).
    pub bytes_retained: u64,
}

/// Milliseconds since the Unix epoch, saturating at 0 for pre-epoch
/// clocks.
fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// A file's mtime as milliseconds since the Unix epoch (0 when the
/// filesystem cannot say).
fn mtime_millis(meta: &std::fs::Metadata) -> u64 {
    meta.modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Cheap structural validation of an artifact byte image: magic,
/// version, length field, payload checksum — everything
/// [`decode_session`] checks before it starts parsing XML. GC uses
/// this instead of the full decode so a sweep over a large store stays
/// I/O-bound.
fn artifact_header_ok(bytes: &[u8]) -> bool {
    if bytes.len() < 16 + 8 || bytes[0..4] != MAGIC {
        return false;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return false;
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    if bytes.len() != 16 + payload_len + 8 {
        return false;
    }
    let payload = &bytes[16..16 + payload_len];
    let checksum = u64::from_le_bytes(bytes[16 + payload_len..].try_into().unwrap());
    fnv1a(payload) == checksum
}

/// A content-addressed on-disk store of compiled sessions.
///
/// Thread-safe by `&self`: counters are atomics, writes are atomic
/// renames, and loads never mutate an entry (they may *delete* a
/// corrupt one, which concurrent readers observe as a miss).
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    evictions: AtomicU64,
}

impl ArtifactStore {
    /// Open (creating if needed) a store rooted at `dir`, probing that
    /// the directory is actually writable so `serve`/`warm` fail at
    /// startup — with a plain I/O error — rather than silently serving
    /// a store that can never persist anything.
    ///
    /// # Errors
    /// The underlying I/O error when `dir` cannot be created (e.g. the
    /// path names an existing file) or written to.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let probe = dir.join(format!(".probe-{}", std::process::id()));
        std::fs::write(&probe, b"ok")?;
        std::fs::remove_file(&probe)?;
        Ok(Self {
            dir,
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file an artifact for `key` lives in (whether or not one
    /// currently does) — exposed for tests and operational tooling.
    pub fn entry_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Every key with an artifact file currently present, sorted.
    /// Presence does not imply validity — a later
    /// [`load_session`](Self::load_session) may still reject the entry.
    pub fn keys(&self) -> Vec<ArtifactKey> {
        let mut keys: Vec<ArtifactKey> = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .filter_map(|e| ArtifactKey::from_file_name(&e.file_name().to_string_lossy()))
                .collect(),
            Err(_) => Vec::new(),
        };
        keys.sort();
        keys
    }

    /// Load the compiled session stored under `key`, or `None` (a
    /// *miss*) when no usable artifact exists. Corrupt and
    /// stale-version entries are evicted on the way out so the next
    /// compile re-writes them; the session's elaboration cache comes
    /// back pre-seeded with every persisted elaboration.
    pub fn load_session(&self, key: ArtifactKey) -> Option<Session> {
        let path = self.entry_path(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(_) => {
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_session(&bytes, key) {
            Ok(session) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.touch(key);
                Some(session)
            }
            Err(_) => {
                // Corrupt or stale: delete so the slot re-fills with a
                // current-format artifact on the next write-back — but
                // only while the file still looks like the bytes that
                // failed to decode. A concurrent writer may have just
                // renamed a fresh, valid artifact into place (shared
                // store directories are supported); deleting by length
                // comparison narrows that window to same-length
                // replacements, which the next load simply evicts
                // again.
                let unchanged = std::fs::metadata(&path)
                    .map(|m| m.len() == bytes.len() as u64)
                    .unwrap_or(false);
                if unchanged {
                    let _ = std::fs::remove_file(&path);
                }
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Persist `session` (artifacts + cheap elaborations) under its
    /// content key, atomically. Failures are counted and returned, but
    /// callers on the serve path deliberately ignore them — a store
    /// that cannot write degrades to compile-per-boot, it does not take
    /// requests down.
    ///
    /// # Errors
    /// The underlying I/O error when the temp file cannot be written or
    /// renamed into place.
    pub fn save_session(&self, session: &Session) -> io::Result<ArtifactKey> {
        let key = ArtifactKey::of(session.model(), session.mcf());
        let bytes = encode_session(session);
        let path = self.entry_path(key);
        // Unique per call (pid + process-wide counter): two threads
        // saving the same key concurrently — e.g. the pool's bypass
        // path under capacity pressure — must not share a temp file,
        // or the atomic-rename guarantee dies with it.
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = self.dir.join(format!(
            "{}.tmp-{}-{}",
            key.file_name(),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
        match result {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                self.touch(key);
                Ok(key)
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Path of the access-stamp sidecar for `key` (see
    /// [`ATIME_SUFFIX`]) — exposed for tests and operational tooling
    /// that needs to pin or inspect an entry's recency.
    pub fn access_stamp_path(&self, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!(
            "pp-{:016x}-{:016x}{ATIME_SUFFIX}",
            key.model, key.mcf
        ))
    }

    /// Best-effort: record that `key` was used now. A failed write
    /// (read-only directory, ENOSPC) costs nothing but GC accuracy —
    /// the entry falls back to its file mtime.
    fn touch(&self, key: ArtifactKey) {
        let _ = std::fs::write(self.access_stamp_path(key), now_millis().to_string());
    }

    /// When `key` was last used, in epoch milliseconds: its sidecar
    /// stamp if one parses, else the artifact file's mtime, else 0
    /// (absent entries sort oldest, which is what GC wants).
    fn last_used_millis(&self, key: ArtifactKey) -> u64 {
        if let Some(stamp) = std::fs::read_to_string(self.access_stamp_path(key))
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            return stamp;
        }
        std::fs::metadata(self.entry_path(key))
            .map(|m| mtime_millis(&m))
            .unwrap_or(0)
    }

    /// Garbage-collect the store down to `max_bytes` of artifact data.
    ///
    /// Two eviction classes, in order:
    ///
    /// 1. **Corrupt entries** — anything failing the header/checksum
    ///    validation is deleted regardless of budget (it can only ever
    ///    read back as a miss, so the bytes are pure waste);
    /// 2. **LRU** — while the remaining entries exceed the budget, the
    ///    least-recently-used one (by access stamp, see
    ///    [`ATIME_SUFFIX`]) is deleted, strictly oldest-first.
    ///
    /// Concurrent use is safe: entries that change between the scan and
    /// their deletion (a serve write-back renaming a fresh artifact
    /// into place, a load refreshing the stamp) are skipped rather than
    /// deleted, mirroring `load_session`'s eviction guard — GC may then
    /// leave the store slightly over budget, never delete fresh work.
    /// Orphaned stamp sidecars (entry already gone) are swept on the
    /// way out.
    pub fn gc(&self, max_bytes: u64) -> GcReport {
        let mut report = GcReport::default();
        let mut live: Vec<(u64, ArtifactKey, u64)> = Vec::new(); // (last_used, key, size)
        for key in self.keys() {
            let path = self.entry_path(key);
            let Ok(bytes) = std::fs::read(&path) else {
                continue; // raced a deletion; nothing to account
            };
            report.entries_scanned += 1;
            report.bytes_scanned += bytes.len() as u64;
            if !artifact_header_ok(&bytes) {
                // Same concurrent-writer guard as load_session: only
                // delete while the file still looks like the bytes
                // that failed validation.
                let unchanged = std::fs::metadata(&path)
                    .map(|m| m.len() == bytes.len() as u64)
                    .unwrap_or(false);
                if unchanged {
                    let _ = std::fs::remove_file(&path);
                    let _ = std::fs::remove_file(self.access_stamp_path(key));
                    report.corrupt_evicted += 1;
                    report.bytes_reclaimed += bytes.len() as u64;
                    continue;
                }
            }
            live.push((self.last_used_millis(key), key, bytes.len() as u64));
        }
        live.sort_unstable();
        let mut total: u64 = live.iter().map(|&(_, _, size)| size).sum();
        for &(seen_at, key, size) in &live {
            if total <= max_bytes {
                break;
            }
            // Skip entries used since the scan — eviction must never
            // race a concurrent load/write-back into deleting what
            // just became the *most* recently used entry.
            if self.last_used_millis(key) > seen_at {
                continue;
            }
            if std::fs::remove_file(self.entry_path(key)).is_ok() {
                let _ = std::fs::remove_file(self.access_stamp_path(key));
                report.lru_evicted += 1;
                report.bytes_reclaimed += size;
                total -= size;
            }
        }
        report.entries_retained =
            report.entries_scanned - report.corrupt_evicted - report.lru_evicted;
        report.bytes_retained = report.bytes_scanned - report.bytes_reclaimed;
        // Orphaned sidecars: stamps whose artifact is gone.
        if let Ok(entries) = std::fs::read_dir(&self.dir) {
            for entry in entries.filter_map(|e| e.ok()) {
                let name = entry.file_name().to_string_lossy().into_owned();
                let Some(stem) = name.strip_suffix(ATIME_SUFFIX) else {
                    continue;
                };
                if ArtifactKey::from_file_name(&format!("{stem}.bin"))
                    .is_some_and(|key| !self.entry_path(key).exists())
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        report
    }

    /// Path of one instance's sidecar metrics checkpoint. The name
    /// deliberately does not match the `pp-<digest>-<digest>.bin`
    /// artifact pattern, so [`keys`](Self::keys) and warm-start never
    /// see it. `instance` (typically the server's configured listen
    /// address) is sanitized to filename-safe characters; instances
    /// sharing a store directory therefore keep separate lifetime
    /// counters as long as their labels differ.
    pub fn metrics_path(&self, instance: &str) -> PathBuf {
        let safe: String = instance
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '_' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        self.dir.join(format!("{METRICS_PREFIX}-{safe}.ckpt"))
    }

    /// Atomically persist a flat `name -> value` counter snapshot (the
    /// serve layer's lifetime request counters). Same temp-file +
    /// rename discipline as artifacts; failures are the caller's to
    /// ignore — a checkpoint that cannot write degrades to
    /// metrics-per-boot, it does not take requests down.
    ///
    /// Checkpoint writes are *not* counted in [`StoreStats::writes`]:
    /// those counters pin the compile-write-back contract in tests and
    /// a periodic background write would drift them.
    ///
    /// # Errors
    /// The underlying I/O error when the temp file cannot be written
    /// or renamed into place.
    pub fn save_metrics(&self, instance: &str, counters: &[(String, u64)]) -> io::Result<()> {
        let bytes = encode_metrics(counters);
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = self.metrics_path(instance);
        let tmp = path.with_extension(format!(
            "ckpt.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let result = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Load the last metrics checkpoint, or `None` when absent or
    /// unusable. Mirrors the artifact corruption contract: a corrupt
    /// checkpoint is deleted and read as a clean miss — counters
    /// restart from zero rather than from garbage.
    pub fn load_metrics(&self, instance: &str) -> Option<Vec<(String, u64)>> {
        let path = self.metrics_path(instance);
        let bytes = std::fs::read(&path).ok()?;
        match decode_metrics(&bytes) {
            Ok(counters) => Some(counters),
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }
}

impl Session {
    /// [`Session::compile`] with an optional [`ArtifactStore`]: a store
    /// hit rebuilds the session from disk — skipping check, `to_cpp`
    /// and `to_program` entirely — and a miss compiles, then writes the
    /// artifact back for the next process.
    ///
    /// Write-back failures are swallowed (and counted in
    /// [`StoreStats::write_errors`]): persistence is an accelerator,
    /// not a correctness dependency.
    ///
    /// # Errors
    /// Exactly [`Session::compile`]'s errors; the store can only turn a
    /// success path faster, never a failure path different.
    pub fn compile_stored(
        model: Model,
        mcf: McfConfig,
        store: Option<&ArtifactStore>,
    ) -> Result<Self, Error> {
        let Some(store) = store else {
            return Self::compile(model, mcf);
        };
        let key = ArtifactKey::of(&model, &mcf);
        if let Some(session) = store.load_session(key) {
            return Ok(session);
        }
        let session = Self::compile(model, mcf)?;
        let _ = store.save_session(&session);
        Ok(session)
    }
}

// ---------------------------------------------------------------------
// Metrics checkpoint encode / decode
// ---------------------------------------------------------------------

/// Serialize a counter snapshot with the same header discipline as
/// artifacts: magic + version + payload length + payload + FNV-1a
/// checksum. The payload is a count followed by length-prefixed name
/// bytes and a little-endian value per counter.
fn encode_metrics(counters: &[(String, u64)]) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(counters.len() as u64).to_le_bytes());
    for (name, value) in counters {
        payload.extend_from_slice(&(name.len() as u64).to_le_bytes());
        payload.extend_from_slice(name.as_bytes());
        payload.extend_from_slice(&value.to_le_bytes());
    }
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&METRICS_MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

/// Decode and verify a metrics checkpoint; every failure mode is a
/// [`DecodeError`] the caller treats as a miss.
fn decode_metrics(bytes: &[u8]) -> Result<Vec<(String, u64)>, DecodeError> {
    let fail = |what: &str| Err(DecodeError(what.to_string()));
    if bytes.len() < 16 + 8 {
        return fail("shorter than header + checksum");
    }
    if bytes[0..4] != METRICS_MAGIC {
        return fail("bad magic");
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return fail("stale format version");
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    if bytes.len() != 16 + payload_len + 8 {
        return fail("length field disagrees with file size");
    }
    let payload = &bytes[16..16 + payload_len];
    let checksum = u64::from_le_bytes(bytes[16 + payload_len..].try_into().unwrap());
    if fnv1a(payload) != checksum {
        return fail("checksum mismatch");
    }

    fn take<'a>(payload: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], DecodeError> {
        if *at + n > payload.len() {
            return Err(DecodeError("truncated payload".to_string()));
        }
        let slice = &payload[*at..*at + n];
        *at += n;
        Ok(slice)
    }
    let mut at = 0usize;
    let count = u64::from_le_bytes(take(payload, &mut at, 8)?.try_into().unwrap()) as usize;
    // A corrupt count must not drive a huge preallocation.
    if count > payload.len() {
        return fail("counter count exceeds payload");
    }
    let mut counters = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u64::from_le_bytes(take(payload, &mut at, 8)?.try_into().unwrap()) as usize;
        if name_len > payload.len() {
            return fail("name length exceeds payload");
        }
        let name = String::from_utf8(take(payload, &mut at, name_len)?.to_vec())
            .map_err(|_| DecodeError("non-UTF-8 counter name".to_string()))?;
        let value = u64::from_le_bytes(take(payload, &mut at, 8)?.try_into().unwrap());
        counters.push((name, value));
    }
    if at != payload.len() {
        return fail("trailing bytes after counters");
    }
    Ok(counters)
}

// ---------------------------------------------------------------------
// Whole-artifact encode / decode
// ---------------------------------------------------------------------

/// Serialize a compiled session into the full artifact byte image
/// (header + payload + checksum).
fn encode_session(session: &Session) -> Vec<u8> {
    let mut w = Writer::new();
    codec::put_str(&mut w, &canonical_model_xml(session.model()));
    codec::put_str(&mut w, &session.mcf().to_xml());
    codec::put_diagnostics(&mut w, session.diagnostics());
    codec::put_cpp(&mut w, session.cpp());
    codec::put_program(&mut w, session.program());
    let entries: Vec<_> = session
        .elab_cache()
        .snapshot()
        .into_iter()
        .filter(|e| e.op_count() <= MAX_PERSISTED_ENTRY_OPS)
        .collect();
    codec::put_count(&mut w, entries.len());
    for entry in &entries {
        codec::put_elab_entry(&mut w, entry);
    }
    let payload = w.into_bytes();

    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    out
}

/// Decode and verify a full artifact byte image back into a session.
/// Every failure mode — short header, wrong magic, stale version,
/// length mismatch, checksum mismatch, payload misdecode, content-key
/// mismatch — is a [`DecodeError`] the caller treats as a miss.
fn decode_session(bytes: &[u8], expected: ArtifactKey) -> Result<Session, DecodeError> {
    let fail = |what: &str| Err(DecodeError(what.to_string()));
    if bytes.len() < 16 + 8 {
        return fail("shorter than header + checksum");
    }
    if bytes[0..4] != MAGIC {
        return fail("bad magic");
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return fail("stale format version");
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    if bytes.len() != 16 + payload_len + 8 {
        return fail("length field disagrees with file size");
    }
    let payload = &bytes[16..16 + payload_len];
    let checksum = u64::from_le_bytes(bytes[16 + payload_len..].try_into().unwrap());
    if fnv1a(payload) != checksum {
        return fail("checksum mismatch");
    }

    let mut r = Reader::new(payload);
    let model_xml = codec::get_str(&mut r)?;
    let mcf_xml = codec::get_str(&mut r)?;
    let diagnostics = codec::get_diagnostics(&mut r)?;
    let cpp = codec::get_cpp(&mut r)?;
    let program = codec::get_program(&mut r)?;
    let entry_count = codec::get_count(&mut r, 92)?;
    let mut entries = Vec::with_capacity(entry_count);
    for _ in 0..entry_count {
        entries.push(codec::get_elab_entry(&mut r)?);
    }
    r.finish()?;

    // The file name is trusted for *addressing* only; the content must
    // independently agree with it, or a renamed/substituted artifact
    // could impersonate another model. The store writes the *canonical*
    // spellings, so the digests recompute directly over the stored
    // bytes; the fixed-point checks below then pin that the stored
    // spelling really is the canonical serialization of what it parses
    // to (together equivalent to re-running `ArtifactKey::of`, without
    // paying its serialize→parse→serialize on every load).
    if fnv1a(model_xml.as_bytes()) != expected.model || fnv1a(mcf_xml.as_bytes()) != expected.mcf {
        return fail("content digest disagrees with the entry's key");
    }
    let model = prophet_uml::xmi::model_from_xml(&model_xml)
        .map_err(|e| DecodeError(format!("stored model XML does not parse: {e}")))?;
    let mcf = McfConfig::from_xml(&mcf_xml)
        .map_err(|e| DecodeError(format!("stored MCF XML does not parse: {e}")))?;
    if prophet_uml::xmi::model_to_xml(&model) != model_xml {
        return fail("stored model XML is not canonical");
    }
    if mcf.to_xml() != mcf_xml {
        return fail("stored MCF XML is not canonical");
    }

    let session = Session::from_parts(model, mcf, diagnostics, cpp, program);
    for entry in entries {
        session
            .elab_cache()
            .seed(entry.sp, entry.comm, entry.limits, entry.ops);
    }
    Ok(session)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::ModelBuilder;

    fn model(name: &str, cost: &str) -> Model {
        let mut b = ModelBuilder::new(name);
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Work", cost);
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        b.build()
    }

    fn temp_store(tag: &str) -> ArtifactStore {
        let dir =
            std::env::temp_dir().join(format!("prophet-store-unit-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ArtifactStore::open(dir).expect("temp store opens")
    }

    #[test]
    fn metrics_checkpoint_roundtrips_and_stays_invisible_to_keys() {
        let store = temp_store("metrics-ckpt");
        let inst = "127.0.0.1:7071";
        assert!(
            store.load_metrics(inst).is_none(),
            "fresh store: no checkpoint"
        );
        let counters = vec![
            ("endpoints.estimate.requests".to_string(), 42u64),
            ("endpoints.estimate.errors".to_string(), 0u64),
            ("endpoints.other.requests".to_string(), u64::MAX),
        ];
        store.save_metrics(inst, &counters).unwrap();
        assert_eq!(store.load_metrics(inst), Some(counters.clone()));
        // The sidecar never shows up as an artifact key, and
        // checkpoint writes never drift the artifact write counters.
        assert!(store.keys().is_empty());
        assert_eq!(store.stats().writes, 0);
        // Overwrites replace, not append.
        let newer = vec![("endpoints.estimate.requests".to_string(), 43u64)];
        store.save_metrics(inst, &newer).unwrap();
        assert_eq!(store.load_metrics(inst), Some(newer.clone()));
        // Checkpoints are per-instance: a second shard sharing the
        // store directory neither sees nor clobbers the first's.
        let other = "127.0.0.1:7072";
        assert!(store.load_metrics(other).is_none());
        store
            .save_metrics(other, &[("endpoints.sweep.requests".to_string(), 9)])
            .unwrap();
        assert_eq!(store.load_metrics(inst), Some(newer));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_metrics_checkpoint_is_a_clean_miss_and_evicted() {
        let store = temp_store("metrics-corrupt");
        let inst = "127.0.0.1:7071";
        store
            .save_metrics(inst, &[("endpoints.check.requests".to_string(), 7)])
            .unwrap();
        let path = store.metrics_path(inst);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            store.load_metrics(inst).is_none(),
            "bit flip reads as a miss"
        );
        assert!(!path.exists(), "corrupt checkpoint is deleted");
        // Truncation and wrong magic are misses too.
        std::fs::write(&path, b"PP").unwrap();
        assert!(store.load_metrics(inst).is_none());
        std::fs::write(&path, b"NOPEnope_nope_nope_nope_").unwrap();
        assert!(store.load_metrics(inst).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn key_is_spelled_into_and_parsed_from_file_names() {
        let key = ArtifactKey {
            model: 0x0123_4567_89ab_cdef,
            mcf: 0xfedc_ba98_7654_3210,
        };
        let name = key.file_name();
        assert_eq!(name, "pp-0123456789abcdef-fedcba9876543210.bin");
        assert_eq!(ArtifactKey::from_file_name(&name), Some(key));
        assert_eq!(ArtifactKey::from_file_name("pp-zz.bin"), None);
        assert_eq!(ArtifactKey::from_file_name("unrelated.txt"), None);
    }

    #[test]
    fn save_load_roundtrip_preserves_everything() {
        let store = temp_store("roundtrip");
        let session = Session::new(model("m", "2.0 / P")).unwrap();
        // Populate the elab cache so entries are persisted too.
        let scenario =
            crate::Scenario::new(prophet_machine::SystemParams::flat_mpi(2, 1)).without_trace();
        let fresh = session.evaluate(&scenario).unwrap();

        let key = store.save_session(&session).unwrap();
        let loaded = store.load_session(key).expect("hit");
        assert_eq!(loaded.cpp().model_text(), session.cpp().model_text());
        assert_eq!(loaded.program(), session.program());
        assert_eq!(loaded.diagnostics().len(), session.diagnostics().len());
        assert_eq!(loaded.model_xml(), canonical_model_xml(session.model()));

        // The persisted elaboration is seeded: the first evaluation is
        // a pure cache hit and agrees bit for bit.
        let again = loaded.evaluate(&scenario).unwrap();
        assert_eq!(
            again.predicted_time.to_bits(),
            fresh.predicted_time.to_bits()
        );
        let stats = loaded.elab_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0), "{stats:?}");

        assert_eq!(
            store.stats(),
            StoreStats {
                disk_hits: 1,
                writes: 1,
                ..Default::default()
            }
        );
    }

    #[test]
    fn load_of_absent_key_is_a_plain_miss() {
        let store = temp_store("absent");
        let key = ArtifactKey { model: 1, mcf: 2 };
        assert!(store.load_session(key).is_none());
        assert_eq!(store.stats().disk_misses, 1);
        assert_eq!(store.stats().evictions, 0, "nothing to evict");
    }

    #[test]
    fn compile_stored_hits_skip_check_and_transform() {
        let store = temp_store("skip");
        let m = model("skip", "3.0");
        let mcf = McfConfig::default();
        let s1 = Session::compile_stored(m.clone(), mcf.clone(), Some(&store)).unwrap();
        assert_eq!(store.stats().writes, 1, "miss must write back");

        let before = crate::transform::transform_invocations();
        let s2 = Session::compile_stored(m.clone(), mcf.clone(), Some(&store)).unwrap();
        assert_eq!(
            crate::transform::transform_invocations(),
            before,
            "a store hit must not re-transform"
        );
        assert_eq!(s2.program(), s1.program());
        assert_eq!(store.stats().disk_hits, 1);
    }

    #[test]
    fn truncated_entries_are_evicted_and_rewritten() {
        let store = temp_store("trunc");
        let session = Session::new(model("t", "1.0")).unwrap();
        let key = store.save_session(&session).unwrap();
        let path = store.entry_path(key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        assert!(store.load_session(key).is_none(), "truncated = miss");
        assert!(!path.exists(), "truncated entry must be evicted");
        assert_eq!(store.stats().evictions, 1);

        // The slot re-fills cleanly.
        store.save_session(&session).unwrap();
        assert!(store.load_session(key).is_some());
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let store = temp_store("bitflip");
        let session = Session::new(model("b", "1.0")).unwrap();
        let key = store.save_session(&session).unwrap();
        let path = store.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = 16 + (bytes.len() - 24) / 2; // somewhere inside the payload
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.load_session(key).is_none(), "bit flip = miss");
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn stale_format_version_is_a_miss() {
        let store = temp_store("version");
        let session = Session::new(model("v", "1.0")).unwrap();
        let key = store.save_session(&session).unwrap();
        let path = store.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.load_session(key).is_none(), "future version = miss");
        assert!(!path.exists(), "stale entry must be evicted");
    }

    #[test]
    fn renamed_entry_cannot_impersonate_another_model() {
        let store = temp_store("rename");
        let a = Session::new(model("a", "1.0")).unwrap();
        let b = Session::new(model("b", "2.0")).unwrap();
        let key_a = store.save_session(&a).unwrap();
        let key_b = ArtifactKey::of(b.model(), b.mcf());
        // Drop model a's artifact into model b's slot.
        std::fs::copy(store.entry_path(key_a), store.entry_path(key_b)).unwrap();
        assert!(
            store.load_session(key_b).is_none(),
            "content digest must disagree with the entry's key"
        );
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn open_rejects_a_file_path() {
        let path =
            std::env::temp_dir().join(format!("prophet-store-not-a-dir-{}", std::process::id()));
        std::fs::write(&path, b"i am a file").unwrap();
        assert!(ArtifactStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    /// Pin an entry's recency to a chosen logical stamp, the way GC
    /// tests control LRU order without sleeping.
    fn stamp(store: &ArtifactStore, key: ArtifactKey, at: u64) {
        std::fs::write(store.access_stamp_path(key), at.to_string()).unwrap();
    }

    #[test]
    fn loads_and_saves_refresh_the_access_stamp() {
        let store = temp_store("atime");
        let session = Session::new(model("a", "1.0")).unwrap();
        let key = store.save_session(&session).unwrap();
        let saved: u64 = std::fs::read_to_string(store.access_stamp_path(key))
            .expect("save writes the stamp sidecar")
            .parse()
            .unwrap();
        stamp(&store, key, 17);
        store.load_session(key).expect("hit");
        let loaded: u64 = std::fs::read_to_string(store.access_stamp_path(key))
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            loaded >= saved,
            "a load must refresh the stamp ({loaded} < {saved})"
        );
        // Sidecars are invisible to key listing and warm-start.
        assert_eq!(store.keys(), vec![key]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_under_budget_is_a_no_op() {
        let store = temp_store("gc-noop");
        let key = store
            .save_session(&Session::new(model("g", "1.0")).unwrap())
            .unwrap();
        let report = store.gc(u64::MAX);
        assert_eq!(report.entries_scanned, 1);
        assert_eq!(report.lru_evicted + report.corrupt_evicted, 0);
        assert_eq!(report.bytes_reclaimed, 0);
        assert_eq!(report.entries_retained, 1);
        assert!(store.load_session(key).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_evicts_strictly_least_recently_used_first() {
        let store = temp_store("gc-lru");
        let keys: Vec<ArtifactKey> = (0..4)
            .map(|i| {
                store
                    .save_session(&Session::new(model(&format!("m{i}"), "1.0")).unwrap())
                    .unwrap()
            })
            .collect();
        // Recency order by logical stamps: keys[2] oldest, then [0],
        // [3], [1] — deliberately not save order.
        for (key, at) in [(keys[2], 10), (keys[0], 20), (keys[3], 30), (keys[1], 40)] {
            stamp(&store, key, at);
        }
        let one = std::fs::metadata(store.entry_path(keys[0])).unwrap().len();
        // Budget for two entries: the two *oldest* must go.
        let report = store.gc(2 * one + one / 2);
        assert_eq!(report.lru_evicted, 2, "{report:?}");
        assert_eq!(report.corrupt_evicted, 0);
        assert_eq!(report.entries_retained, 2);
        assert!(report.bytes_retained <= 2 * one + one / 2);
        let survivors = store.keys();
        assert!(!survivors.contains(&keys[2]), "oldest must be evicted");
        assert!(!survivors.contains(&keys[0]), "second-oldest must go too");
        assert!(survivors.contains(&keys[3]) && survivors.contains(&keys[1]));
        // Evicted entries' sidecars are gone with them.
        assert!(!store.access_stamp_path(keys[2]).exists());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_reclaims_corrupt_entries_regardless_of_budget() {
        let store = temp_store("gc-corrupt");
        let good = store
            .save_session(&Session::new(model("good", "1.0")).unwrap())
            .unwrap();
        let bad = store
            .save_session(&Session::new(model("bad", "2.0")).unwrap())
            .unwrap();
        let bad_path = store.entry_path(bad);
        let mut bytes = std::fs::read(&bad_path).unwrap();
        let mid = 16 + (bytes.len() - 24) / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&bad_path, &bytes).unwrap();
        // Budget is unlimited — the corrupt entry still goes.
        let report = store.gc(u64::MAX);
        assert_eq!(report.corrupt_evicted, 1, "{report:?}");
        assert_eq!(report.lru_evicted, 0);
        assert!(report.bytes_reclaimed >= bytes.len() as u64 - 1);
        assert!(!bad_path.exists());
        assert!(store.load_session(good).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_with_zero_budget_empties_the_store() {
        let store = temp_store("gc-zero");
        for i in 0..3 {
            store
                .save_session(&Session::new(model(&format!("z{i}"), "1.0")).unwrap())
                .unwrap();
        }
        let report = store.gc(0);
        assert_eq!(report.lru_evicted, 3, "{report:?}");
        assert_eq!(report.entries_retained, 0);
        assert_eq!(report.bytes_retained, 0);
        assert!(store.keys().is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn gc_sweeps_orphaned_stamp_sidecars() {
        let store = temp_store("gc-orphan");
        let key = ArtifactKey { model: 7, mcf: 9 };
        std::fs::write(store.access_stamp_path(key), "12345").unwrap();
        store.gc(u64::MAX);
        assert!(
            !store.access_stamp_path(key).exists(),
            "a stamp without its artifact is swept"
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn keys_lists_exactly_the_store_entries() {
        let store = temp_store("keys");
        assert!(store.keys().is_empty());
        let k1 = store
            .save_session(&Session::new(model("k1", "1.0")).unwrap())
            .unwrap();
        let k2 = store
            .save_session(&Session::new(model("k2", "2.0")).unwrap())
            .unwrap();
        // Unrelated files are ignored.
        std::fs::write(store.dir().join("notes.txt"), b"hi").unwrap();
        let mut expected = vec![k1, k2];
        expected.sort();
        assert_eq!(store.keys(), expected);
    }
}
