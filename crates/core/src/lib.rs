//! # prophet-core
//!
//! The top of the Performance Prophet stack: the paper's transformation
//! methodology wired end to end (Pllana et al., ICPP-W 2008).
//!
//! * [`transform`] — **the paper's contribution**: the automatic
//!   transformation of a UML performance model into its machine-efficient
//!   representations. One structural traversal (the Figure-6 traverser +
//!   flow recovery) feeds two backends:
//!   [`transform::to_cpp`] emits the C++ PMP text (Figure 8), and
//!   [`transform::to_program`] lowers to the executable
//!   [`prophet_estimator::Program`] IR that the Performance Estimator
//!   evaluates by simulation,
//! * [`project`] — the Teuta-session equivalent: a model plus system
//!   parameters (SP) and configuration (CF), with check → transform →
//!   estimate → trace as one call,
//! * [`sweep`] — parallel parameter sweeps (crossbeam scoped threads, one
//!   deterministic simulation per configuration) powering the speedup
//!   experiments.
//!
//! ## Quickstart
//!
//! ```
//! use prophet_core::project::Project;
//! use prophet_machine::SystemParams;
//! use prophet_uml::ModelBuilder;
//!
//! let mut b = ModelBuilder::new("demo");
//! let main = b.main_diagram();
//! let i = b.initial(main, "start");
//! let a = b.action(main, "Work", "0.5");
//! let f = b.final_node(main, "end");
//! b.flow(main, i, a);
//! b.flow(main, a, f);
//!
//! let project = Project::new(b.build()).with_system(SystemParams::default());
//! let run = project.run().unwrap();
//! assert_eq!(run.evaluation.predicted_time, 0.5);
//! assert!(run.cpp.program.contains("work.execute(uid, pid, tid, 0.5);"));
//! ```

pub mod project;
pub mod sweep;
pub mod transform;

pub use project::{Project, ProjectError, RunArtifacts};
pub use sweep::{sweep_parallel, sweep_serial, SweepPoint, SweepResult};
pub use transform::{to_cpp, to_program, TransformError};
