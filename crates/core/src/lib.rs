//! # prophet-core
//!
//! The top of the Performance Prophet stack: the paper's transformation
//! methodology wired end to end (Pllana et al., ICPP-W 2008).
//!
//! * [`transform`] — **the paper's contribution**: the automatic
//!   transformation of a UML performance model into its machine-efficient
//!   representations. One structural traversal (the Figure-6 traverser +
//!   flow recovery) feeds two backends:
//!   [`transform::to_cpp`] emits the C++ PMP text (Figure 8), and
//!   [`transform::to_program`] lowers to the executable
//!   [`prophet_estimator::Program`] IR that the Performance Estimator
//!   evaluates by simulation,
//! * [`session`] — **the engine API**: [`Session::compile`] runs check +
//!   transform exactly once; [`Session::evaluate`], [`Session::sweep`]
//!   and [`Session::batch`] then answer any number of "what if"
//!   scenarios against the immutable artifacts, in parallel and
//!   lock-free. Each session owns a shared
//!   [`ElaborationCache`]: the per-rank op
//!   lists are flattened once per distinct `(SP, comm, limits)` point
//!   and served to every evaluation, seed, worker thread and backend
//!   that asks again ([`Session::elab_stats`] exposes the hit/miss
//!   counters; `SweepConfig::no_elab_cache` / `--no-elab-cache` opt
//!   out),
//! * [`store`] — the persistent compiled-artifact store: compiled
//!   sessions serialize to content-addressed, versioned, checksummed
//!   files ([`ArtifactStore`]), so "compile once" becomes a
//!   deployment-lifetime property — `Session::compile_stored` skips
//!   check + transform entirely on a store hit, and corrupt or
//!   stale-format entries read back as clean misses,
//! * [`error`] — the unified [`Error`] enum with `source()` chaining,
//! * [`project`] / [`sweep`] — the deprecated single-shot API, kept as
//!   thin shims over [`Session`] (see the [`project`] module docs for
//!   the migration map).
//!
//! ## Quickstart
//!
//! Compile once, evaluate many scenarios:
//!
//! ```
//! use prophet_core::{mpi_grid, Scenario, Session};
//! use prophet_machine::SystemParams;
//! use prophet_uml::ModelBuilder;
//!
//! let mut b = ModelBuilder::new("demo");
//! let main = b.main_diagram();
//! let i = b.initial(main, "start");
//! let a = b.action(main, "Work", "8 / P");
//! let f = b.final_node(main, "end");
//! b.flow(main, i, a);
//! b.flow(main, a, f);
//!
//! // Check + transform happen here, exactly once.
//! let session = Session::new(b.build())?;
//! assert!(session.cpp().program.contains("work.execute"));
//!
//! // One scenario...
//! let run = session.evaluate(&Scenario::new(SystemParams::flat_mpi(2, 1)))?;
//! assert_eq!(run.predicted_time, 4.0);
//!
//! // ...or a whole sweep, fanned out over worker threads.
//! let report = session.sweep(&mpi_grid(&[1, 2, 4, 8], 1));
//! assert_eq!(report.times()[3], Some(1.0));
//! # Ok::<(), prophet_core::Error>(())
//! ```
//!
//! Heterogeneous scenario sets (different interconnects, seeds — not
//! just SP grids) go through [`Session::batch`]; progress streaming for
//! both goes through [`Session::sweep_with`] / [`Session::batch_with`].

pub mod error;
pub mod project;
pub mod ring;
pub mod session;
pub mod store;
pub mod sweep;
pub mod transform;

pub use error::{render_chain, render_chain_inline, Error};
// Re-exported so `Scenario`/`Session` callers don't need a direct
// prophet-estimator dependency for the types in the API surface.
#[allow(deprecated)]
pub use project::{Project, ProjectError, RunArtifacts};
pub use prophet_estimator::{
    flatten_invocations, Backend, ElabStats, ElaborationCache, EstimatorOptions, Evaluation,
};
pub use session::{mpi_grid, PointResult, Scenario, Session, SweepConfig, SweepPoint, SweepReport};
pub use store::{ArtifactKey, ArtifactStore, GcReport, StoreStats};
#[allow(deprecated)]
pub use sweep::{sweep_parallel, sweep_serial, SweepResult};
pub use transform::{to_cpp, to_program, transform_invocations, TransformError};
