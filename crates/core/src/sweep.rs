//! Parallel parameter sweeps over system configurations.
//!
//! The paper's workflow evaluates one model under many SP configurations
//! ("the performance can be predicted and design decisions can be
//! influenced without time-consuming modifications of large portions of
//! an implemented program"). Each configuration is one deterministic
//! simulation; configurations are independent, so we parallelize *across*
//! simulations with crossbeam scoped threads — never inside one
//! (DESIGN.md §5).

use crate::project::Project;
use crate::transform::to_program;
use parking_lot::Mutex;
use prophet_estimator::{Estimator, EstimatorOptions, Program};
use prophet_machine::{MachineModel, SystemParams};

/// One configuration to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepPoint {
    /// System parameters of this configuration.
    pub sp: SystemParams,
}

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The configuration.
    pub sp: SystemParams,
    /// Predicted time, or an error message.
    pub outcome: Result<f64, String>,
}

impl SweepResult {
    /// Predicted time if the run succeeded.
    pub fn time(&self) -> Option<f64> {
        self.outcome.as_ref().ok().copied()
    }
}

fn eval_point(program: &Program, project: &Project, sp: SystemParams) -> SweepResult {
    let outcome = MachineModel::new(sp, project.comm)
        .map_err(|e| e.to_string())
        .and_then(|machine| {
            let options = EstimatorOptions {
                trace: false, // sweeps don't need traces
                ..project.options.clone()
            };
            Estimator::new(machine, options)
                .evaluate(program)
                .map(|e| e.predicted_time)
                .map_err(|e| e.to_string())
        });
    SweepResult { sp, outcome }
}

/// Evaluate every point serially (baseline for the parallel-sweep bench).
pub fn sweep_serial(project: &Project, points: &[SweepPoint]) -> Vec<SweepResult> {
    let program = match to_program(&project.model) {
        Ok(p) => p,
        Err(e) => {
            return points
                .iter()
                .map(|pt| SweepResult { sp: pt.sp, outcome: Err(e.to_string()) })
                .collect()
        }
    };
    points.iter().map(|pt| eval_point(&program, project, pt.sp)).collect()
}

/// Evaluate points in parallel with crossbeam scoped threads.
///
/// Results are returned in input order regardless of completion order.
/// `threads = 0` selects the available parallelism.
pub fn sweep_parallel(project: &Project, points: &[SweepPoint], threads: usize) -> Vec<SweepResult> {
    let program = match to_program(&project.model) {
        Ok(p) => p,
        Err(e) => {
            return points
                .iter()
                .map(|pt| SweepResult { sp: pt.sp, outcome: Err(e.to_string()) })
                .collect()
        }
    };
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        threads
    };
    let threads = threads.min(points.len().max(1));

    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Mutex<Vec<Option<SweepResult>>> = Mutex::new(vec![None; points.len()]);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let result = eval_point(&program, project, points[i].sp);
                results.lock()[i] = Some(result);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every index processed"))
        .collect()
}

/// Convenience: a `(nodes × cpus)` grid of flat-MPI configurations.
pub fn mpi_grid(node_counts: &[usize], cpus_per_node: usize) -> Vec<SweepPoint> {
    node_counts
        .iter()
        .map(|&n| SweepPoint { sp: SystemParams::flat_mpi(n, cpus_per_node) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_uml::ModelBuilder;

    /// A model whose time shrinks with more processes: a parallelizable
    /// region plus a serial part (Amdahl shape).
    fn scalable_project() -> Project {
        let mut b = ModelBuilder::new("amdahl");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let serial = b.action(main, "Serial", "1.0");
        let par = b.action(main, "Par", "8.0 / P");
        let f = b.final_node(main, "end");
        b.flow(main, i, serial);
        b.flow(main, serial, par);
        b.flow(main, par, f);
        Project::new(b.build())
    }

    #[test]
    fn serial_and_parallel_agree() {
        let project = scalable_project();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let serial = sweep_serial(&project, &points);
        let parallel = sweep_parallel(&project, &points, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.sp, b.sp);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn speedup_shape_is_amdahl() {
        let project = scalable_project();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let results = sweep_parallel(&project, &points, 0);
        let times: Vec<f64> = results.iter().map(|r| r.time().unwrap()).collect();
        assert_eq!(times[0], 9.0); // 1 + 8
        assert_eq!(times[1], 5.0); // 1 + 4
        assert_eq!(times[2], 3.0); // 1 + 2
        assert_eq!(times[3], 2.0); // 1 + 1
        // Monotone improvement with diminishing returns.
        assert!(times.windows(2).all(|w| w[1] < w[0]));
        let speedup8 = times[0] / times[3];
        assert!(speedup8 < 8.0, "Amdahl bound");
    }

    #[test]
    fn failed_points_carry_errors() {
        let project = scalable_project();
        // processes < nodes is invalid.
        let bad = SweepPoint {
            sp: SystemParams { nodes: 4, cpus_per_node: 1, processes: 2, threads_per_process: 1 },
        };
        let results = sweep_parallel(&project, &[bad], 2);
        assert!(results[0].outcome.is_err());
    }

    #[test]
    fn results_in_input_order() {
        let project = scalable_project();
        let points = mpi_grid(&[8, 1, 4, 2], 1);
        let results = sweep_parallel(&project, &points, 3);
        let order: Vec<usize> = results.iter().map(|r| r.sp.processes).collect();
        assert_eq!(order, vec![8, 1, 4, 2]);
    }
}
