//! Legacy parameter-sweep entry points, now shims over the
//! [`Session`](crate::Session) sweep core.
//!
//! The paper's workflow evaluates one model under many SP configurations
//! ("the performance can be predicted and design decisions can be
//! influenced without time-consuming modifications of large portions of
//! an implemented program"). The old free functions here re-transformed
//! the model on every call and collected results behind a mutex; the
//! [`Session`](crate::Session) sweep compiles once and streams lock-free.
//! The shims keep the exact legacy contract — `to_program` only (no model
//! check, no C++ generation), single-line error strings — while the point
//! evaluation itself runs on the new lock-free core. [`SweepPoint`] and
//! [`mpi_grid`] stay current and are re-exported from [`crate::session`].

use crate::error::Error;
pub use crate::session::{mpi_grid, SweepPoint};
use crate::session::{sweep_program, SweepConfig};
use crate::transform::to_program;
use prophet_estimator::EstimatorOptions;
use prophet_machine::{CommParams, SystemParams};
use prophet_uml::Model;

/// One configuration's outcome in the legacy string-error format.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The configuration.
    pub sp: SystemParams,
    /// Predicted time, or an error message.
    pub outcome: Result<f64, String>,
}

impl SweepResult {
    /// Predicted time if the run succeeded.
    pub fn time(&self) -> Option<f64> {
        self.outcome.as_ref().ok().copied()
    }
}

/// The legacy single-line error message: the innermost error's own
/// `Display`, as the pre-`Session` sweeps reported it — not the
/// multi-line `render_chain` form of the new API.
fn legacy_message(e: &Error) -> String {
    match e {
        Error::Machine(m) => m.to_string(),
        Error::Transform(t) => t.to_string(),
        Error::Estimate(s) => crate::error::render_chain_inline(s),
        other => crate::error::render_chain(other),
    }
}

/// The non-deprecated core of the legacy sweeps: everything they read
/// from a `Project` is passed piecewise, so only the shim signatures
/// below still name the deprecated type.
fn sweep_via_core(
    model: &Model,
    comm: CommParams,
    options: &EstimatorOptions,
    points: &[SweepPoint],
    threads: usize,
) -> Vec<SweepResult> {
    // Exactly what the legacy sweeps did per call: build the Program IR
    // once — no model check, no C++ generation.
    let program = match to_program(model) {
        Ok(p) => p,
        Err(e) => {
            // The legacy functions reported per-point errors rather than
            // failing the sweep; keep that contract.
            let msg = e.to_string();
            return points
                .iter()
                .map(|pt| SweepResult {
                    sp: pt.sp,
                    outcome: Err(msg.clone()),
                })
                .collect();
        }
    };
    let config = SweepConfig {
        comm,
        options: options.clone(),
        threads,
        ..Default::default()
    };
    sweep_program(&program, None, points, &config, |_, _| {})
        .points
        .into_iter()
        .map(|p| SweepResult {
            sp: p.sp,
            outcome: p.outcome.map_err(|e| legacy_message(&e)),
        })
        .collect()
}

/// Evaluate every point serially (baseline for the parallel-sweep bench).
#[deprecated(since = "0.2.0", note = "use `Session::sweep_with` with `threads: 1`")]
#[allow(deprecated)]
pub fn sweep_serial(project: &crate::project::Project, points: &[SweepPoint]) -> Vec<SweepResult> {
    sweep_via_core(&project.model, project.comm, &project.options, points, 1)
}

/// Evaluate points in parallel over scoped threads.
///
/// Results are returned in input order regardless of completion order.
/// `threads = 0` selects the available parallelism.
#[deprecated(since = "0.2.0", note = "use `Session::sweep` / `Session::sweep_with`")]
#[allow(deprecated)]
pub fn sweep_parallel(
    project: &crate::project::Project,
    points: &[SweepPoint],
    threads: usize,
) -> Vec<SweepResult> {
    sweep_via_core(
        &project.model,
        project.comm,
        &project.options,
        points,
        threads,
    )
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{Project, Session};
    use prophet_uml::ModelBuilder;

    /// A model whose time shrinks with more processes: a parallelizable
    /// region plus a serial part (Amdahl shape).
    fn scalable_project() -> Project {
        let mut b = ModelBuilder::new("amdahl");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let serial = b.action(main, "Serial", "1.0");
        let par = b.action(main, "Par", "8.0 / P");
        let f = b.final_node(main, "end");
        b.flow(main, i, serial);
        b.flow(main, serial, par);
        b.flow(main, par, f);
        Project::new(b.build())
    }

    #[test]
    fn shim_skips_check_gate_like_legacy() {
        // The legacy sweeps never ran the model checker: a model that
        // fails a check rule but still transforms (here PP001, a name
        // that is not a C identifier) must keep sweeping via the shim.
        let mut b = ModelBuilder::new("legacy");
        let main = b.main_diagram();
        let i = b.initial(main, "start");
        let a = b.action(main, "Bad Name!", "2.0");
        let f = b.final_node(main, "end");
        b.flow(main, i, a);
        b.flow(main, a, f);
        let project = Project::new(b.build());
        assert!(
            project.check().iter().any(|d| d.is_error()),
            "model must fail the checker for this test to mean anything"
        );
        let results = sweep_parallel(&project, &mpi_grid(&[1, 2], 1), 2);
        assert_eq!(results[0].time(), Some(2.0));
        assert_eq!(results[1].time(), Some(2.0));
    }

    #[test]
    fn serial_and_parallel_agree() {
        let project = scalable_project();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let serial = sweep_serial(&project, &points);
        let parallel = sweep_parallel(&project, &points, 4);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.sp, b.sp);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn speedup_shape_is_amdahl() {
        let project = scalable_project();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let results = sweep_parallel(&project, &points, 0);
        let times: Vec<f64> = results.iter().map(|r| r.time().unwrap()).collect();
        assert_eq!(times[0], 9.0); // 1 + 8
        assert_eq!(times[1], 5.0); // 1 + 4
        assert_eq!(times[2], 3.0); // 1 + 2
        assert_eq!(times[3], 2.0); // 1 + 1
                                   // Monotone improvement with diminishing returns.
        assert!(times.windows(2).all(|w| w[1] < w[0]));
        let speedup8 = times[0] / times[3];
        assert!(speedup8 < 8.0, "Amdahl bound");
    }

    #[test]
    fn failed_points_carry_errors() {
        let project = scalable_project();
        // processes < nodes is invalid.
        let bad = SweepPoint {
            sp: SystemParams {
                nodes: 4,
                cpus_per_node: 1,
                processes: 2,
                threads_per_process: 1,
            },
        };
        let results = sweep_parallel(&project, &[bad], 2);
        assert!(results[0].outcome.is_err());
    }

    #[test]
    fn results_in_input_order() {
        let project = scalable_project();
        let points = mpi_grid(&[8, 1, 4, 2], 1);
        let results = sweep_parallel(&project, &points, 3);
        let order: Vec<usize> = results.iter().map(|r| r.sp.processes).collect();
        assert_eq!(order, vec![8, 1, 4, 2]);
    }

    #[test]
    fn shim_matches_session_sweep() {
        let project = scalable_project();
        let points = mpi_grid(&[1, 2, 4, 8], 1);
        let legacy = sweep_parallel(&project, &points, 0);
        let session = Session::new(project.model.clone()).unwrap();
        let report = session.sweep(&points);
        for (a, b) in legacy.iter().zip(&report.points) {
            assert_eq!(a.sp, b.sp);
            assert_eq!(a.time(), b.time());
        }
    }
}
