//! Property-based tests: serialize→parse roundtrips for arbitrary trees.

use prophet_xml::{parse_document, Document, Element, Node, WriteOptions};
use proptest::prelude::*;

/// Strategy for XML names in our subset.
fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_.-]{0,8}".prop_map(|s| s)
}

/// Text content without leading/trailing whitespace (the DOM drops
/// inter-element whitespace, so normalized text roundtrips exactly).
fn text_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"' ]{1,20}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn attr_value_strategy() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9<>&\"' \t\n]{0,16}".prop_map(|s| s)
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (
        name_strategy(),
        prop::collection::vec((name_strategy(), attr_value_strategy()), 0..4),
        prop::option::of(text_strategy()),
    )
        .prop_map(|(name, attrs, text)| {
            let mut e = Element::new(name);
            for (k, v) in attrs {
                e.set_attr(k, v); // set_attr dedupes names
            }
            if let Some(t) = text {
                e.push_text(t);
            }
            e
        });
    leaf.prop_recursive(4, 64, 5, |inner| {
        (
            name_strategy(),
            prop::collection::vec((name_strategy(), attr_value_strategy()), 0..3),
            prop::collection::vec(inner, 0..5),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e.set_attr(k, v);
                }
                for c in children {
                    e.push_element(c);
                }
                e
            })
    })
}

/// Merge adjacent text nodes so structural equality is insensitive to how
/// the parser chunks character data.
fn normalize(e: &Element) -> Element {
    let mut out = Element::new(e.name.clone());
    out.attributes = e.attributes.clone();
    let mut pending = String::new();
    for c in &e.children {
        match c {
            Node::Text(t) | Node::CData(t) => pending.push_str(t),
            Node::Element(child) => {
                if !pending.is_empty() {
                    out.push_text(std::mem::take(&mut pending));
                }
                out.push_element(normalize(child));
            }
            Node::Comment(_) => {}
        }
    }
    if !pending.is_empty() {
        out.push_text(pending);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pretty_roundtrip(e in element_strategy()) {
        let doc = Document::with_root(e.clone());
        let s = doc.to_xml_string();
        let parsed = parse_document(&s).unwrap();
        prop_assert_eq!(normalize(&parsed.root), normalize(&e));
    }

    #[test]
    fn compact_roundtrip(e in element_strategy()) {
        let doc = Document::with_root(e.clone());
        let s = doc.write(&WriteOptions::compact());
        let parsed = parse_document(&s).unwrap();
        prop_assert_eq!(normalize(&parsed.root), normalize(&e));
    }

    #[test]
    fn parser_never_panics(s in "\\PC{0,200}") {
        // Arbitrary input must produce Ok or Err, never a panic.
        let _ = parse_document(&s);
    }

    #[test]
    fn subtree_size_consistent(e in element_strategy()) {
        let n = e.subtree_size();
        let children: usize = e.child_elements().map(|c| c.subtree_size()).sum();
        prop_assert_eq!(n, children + 1);
    }
}
