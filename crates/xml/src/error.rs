//! Error type for XML parsing and writing with source positions.

use std::fmt;

/// Convenience alias used across the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// A parse or structural error, carrying the 1-based line and column at
/// which it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line number in the input.
    pub line: usize,
    /// 1-based column number in the input.
    pub column: usize,
}

impl XmlError {
    /// Create an error at an explicit position.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        Self {
            message: message.into(),
            line,
            column,
        }
    }

    /// Create an error with no meaningful position (e.g. structural errors
    /// detected after parsing). Positions are reported as `0:0`.
    pub fn structural(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "xml error: {}", self.message)
        } else {
            write!(
                f,
                "xml error at {}:{}: {}",
                self.line, self.column, self.message
            )
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_position() {
        let e = XmlError::new("unexpected '<'", 3, 14);
        assert_eq!(e.to_string(), "xml error at 3:14: unexpected '<'");
    }

    #[test]
    fn display_structural() {
        let e = XmlError::structural("two roots");
        assert_eq!(e.to_string(), "xml error: two roots");
    }
}
