//! DOM-style XML tree: [`Document`], [`Element`], [`Node`].

use crate::error::{XmlError, XmlResult};
use crate::reader::{Event, Reader};
use crate::writer::{WriteOptions, Writer};

/// A child of an [`Element`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Nested element.
    Element(Element),
    /// Character data (entity-decoded).
    Text(String),
    /// CDATA section (verbatim).
    CData(String),
    /// Comment.
    Comment(String),
}

impl Node {
    /// The contained element, if this node is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            Node::Element(e) => Some(e),
            _ => None,
        }
    }
}

/// An XML element: name, ordered attributes, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Tag name (possibly prefixed, e.g. `xmi:XMI`).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// Create an empty element with the given tag name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder-style: add/overwrite an attribute and return `self`.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.set_attr(name, value);
        self
    }

    /// Builder-style: append a child element and return `self`.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(Node::Element(child));
        self
    }

    /// Builder-style: append a text node and return `self`.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Node::Text(text.into()));
        self
    }

    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Look up an attribute or return a structural error naming the element.
    pub fn required_attr(&self, name: &str) -> XmlResult<&str> {
        self.attr(name).ok_or_else(|| {
            XmlError::structural(format!(
                "element `<{}>` is missing required attribute `{name}`",
                self.name
            ))
        })
    }

    /// Set an attribute, replacing an existing one of the same name.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(n, _)| n == &name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Append a child element.
    pub fn push_element(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    /// Append a text node.
    pub fn push_text(&mut self, text: impl Into<String>) {
        self.children.push(Node::Text(text.into()));
    }

    /// Iterate over child elements only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(Node::as_element)
    }

    /// First child element with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// First child element with the given name, or a structural error.
    pub fn required_child(&self, name: &str) -> XmlResult<&Element> {
        self.child(name).ok_or_else(|| {
            XmlError::structural(format!(
                "element `<{}>` is missing required child `<{name}>`",
                self.name
            ))
        })
    }

    /// Concatenated text content of this element (direct text/CDATA
    /// children only, not recursive).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            match c {
                Node::Text(t) | Node::CData(t) => out.push_str(t),
                _ => {}
            }
        }
        out
    }

    /// Recursively count elements in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Depth-first search for the first descendant (or self) matching `pred`.
    pub fn find<'a>(&'a self, pred: &dyn Fn(&Element) -> bool) -> Option<&'a Element> {
        if pred(self) {
            return Some(self);
        }
        for c in self.child_elements() {
            if let Some(hit) = c.find(pred) {
                return Some(hit);
            }
        }
        None
    }

    /// Serialize this element (and subtree) with the given options.
    pub fn write(&self, options: &WriteOptions) -> String {
        let mut w = Writer::new(options.clone());
        w.element(self);
        w.finish()
    }
}

/// A parsed XML document: optional declaration and a single root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Content of the `<?xml ...?>` declaration, if present.
    pub declaration: Option<String>,
    /// The root element.
    pub root: Element,
}

impl Document {
    /// Wrap an element as a document with a standard declaration.
    pub fn with_root(root: Element) -> Self {
        Self {
            declaration: Some("version=\"1.0\" encoding=\"UTF-8\"".into()),
            root,
        }
    }

    /// Parse a complete document. Exactly one root element is required;
    /// leading/trailing comments, PIs and whitespace are permitted.
    pub fn parse(input: &str) -> XmlResult<Document> {
        let mut reader = Reader::new(input);
        let mut declaration = None;
        let mut root: Option<Element> = None;
        loop {
            match reader.next_event()? {
                Event::XmlDecl(d) => declaration = Some(d),
                Event::Comment(_) | Event::ProcessingInstruction(_) => {}
                Event::Text(t) => {
                    debug_assert!(
                        t.trim().is_empty(),
                        "reader rejects non-ws text outside root"
                    );
                }
                Event::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    if root.is_some() {
                        return Err(XmlError::structural(
                            "document has more than one root element",
                        ));
                    }
                    root = Some(Self::build_element(
                        &mut reader,
                        name,
                        attributes,
                        self_closing,
                    )?);
                }
                Event::EndElement { name } => {
                    return Err(XmlError::structural(format!(
                        "unexpected `</{name}>` at top level"
                    )))
                }
                Event::CData(_) => {
                    return Err(XmlError::structural("CDATA outside the root element"))
                }
                Event::Eof => break,
            }
        }
        match root {
            Some(root) => Ok(Document { declaration, root }),
            None => Err(XmlError::structural("document has no root element")),
        }
    }

    fn build_element(
        reader: &mut Reader<'_>,
        name: String,
        attributes: Vec<(String, String)>,
        self_closing: bool,
    ) -> XmlResult<Element> {
        let mut elem = Element {
            name,
            attributes,
            children: Vec::new(),
        };
        if self_closing {
            return Ok(elem);
        }
        loop {
            match reader.next_event()? {
                Event::StartElement {
                    name,
                    attributes,
                    self_closing,
                } => {
                    let child = Self::build_element(reader, name, attributes, self_closing)?;
                    elem.children.push(Node::Element(child));
                }
                Event::EndElement { .. } => return Ok(elem),
                Event::Text(t) => {
                    // Drop pure inter-element whitespace and trim the rest:
                    // the Prophet formats are data-oriented and
                    // pretty-printed, so indentation around text is noise.
                    // Interior whitespace is preserved.
                    let trimmed = t.trim();
                    if !trimmed.is_empty() {
                        elem.children.push(Node::Text(trimmed.to_string()));
                    }
                }
                Event::CData(t) => elem.children.push(Node::CData(t)),
                Event::Comment(c) => elem.children.push(Node::Comment(c)),
                Event::ProcessingInstruction(_) | Event::XmlDecl(_) => {}
                Event::Eof => {
                    return Err(XmlError::structural(format!(
                        "unexpected EOF inside `<{}>`",
                        elem.name
                    )))
                }
            }
        }
    }

    /// Serialize with default (pretty) options.
    pub fn to_xml_string(&self) -> String {
        self.write(&WriteOptions::default())
    }

    /// Serialize with explicit options.
    pub fn write(&self, options: &WriteOptions) -> String {
        let mut w = Writer::new(options.clone());
        if let Some(d) = &self.declaration {
            w.raw(&format!("<?xml {d}?>"));
            w.newline();
        }
        w.element(&self.root);
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_tree() {
        let d = Document::parse("<m a=\"1\"><x/><y>t</y></m>").unwrap();
        assert_eq!(d.root.name, "m");
        assert_eq!(d.root.attr("a"), Some("1"));
        assert_eq!(d.root.child_elements().count(), 2);
        assert_eq!(d.root.child("y").unwrap().text(), "t");
    }

    #[test]
    fn builder_api() {
        let e = Element::new("model")
            .with_attr("name", "demo")
            .with_child(Element::new("action").with_attr("id", "1"))
            .with_child(Element::new("note").with_text("hi"));
        assert_eq!(e.subtree_size(), 3);
        assert_eq!(e.child("action").unwrap().attr("id"), Some("1"));
        assert_eq!(e.child("note").unwrap().text(), "hi");
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attributes.len(), 1);
        assert_eq!(e.attr("k"), Some("2"));
    }

    #[test]
    fn required_accessors_report_names() {
        let e = Element::new("model");
        let err = e.required_attr("id").unwrap_err();
        assert!(err.message.contains("model") && err.message.contains("id"));
        let err = e.required_child("diagram").unwrap_err();
        assert!(err.message.contains("diagram"));
    }

    #[test]
    fn two_roots_rejected() {
        assert!(Document::parse("<a/><b/>").is_err());
    }

    #[test]
    fn empty_document_rejected() {
        assert!(Document::parse("  <!-- only a comment -->  ").is_err());
    }

    #[test]
    fn whitespace_dropped_text_kept() {
        let d = Document::parse("<a>\n  <b>keep me</b>\n</a>").unwrap();
        assert_eq!(d.root.children.len(), 1);
        assert_eq!(d.root.child("b").unwrap().text(), "keep me");
    }

    #[test]
    fn find_descendant() {
        let d = Document::parse("<a><b><c id=\"7\"/></b></a>").unwrap();
        let hit = d.root.find(&|e| e.attr("id") == Some("7")).unwrap();
        assert_eq!(hit.name, "c");
    }

    #[test]
    fn children_named_filters() {
        let d = Document::parse("<a><x/><y/><x/></a>").unwrap();
        assert_eq!(d.root.children_named("x").count(), 2);
    }

    #[test]
    fn cdata_preserved_in_tree() {
        let d = Document::parse("<a><![CDATA[if (x < 1) {}]]></a>").unwrap();
        assert_eq!(d.root.text(), "if (x < 1) {}");
        let out = d.to_xml_string();
        assert!(out.contains("<![CDATA[if (x < 1) {}]]>"), "{out}");
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let src = r#"<model name="sample &amp; co">
  <vars><var name="GV" type="int" scope="global"/></vars>
  <diagram id="main"><action id="A1" cost="FA1()"/></diagram>
</model>"#;
        let d1 = Document::parse(src).unwrap();
        let d2 = Document::parse(&d1.to_xml_string()).unwrap();
        assert_eq!(d1.root, d2.root);
    }
}
