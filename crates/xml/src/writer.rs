//! XML serialization with configurable pretty-printing.

use crate::node::{Element, Node};
use crate::{escape_attr, escape_text};

/// Serialization options.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Indent string per nesting level (empty ⇒ compact single-line output).
    pub indent: String,
    /// Newline between elements; ignored when `indent` is empty.
    pub newline: String,
    /// Collapse empty elements to `<a/>` rather than `<a></a>`.
    pub self_close_empty: bool,
}

impl Default for WriteOptions {
    fn default() -> Self {
        Self {
            indent: "  ".into(),
            newline: "\n".into(),
            self_close_empty: true,
        }
    }
}

impl WriteOptions {
    /// Compact: no indentation or newlines, smallest output.
    pub fn compact() -> Self {
        Self {
            indent: String::new(),
            newline: String::new(),
            self_close_empty: true,
        }
    }
}

/// Streaming serializer used by [`Element::write`] and available directly
/// for emitting large documents (e.g. trace files) without building a DOM.
pub struct Writer {
    options: WriteOptions,
    out: String,
    depth: usize,
    /// Stack of open tag names for the streaming API.
    open: Vec<String>,
}

impl Writer {
    /// Create a writer with the given options.
    pub fn new(options: WriteOptions) -> Self {
        Self {
            options,
            out: String::new(),
            depth: 0,
            open: Vec::new(),
        }
    }

    fn pretty(&self) -> bool {
        !self.options.indent.is_empty()
    }

    fn put_indent(&mut self) {
        if self.pretty() {
            for _ in 0..self.depth {
                self.out.push_str(&self.options.indent);
            }
        }
    }

    /// Append raw text with no escaping (used for declarations).
    pub fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    /// Append a newline if pretty-printing.
    pub fn newline(&mut self) {
        if self.pretty() {
            self.out.push_str(&self.options.newline);
        }
    }

    /// Streaming API: open an element with attributes.
    pub fn start(&mut self, name: &str, attrs: &[(&str, &str)]) {
        self.put_indent();
        self.out.push('<');
        self.out.push_str(name);
        for (k, v) in attrs {
            self.out.push(' ');
            self.out.push_str(k);
            self.out.push_str("=\"");
            self.out.push_str(&escape_attr(v));
            self.out.push('"');
        }
        self.out.push('>');
        self.newline();
        self.depth += 1;
        self.open.push(name.to_string());
    }

    /// Streaming API: emit a self-contained leaf `<name k="v".../>`.
    pub fn leaf(&mut self, name: &str, attrs: &[(&str, &str)]) {
        self.put_indent();
        self.out.push('<');
        self.out.push_str(name);
        for (k, v) in attrs {
            self.out.push(' ');
            self.out.push_str(k);
            self.out.push_str("=\"");
            self.out.push_str(&escape_attr(v));
            self.out.push('"');
        }
        self.out.push_str("/>");
        self.newline();
    }

    /// Streaming API: close the innermost open element.
    ///
    /// # Panics
    /// Panics if no element is open — that is a programming error in the
    /// serializer's caller, not a data error.
    pub fn end(&mut self) {
        let name = self.open.pop().expect("Writer::end with no open element");
        self.depth -= 1;
        self.put_indent();
        self.out.push_str("</");
        self.out.push_str(&name);
        self.out.push('>');
        self.newline();
    }

    /// Serialize a DOM element (and subtree) at the current depth.
    pub fn element(&mut self, e: &Element) {
        self.put_indent();
        self.out.push('<');
        self.out.push_str(&e.name);
        for (k, v) in &e.attributes {
            self.out.push(' ');
            self.out.push_str(k);
            self.out.push_str("=\"");
            self.out.push_str(&escape_attr(v));
            self.out.push('"');
        }
        if e.children.is_empty() && self.options.self_close_empty {
            self.out.push_str("/>");
            self.newline();
            return;
        }
        self.out.push('>');

        // Leaf elements containing only text are kept on one line even in
        // pretty mode: `<name>text</name>`.
        let only_text = e
            .children
            .iter()
            .all(|c| matches!(c, Node::Text(_) | Node::CData(_)));
        if only_text {
            for c in &e.children {
                match c {
                    Node::Text(t) => self.out.push_str(&escape_text(t)),
                    Node::CData(t) => {
                        self.out.push_str("<![CDATA[");
                        self.out.push_str(t);
                        self.out.push_str("]]>");
                    }
                    _ => unreachable!(),
                }
            }
            self.out.push_str("</");
            self.out.push_str(&e.name);
            self.out.push('>');
            self.newline();
            return;
        }

        self.newline();
        self.depth += 1;
        for c in &e.children {
            match c {
                Node::Element(child) => self.element(child),
                Node::Text(t) => {
                    self.put_indent();
                    self.out.push_str(&escape_text(t));
                    self.newline();
                }
                Node::CData(t) => {
                    self.put_indent();
                    self.out.push_str("<![CDATA[");
                    self.out.push_str(t);
                    self.out.push_str("]]>");
                    self.newline();
                }
                Node::Comment(t) => {
                    self.put_indent();
                    self.out.push_str("<!--");
                    self.out.push_str(t);
                    self.out.push_str("-->");
                    self.newline();
                }
            }
        }
        self.depth -= 1;
        self.put_indent();
        self.out.push_str("</");
        self.out.push_str(&e.name);
        self.out.push('>');
        self.newline();
    }

    /// Consume the writer and return the output.
    ///
    /// # Panics
    /// Panics if streaming elements are still open.
    pub fn finish(self) -> String {
        assert!(
            self.open.is_empty(),
            "Writer::finish with {} open element(s)",
            self.open.len()
        );
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_document;

    #[test]
    fn pretty_output_shape() {
        let e = Element::new("m")
            .with_attr("a", "1")
            .with_child(Element::new("x"))
            .with_child(Element::new("y").with_text("t"));
        let s = e.write(&WriteOptions::default());
        assert_eq!(s, "<m a=\"1\">\n  <x/>\n  <y>t</y>\n</m>\n");
    }

    #[test]
    fn compact_output_shape() {
        let e = Element::new("m").with_child(Element::new("x").with_attr("k", "v"));
        let s = e.write(&WriteOptions::compact());
        assert_eq!(s, "<m><x k=\"v\"/></m>");
    }

    #[test]
    fn attr_escaping_roundtrips() {
        let e = Element::new("a").with_attr("v", "x \"y\" <z> & \n tab\t");
        let s = e.write(&WriteOptions::compact());
        let d = parse_document(&s).unwrap();
        assert_eq!(d.root.attr("v"), Some("x \"y\" <z> & \n tab\t"));
    }

    #[test]
    fn text_escaping_roundtrips() {
        let e = Element::new("a").with_text("1 < 2 && 3 > 2");
        let s = e.write(&WriteOptions::compact());
        let d = parse_document(&s).unwrap();
        assert_eq!(d.root.text(), "1 < 2 && 3 > 2");
    }

    #[test]
    fn streaming_api() {
        let mut w = Writer::new(WriteOptions::default());
        w.start("trace", &[("run", "1")]);
        w.leaf("event", &[("t", "0.5"), ("kind", "enter")]);
        w.leaf("event", &[("t", "1.5"), ("kind", "exit")]);
        w.end();
        let s = w.finish();
        let d = parse_document(&s).unwrap();
        assert_eq!(d.root.children_named("event").count(), 2);
    }

    #[test]
    #[should_panic(expected = "open element")]
    fn finish_with_open_element_panics() {
        let mut w = Writer::new(WriteOptions::default());
        w.start("a", &[]);
        let _ = w.finish();
    }

    #[test]
    fn no_self_close_option() {
        let e = Element::new("a");
        let opts = WriteOptions {
            self_close_empty: false,
            ..WriteOptions::compact()
        };
        assert_eq!(e.write(&opts), "<a></a>");
    }
}
